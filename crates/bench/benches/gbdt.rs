//! Criterion benchmarks for the GBDT substrate: training throughput and the
//! per-job inference latency the paper's Figure 9a depends on.

use byom_core::{ByomPipeline, CategoryLabeler, CategoryModel, CategoryModelConfig};
use byom_cost::{CostModel, CostRates};
use byom_gbdt::GbdtParams;
use byom_trace::{ClusterSpec, FeatureEncoder, TraceGenerator};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_inference(c: &mut Criterion) {
    let train = TraceGenerator::new(101).generate(&ClusterSpec::balanced(0), 6.0 * 3600.0);
    let cost_model = CostModel::new(CostRates::default());
    let trained = ByomPipeline::builder()
        .num_categories(15)
        .gbdt_trees(50)
        .build()
        .train(&train, &cost_model)
        .expect("training succeeds");
    let model = trained.model();
    let jobs: Vec<_> = train.iter().take(50).cloned().collect();

    c.bench_function("gbdt_inference_single_job", |b| {
        b.iter(|| black_box(model.predict_category(&jobs[0].features)))
    });
    c.bench_function("gbdt_inference_50_jobs_fig09a", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for job in &jobs {
                total += model.predict_category(&job.features);
            }
            black_box(total)
        })
    });
    let encoder = FeatureEncoder::default();
    c.bench_function("feature_encoding_single_job", |b| {
        b.iter(|| black_box(encoder.encode(&jobs[0].features)))
    });
}

fn bench_training(c: &mut Criterion) {
    let train = TraceGenerator::new(102).generate(&ClusterSpec::balanced(0), 3.0 * 3600.0);
    let cost_model = CostModel::new(CostRates::default());
    let costs = cost_model.cost_trace(&train);
    let labeler = CategoryLabeler::fit(&costs, 5);
    let config = CategoryModelConfig {
        num_categories: 5,
        gbdt: GbdtParams {
            num_classes: 5,
            num_trees: 10,
            ..GbdtParams::default()
        },
        encoder: FeatureEncoder::default(),
        valid_fraction: 0.0,
    };

    let mut group = c.benchmark_group("gbdt_training");
    group.sample_size(10);
    group.bench_function("category_model_5_classes_10_rounds", |b| {
        b.iter_batched(
            || (),
            |()| {
                black_box(
                    CategoryModel::train(&config, &train, &costs, &labeler)
                        .expect("training succeeds"),
                )
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_inference, bench_training);
criterion_main!(benches);
