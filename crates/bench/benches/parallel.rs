//! Parallel-vs-sequential wall-clock benchmarks for the two fan-out levels:
//! GBDT category-model training (per-class trees within each boosting round)
//! and the per-cluster experiment sweep.
//!
//! Run with `cargo bench --bench parallel`. On a machine with 4+ cores the
//! parallel configurations should show a >= 2x speedup over `parallelism = 1`;
//! on a single-core machine both configurations collapse to the same inline
//! execution. Set `BYOM_BENCH_QUICK=1` to shrink the workload for a fast
//! smoke run.
//!
//! Both levels produce bit-identical results regardless of parallelism (see
//! `tests/parallel_equivalence.rs`), so these benchmarks measure pure
//! scheduling gains.

use byom_bench::{run_clusters_parallel, ExperimentContext, ExperimentParams};
use byom_core::ByomPipeline;
use byom_cost::{CostModel, CostRates};
use byom_trace::{ClusterSpec, TraceGenerator};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

fn quick() -> bool {
    std::env::var("BYOM_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// Default experiment parameters (50 GBDT trees), shrunk in quick mode.
fn bench_params() -> ExperimentParams {
    if quick() {
        ExperimentParams {
            train_hours: 2.0,
            test_hours: 1.0,
            num_categories: 4,
            gbdt_trees: 8,
            ..Default::default()
        }
    } else {
        ExperimentParams::default()
    }
}

fn time_once<T>(f: impl FnOnce() -> T) -> f64 {
    let start = Instant::now();
    criterion::black_box(f());
    start.elapsed().as_secs_f64()
}

/// GBDT training on the default experiment's training trace: 50 boosting
/// rounds over `num_categories` classes, sequential vs all cores.
fn bench_gbdt_training(c: &mut Criterion) {
    let params = bench_params();
    let spec = ClusterSpec::balanced(0);
    let train =
        TraceGenerator::new(params.train_seed).generate_cached(&spec, params.train_hours * 3600.0);
    let cost_model = CostModel::new(CostRates::default());
    let train_with = |threads: usize| {
        ByomPipeline::builder()
            .num_categories(params.num_categories)
            .gbdt_trees(params.gbdt_trees)
            .parallelism(threads)
            .build()
            .train(&train, &cost_model)
            .expect("training succeeds")
    };

    let mut group = c.benchmark_group("gbdt_training_50_trees");
    group.sample_size(2);
    group.bench_function("sequential", |b| b.iter(|| train_with(1)));
    group.bench_function("parallel_all_cores", |b| b.iter(|| train_with(0)));
    group.finish();

    let sequential = time_once(|| train_with(1));
    let parallel = time_once(|| train_with(0));
    println!(
        "gbdt_training_50_trees speedup: {:.2}x on {} cores ({:.2}s -> {:.2}s)\n",
        sequential / parallel.max(1e-9),
        byom_exec::current_num_threads(),
        sequential,
        parallel,
    );
}

/// The compared-methods sweep over a 4-cluster fleet: prepare each context
/// (trace generation + training) and run every method at a 5% quota.
fn bench_cluster_sweep(c: &mut Criterion) {
    let params = bench_params();
    let specs: Vec<ClusterSpec> = ClusterSpec::evaluation_fleet()
        .into_iter()
        .take(4)
        .collect();
    let sweep = |parallelism: usize| {
        run_clusters_parallel(&specs, parallelism, |i, spec| {
            let ctx = ExperimentContext::prepare(
                spec.clone(),
                ExperimentParams {
                    train_seed: params.train_seed + i as u64,
                    test_seed: params.test_seed + i as u64,
                    parallelism: 1,
                    ..params
                },
            );
            ctx.run_all_methods(0.05, false)
        })
    };

    let mut group = c.benchmark_group("cluster_sweep_4_clusters");
    group.sample_size(2);
    group.bench_function("sequential", |b| b.iter(|| sweep(1)));
    group.bench_function("parallel_all_cores", |b| b.iter(|| sweep(0)));
    group.finish();

    let sequential = time_once(|| sweep(1));
    let parallel = time_once(|| sweep(0));
    println!(
        "cluster_sweep_4_clusters speedup: {:.2}x on {} cores ({:.2}s -> {:.2}s)\n",
        sequential / parallel.max(1e-9),
        byom_exec::current_num_threads(),
        sequential,
        parallel,
    );
}

criterion_group!(benches, bench_gbdt_training, bench_cluster_sweep);
criterion_main!(benches);
