//! Criterion benchmarks for per-job placement-decision overhead of each
//! policy — the cost a storage layer would pay on its critical path.

use byom_core::ByomPipeline;
use byom_cost::{CostModel, CostRates};
use byom_policies::{CategoryHeuristic, FirstFit, LifetimeMlBaseline, LifetimeModelConfig};
use byom_sim::{PlacementPolicy, SystemState};
use byom_trace::{ClusterSpec, TraceGenerator};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_decision_overhead(c: &mut Criterion) {
    let train = TraceGenerator::new(201).generate(&ClusterSpec::balanced(0), 6.0 * 3600.0);
    let cost_model = CostModel::new(CostRates::default());
    let costs = cost_model.cost_trace(&train);
    let job = &train.jobs()[train.len() / 2];
    let cost = &costs[train.len() / 2];
    let state = SystemState {
        now: job.arrival,
        ssd_occupancy_bytes: 0,
        ssd_capacity_bytes: u64::MAX,
    };

    let trained = ByomPipeline::builder()
        .num_categories(15)
        .gbdt_trees(50)
        .build()
        .train(&train, &cost_model)
        .expect("training succeeds");

    let mut group = c.benchmark_group("placement_decision");

    let mut first_fit = FirstFit::new();
    group.bench_function("first_fit", |b| {
        b.iter(|| black_box(first_fit.place(job, cost, &state)))
    });

    let mut heuristic = CategoryHeuristic::default();
    group.bench_function("heuristic", |b| {
        b.iter(|| black_box(heuristic.place(job, cost, &state)))
    });

    let mut ml_baseline = LifetimeMlBaseline::train(
        LifetimeModelConfig {
            gbdt: byom_gbdt::GbdtParams {
                num_classes: 8,
                num_trees: 30,
                ..byom_gbdt::GbdtParams::default()
            },
            ..LifetimeModelConfig::default()
        },
        &train,
    )
    .expect("baseline training succeeds");
    group.bench_function("ml_lifetime_baseline", |b| {
        b.iter(|| black_box(ml_baseline.place(job, cost, &state)))
    });

    let mut hash = trained.adaptive_hash_policy();
    group.bench_function("adaptive_hash", |b| {
        b.iter(|| black_box(hash.place(job, cost, &state)))
    });

    let mut ranking = trained.adaptive_ranking_policy();
    group.bench_function("adaptive_ranking_fig09a", |b| {
        b.iter(|| black_box(ranking.place(job, cost, &state)))
    });

    group.finish();
}

criterion_group!(benches, bench_decision_overhead);
criterion_main!(benches);
