//! Per-call overhead of the persistent work-stealing pool versus the old
//! spawn-scoped-threads-per-`collect()` strategy.
//!
//! The executor refactor's claim is that a persistent pool amortizes thread
//! startup across calls: a `par_iter().collect()` should cost queue pushes
//! and wake-ups, not `thread::spawn` syscalls. This bench pins that claim
//! by racing the pool against a faithful local reimplementation of the old
//! scoped-spawn shim on the workloads where spawn overhead dominates —
//! many small maps and nested fan-outs.
//!
//! Run with `cargo bench -p byom_bench --bench pool`. Set
//! `BYOM_BENCH_QUICK=1` to shrink the workload for a CI smoke run. Both
//! strategies produce identical results (order-slotted, deterministic); the
//! difference is pure scheduling overhead.

use byom_exec::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

fn quick() -> bool {
    std::env::var("BYOM_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// Faithful reimplementation of the pre-executor vendor shim: spawn `threads`
/// scoped workers per call, distribute indices via an atomic counter, slot
/// results by index. This is what every `collect()` used to pay.
fn scoped_spawn_map<U: Send, F: Fn(usize) -> U + Sync>(threads: usize, len: usize, f: F) -> Vec<U> {
    let workers = threads.min(len);
    if workers <= 1 {
        return (0..len).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(len));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    local.push((i, f(i)));
                }
                if let Ok(mut out) = collected.lock() {
                    out.append(&mut local);
                }
            });
        }
    });
    let mut pairs = collected.into_inner().unwrap_or_default();
    pairs.sort_unstable_by_key(|(i, _)| *i);
    pairs.into_iter().map(|(_, v)| v).collect()
}

fn pooled_map(threads: usize, len: usize) -> Vec<u64> {
    (0..len)
        .into_par_iter()
        .with_max_threads(threads)
        .map(work_item)
        .collect()
}

/// A deliberately small work item: a few dozen nanoseconds of arithmetic, so
/// per-call scheduling overhead dominates the measurement.
fn work_item(i: usize) -> u64 {
    let mut x = i as u64;
    for _ in 0..8 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    x
}

/// Many small maps back to back: the fig binaries' dominant pattern (every
/// quota point, cluster, and intensity is one modest `collect()`).
fn bench_small_maps(c: &mut Criterion) {
    let threads = 4;
    let len = if quick() { 32 } else { 128 };
    let calls = if quick() { 20 } else { 100 };

    let mut group = c.benchmark_group("pool_small_maps");
    group.sample_size(2);
    group.bench_function("scoped_spawn", |b| {
        b.iter(|| {
            for _ in 0..calls {
                criterion::black_box(scoped_spawn_map(threads, len, work_item));
            }
        })
    });
    group.bench_function("persistent_pool", |b| {
        b.iter(|| {
            for _ in 0..calls {
                criterion::black_box(pooled_map(threads, len));
            }
        })
    });
    group.finish();

    report_per_call_overhead("small_maps", calls, threads, len);
}

/// Nested fan-out: the cluster × quota shape. The scoped-spawn strategy
/// spawns `outer × inner` threads; the pool schedules everything onto the
/// same fixed worker set.
fn bench_nested_maps(c: &mut Criterion) {
    let threads = 4;
    let outer = if quick() { 4 } else { 8 };
    let inner = if quick() { 16 } else { 64 };
    let calls = if quick() { 10 } else { 50 };

    let scoped = || {
        scoped_spawn_map(threads, outer, |i| {
            scoped_spawn_map(threads, inner, move |j| work_item(i * inner + j))
        })
    };
    let pooled = || {
        (0..outer)
            .into_par_iter()
            .with_max_threads(threads)
            .map(|i| {
                (0..inner)
                    .into_par_iter()
                    .map(move |j| work_item(i * inner + j))
                    .collect::<Vec<u64>>()
            })
            .collect::<Vec<Vec<u64>>>()
    };

    let mut group = c.benchmark_group("pool_nested_maps");
    group.sample_size(2);
    group.bench_function("scoped_spawn", |b| {
        b.iter(|| {
            for _ in 0..calls {
                criterion::black_box(scoped());
            }
        })
    });
    group.bench_function("persistent_pool", |b| {
        b.iter(|| {
            for _ in 0..calls {
                criterion::black_box(pooled());
            }
        })
    });
    group.finish();
}

/// Print the headline number: average wall-clock per `collect()` call.
fn report_per_call_overhead(label: &str, calls: usize, threads: usize, len: usize) {
    let timed = |f: &dyn Fn() -> Vec<u64>| {
        // One warm-up call keeps lazy pool startup out of the measurement.
        criterion::black_box(f());
        let start = Instant::now();
        for _ in 0..calls {
            criterion::black_box(f());
        }
        start.elapsed().as_secs_f64() / calls as f64
    };
    let scoped = timed(&|| scoped_spawn_map(threads, len, work_item));
    let pooled = timed(&|| pooled_map(threads, len));
    println!(
        "{label}: per-call overhead {:.1}us scoped-spawn vs {:.1}us persistent pool ({:.2}x)\n",
        scoped * 1e6,
        pooled * 1e6,
        scoped / pooled.max(1e-12),
    );
}

criterion_group!(benches, bench_small_maps, bench_nested_maps);
criterion_main!(benches);
