//! Criterion benchmarks for the tiering simulator and trace generator:
//! jobs-per-second replay throughput at several quotas.

use byom_cost::{CostModel, CostRates};
use byom_policies::FirstFit;
use byom_sim::{SimConfig, Simulator};
use byom_trace::{ClusterSpec, TraceGenerator};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_trace_generation(c: &mut Criterion) {
    let spec = ClusterSpec::balanced(0);
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);
    group.bench_function("generate_1h_balanced_cluster", |b| {
        b.iter(|| black_box(TraceGenerator::new(1).generate(&spec, 3600.0)))
    });
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let trace = TraceGenerator::new(2).generate(&ClusterSpec::balanced(0), 6.0 * 3600.0);
    let cost_model = CostModel::new(CostRates::default());
    let mut group = c.benchmark_group("simulator_replay");
    group.throughput(Throughput::Elements(trace.len() as u64));
    for quota in [0.01f64, 0.2] {
        let sim = Simulator::new(
            SimConfig::try_from_quota_fraction(&trace, quota).expect("valid quota fraction"),
            cost_model,
        );
        group.bench_function(format!("first_fit_quota_{quota}"), |b| {
            b.iter(|| {
                let mut policy = FirstFit::new();
                black_box(sim.run(&trace, &mut policy))
            })
        });
    }
    group.finish();
}

fn bench_cost_model(c: &mut Criterion) {
    let trace = TraceGenerator::new(3).generate(&ClusterSpec::balanced(0), 3.0 * 3600.0);
    let cost_model = CostModel::new(CostRates::default());
    let mut group = c.benchmark_group("cost_model");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("cost_trace", |b| {
        b.iter(|| black_box(cost_model.cost_trace(&trace)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_trace_generation,
    bench_simulator,
    bench_cost_model
);
criterion_main!(benches);
