//! Criterion benchmarks for the clairvoyant oracle solver: scaling with the
//! number of jobs and with the SSD quota.

use byom_cost::{CostModel, CostRates};
use byom_solver::{Oracle, OracleObjective};
use byom_trace::{ClusterSpec, TraceGenerator};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_oracle(c: &mut Criterion) {
    let cost_model = CostModel::new(CostRates::default());
    let mut group = c.benchmark_group("oracle_solver");
    group.sample_size(10);
    for hours in [1.0f64, 3.0, 6.0] {
        let trace = TraceGenerator::new(5).generate(&ClusterSpec::balanced(0), hours * 3600.0);
        let costs = cost_model.cost_trace(&trace);
        let capacity = trace.peak_space_usage() / 100;
        group.throughput(Throughput::Elements(costs.len() as u64));
        group.bench_function(format!("tco_greedy_{}h_{}jobs", hours, costs.len()), |b| {
            b.iter(|| black_box(Oracle::new(OracleObjective::Tco, capacity).solve(&costs)))
        });
    }
    // Quota sweep on a fixed trace.
    let trace = TraceGenerator::new(6).generate(&ClusterSpec::balanced(0), 3.0 * 3600.0);
    let costs = cost_model.cost_trace(&trace);
    let peak = trace.peak_space_usage();
    for quota in [0.01f64, 0.5] {
        group.bench_function(format!("tcio_greedy_quota_{quota}"), |b| {
            b.iter(|| {
                black_box(
                    Oracle::new(OracleObjective::Tcio, (peak as f64 * quota) as u64).solve(&costs),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_oracle);
criterion_main!(benches);
