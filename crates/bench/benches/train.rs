//! Tree-fit throughput of the histogram engine vs the frozen pre-engine
//! implementation (`byom_bench::legacy_tree`).
//!
//! Run with `cargo bench --bench train`. The workload is the paper-default
//! tree shape (depth 6, 64 bins) on a synthetic multi-feature regression
//! problem. Measured configurations:
//!
//! * `legacy_row_major` — the pre-engine fit: row-major bins, every node
//!   rebuilds its histograms from its rows;
//! * `engine_rebuild` — column-major bins + histogram pool, rebuild mode
//!   (bit-identical trees to legacy);
//! * `engine_subtraction` — the default mode: build the smaller child,
//!   derive the sibling as `parent − child`;
//! * `engine_subtraction_parallel` — subtraction with column-parallel
//!   histogram fills on all cores.
//!
//! The acceptance target is >= 2x single-thread throughput for subtraction
//! mode over the legacy baseline. Set `BYOM_BENCH_QUICK=1` to shrink the
//! workload for a fast smoke run.

use byom_bench::legacy_tree;
use byom_gbdt::{BinMapper, Dataset, HistogramMode, Tree, TreeParams};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

fn quick() -> bool {
    std::env::var("BYOM_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// Deterministic synthetic regression workload: `num_features` mixed-scale
/// features, a smooth nonlinear target, and dense rows (no dataset crate
/// dependency — the bench pins the tree layer alone).
fn workload(num_rows: usize, num_features: usize) -> (Dataset, Vec<f64>, Vec<f64>) {
    let mut state = 0x243F_6A88_85A3_08D3u64; // splitmix-style, fixed seed
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64
    };
    let mut rows = Vec::with_capacity(num_rows);
    let mut target = Vec::with_capacity(num_rows);
    for _ in 0..num_rows {
        let row: Vec<f64> = (0..num_features)
            .map(|f| next() * (10.0 + f as f64))
            .collect();
        let y: f64 = row
            .iter()
            .enumerate()
            .map(|(f, v)| ((f + 1) as f64 * 0.37 * v).sin())
            .sum();
        rows.push(row);
        target.push(y);
    }
    let labels = vec![0usize; num_rows];
    let data = Dataset::from_rows(rows, labels).expect("synthetic rows are rectangular");
    // Squared loss at prediction 0: grad = -y, hess = 1.
    let grad: Vec<f64> = target.iter().map(|y| -y).collect();
    let hess = vec![1.0; num_rows];
    (data, grad, hess)
}

fn time_once<T>(f: impl FnOnce() -> T) -> f64 {
    let start = Instant::now();
    criterion::black_box(f());
    start.elapsed().as_secs_f64()
}

fn bench_tree_fit(c: &mut Criterion) {
    let (num_rows, num_features) = if quick() { (2_000, 8) } else { (20_000, 16) };
    let (data, grad, hess) = workload(num_rows, num_features);
    let mapper = BinMapper::fit(&data, 64);
    let binned = mapper.bin_dataset(&data);
    let binned_row_major = legacy_tree::bin_dataset_row_major(&mapper, &data);
    let rows: Vec<usize> = (0..num_rows).collect();
    let params = TreeParams::default(); // depth 6, the paper's tree shape

    let legacy = || {
        legacy_tree::fit_legacy(
            &binned_row_major,
            num_features,
            &mapper,
            &grad,
            &hess,
            &rows,
            params,
        )
    };
    let engine = |mode: HistogramMode, parallelism: usize| {
        let p = TreeParams {
            histogram_mode: mode,
            ..params
        };
        Tree::fit_with_parallelism(&binned, &mapper, &grad, &hess, &rows, p, parallelism)
    };

    let mut group = c.benchmark_group("tree_fit_depth6");
    group.sample_size(10);
    group.bench_function("legacy_row_major", |b| b.iter(legacy));
    group.bench_function("engine_rebuild", |b| {
        b.iter(|| engine(HistogramMode::Rebuild, 1))
    });
    group.bench_function("engine_subtraction", |b| {
        b.iter(|| engine(HistogramMode::Subtraction, 1))
    });
    group.bench_function("engine_subtraction_parallel", |b| {
        b.iter(|| engine(HistogramMode::Subtraction, 0))
    });
    group.finish();

    // Median-of-3 single-shot timings for the printed speedup summary.
    let median = |f: &dyn Fn()| {
        let mut ts = [time_once(f), time_once(f), time_once(f)];
        ts.sort_by(|a, b| a.total_cmp(b));
        ts[1]
    };
    let t_legacy = median(&|| {
        legacy();
    });
    let t_rebuild = median(&|| {
        engine(HistogramMode::Rebuild, 1);
    });
    let t_sub = median(&|| {
        engine(HistogramMode::Subtraction, 1);
    });
    let t_sub_par = median(&|| {
        engine(HistogramMode::Subtraction, 0);
    });
    println!(
        "tree_fit_depth6 ({num_rows} rows x {num_features} features, 64 bins):\n\
         \x20 legacy_row_major            {:.1} ms\n\
         \x20 engine_rebuild              {:.1} ms ({:.2}x vs legacy)\n\
         \x20 engine_subtraction          {:.1} ms ({:.2}x vs legacy, target >= 2x)\n\
         \x20 engine_subtraction_parallel {:.1} ms ({:.2}x vs legacy, {} cores)\n",
        t_legacy * 1e3,
        t_rebuild * 1e3,
        t_legacy / t_rebuild.max(1e-9),
        t_sub * 1e3,
        t_legacy / t_sub.max(1e-9),
        t_sub_par * 1e3,
        t_legacy / t_sub_par.max(1e-9),
        byom_exec::current_num_threads(),
    );
}

criterion_group!(benches, bench_tree_fit);
criterion_main!(benches);
