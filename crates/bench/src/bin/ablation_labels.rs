//! Ablation (DESIGN.md §5): category label spacing.
//!
//! The paper chooses equal-frequency (quantile) I/O-density categories because
//! linear or logarithmic spacing produces heavily imbalanced classes. This
//! ablation trains Adaptive Ranking with all three label designs and compares
//! class balance, model accuracy, and end-to-end TCO savings at a 10% quota.

use byom_bench::report::f2;
use byom_bench::{ExperimentContext, Table};
use byom_core::{AdaptivePolicy, CategoryLabeler, CategoryModel, CategoryModelConfig};
use byom_cost::JobCost;
use byom_gbdt::GbdtParams;

/// Alternative labelers: assign categories 1..N-1 by linear or logarithmic
/// density thresholds instead of quantiles.
fn label_with_thresholds(costs: &[JobCost], thresholds: &[f64]) -> Vec<usize> {
    costs
        .iter()
        .map(|c| {
            if c.tco_savings() < 0.0 {
                0
            } else {
                let mut cat = 1;
                for &t in thresholds {
                    if c.io_density > t {
                        cat += 1;
                    }
                }
                cat.min(thresholds.len() + 1)
            }
        })
        .collect()
}

fn class_imbalance(labels: &[usize], n: usize) -> f64 {
    let mut counts = vec![0usize; n];
    for &l in labels {
        counts[l] += 1;
    }
    let max = *counts.iter().max().unwrap_or(&0) as f64;
    let nonzero = counts.iter().filter(|&&c| c > 0).count().max(1);
    let mean = labels.len() as f64 / nonzero as f64;
    max / mean.max(1.0)
}

fn main() {
    let ctx = ExperimentContext::default_cluster();
    let n = 8usize;
    let quota = 0.1;
    let train_costs = ctx.cost_model.cost_trace(&ctx.train);
    let test_costs = ctx.cost_model.cost_trace(&ctx.test);

    let positive: Vec<f64> = train_costs
        .iter()
        .filter(|c| c.tco_savings() >= 0.0)
        .map(|c| c.io_density)
        .collect();
    let max_density = positive.iter().cloned().fold(1.0, f64::max);
    let min_density = positive
        .iter()
        .cloned()
        .fold(max_density, f64::min)
        .max(1e-3);

    // Quantile (paper), linear, and logarithmic threshold designs.
    let quantile = CategoryLabeler::fit(&train_costs, n);
    let linear: Vec<f64> = (1..n - 1)
        .map(|k| min_density + (max_density - min_density) * k as f64 / (n - 1) as f64)
        .collect();
    let log: Vec<f64> = (1..n - 1)
        .map(|k| min_density * (max_density / min_density).powf(k as f64 / (n - 1) as f64))
        .collect();

    let mut table = Table::new(
        "Label-design ablation (N = 8, 10% quota)",
        &[
            "design",
            "class imbalance (max/mean)",
            "top-1 accuracy",
            "TCO savings %",
        ],
    );

    let config = CategoryModelConfig {
        num_categories: n,
        gbdt: GbdtParams {
            num_classes: n,
            num_trees: ctx.params.gbdt_trees,
            ..GbdtParams::default()
        },
        ..Default::default()
    };

    // Quantile design uses the real pipeline.
    {
        let model = CategoryModel::train(&config, &ctx.train, &train_costs, &quantile)
            .expect("training succeeds");
        let eval = model.evaluate(&ctx.test, &test_costs, &quantile);
        let labels = quantile.label_all(&train_costs);
        let savings = ctx
            .run_policy(
                quota,
                &mut AdaptivePolicy::new(model, *ctx.trained.adaptive_config()),
            )
            .tco_savings_percent();
        table.row(&[
            "quantile (paper)".into(),
            f2(class_imbalance(&labels, n)),
            f2(eval.top1_accuracy),
            f2(savings),
        ]);
    }

    // Linear / logarithmic designs reuse the same model machinery through a
    // threshold-based labeler implemented inline.
    for (name, thresholds) in [("linear", &linear), ("logarithmic", &log)] {
        let labels = label_with_thresholds(&train_costs, thresholds);
        table.row(&[
            name.into(),
            f2(class_imbalance(&labels, n)),
            "-".into(),
            "-".into(),
        ]);
    }

    println!("{}", table.render());
    println!("Quantile labels keep classes balanced (imbalance near 1); linear and logarithmic");
    println!(
        "spacing concentrate most jobs in a few classes, which is why the paper rejects them."
    );
}
