//! Figure 1: two workloads with vastly different storage patterns.
//!
//! Generates 12 hours of two single-archetype workloads (a query/join
//! workload and a video-processing workload) and prints their hourly space
//! usage and mean intermediate-file lifetime, reproducing the orders-of-
//! magnitude spread the paper motivates its design with.

use byom_bench::report::f2;
use byom_bench::Table;
use byom_trace::{Archetype, ClusterSpec, PipelineSpec, TraceGenerator};

fn single_archetype_cluster(id: u16, archetype: Archetype) -> ClusterSpec {
    ClusterSpec {
        pipelines: vec![PipelineSpec::new(archetype, 1.0)],
        ..ClusterSpec::balanced(id)
    }
}

fn main() {
    let hours = 12usize;
    let generator = TraceGenerator::new(11);
    let workloads = [
        (
            "Workload 0 (query/join)",
            single_archetype_cluster(0, Archetype::QueryJoin),
        ),
        (
            "Workload 1 (video processing)",
            single_archetype_cluster(1, Archetype::VideoProcessing),
        ),
    ];

    for (name, spec) in workloads {
        let trace = generator.generate(&spec, hours as f64 * 3600.0);
        let mut table = Table::new(
            format!("Figure 1: {name} ({} jobs)", trace.len()),
            &[
                "hour",
                "space usage (GiB)",
                "mean lifetime (s)",
                "mean I/O density",
            ],
        );
        for h in 0..hours {
            let lo = h as f64 * 3600.0;
            let hi = lo + 3600.0;
            let jobs: Vec<_> = trace
                .iter()
                .filter(|j| j.arrival >= lo && j.arrival < hi)
                .collect();
            if jobs.is_empty() {
                table.row(&[h.to_string(), "0".into(), "-".into(), "-".into()]);
                continue;
            }
            let space: f64 =
                jobs.iter().map(|j| j.size_bytes as f64).sum::<f64>() / (1u64 << 30) as f64;
            let lifetime: f64 = jobs.iter().map(|j| j.lifetime).sum::<f64>() / jobs.len() as f64;
            let density: f64 = jobs.iter().map(|j| j.io_density()).sum::<f64>() / jobs.len() as f64;
            table.row(&[h.to_string(), f2(space), f2(lifetime), f2(density)]);
        }
        println!("{}", table.render());
    }
}
