//! Figure 4 and the Section 3.1 headroom analysis.
//!
//! Runs the clairvoyant TCO oracle under several SSD quotas and reports how
//! the selected jobs' I/O density shifts as capacity grows (Figure 4), plus
//! the headroom ratio of the oracle over the practical Heuristic baseline at
//! a 1% quota (the paper reports ≈5×).

use byom_bench::report::f2;
use byom_bench::{ExperimentContext, ExperimentParams, Table};
use byom_policies::CategoryHeuristic;
use byom_solver::{Oracle, OracleObjective};
use byom_trace::ClusterSpec;

fn main() {
    let ctx = ExperimentContext::prepare(ClusterSpec::balanced(0), ExperimentParams::default());
    let costs = ctx.cost_model.cost_trace(&ctx.test);
    let peak = ctx.test.peak_space_usage();

    // Figure 4: oracle selections under different quotas.
    let mut table = Table::new(
        "Figure 4: oracle TCO selections vs SSD quota",
        &[
            "quota",
            "jobs on SSD",
            "mean I/O density (SSD)",
            "mean I/O density (HDD)",
            "min density admitted",
        ],
    );
    for quota in [0.01, 0.10, 0.50] {
        let capacity = (peak as f64 * quota) as u64;
        let solution = Oracle::new(OracleObjective::Tco, capacity).solve(&costs);
        let (mut ssd_density, mut ssd_n) = (0.0, 0usize);
        let (mut hdd_density, mut hdd_n) = (0.0, 0usize);
        let mut min_admitted = f64::INFINITY;
        for (cost, &on_ssd) in costs.iter().zip(&solution.on_ssd) {
            if on_ssd {
                ssd_density += cost.io_density;
                ssd_n += 1;
                min_admitted = min_admitted.min(cost.io_density);
            } else {
                hdd_density += cost.io_density;
                hdd_n += 1;
            }
        }
        table.row(&[
            format!("{:.0}%", quota * 100.0),
            ssd_n.to_string(),
            f2(if ssd_n > 0 {
                ssd_density / ssd_n as f64
            } else {
                0.0
            }),
            f2(if hdd_n > 0 {
                hdd_density / hdd_n as f64
            } else {
                0.0
            }),
            if min_admitted.is_finite() {
                f2(min_admitted)
            } else {
                "-".into()
            },
        ]);
    }
    println!("{}", table.render());

    // Headroom at 1% quota: oracle vs Heuristic.
    let quota = 0.01;
    let oracle = ctx.run_oracle(quota, OracleObjective::Tco);
    let mut heuristic = CategoryHeuristic::default();
    let heuristic_run = ctx.run_policy(quota, &mut heuristic);

    let mut headroom = Table::new(
        "Section 3.1: oracle headroom over the Heuristic at 1% quota",
        &["method", "TCO savings %", "TCIO savings %"],
    );
    for r in [&heuristic_run, &oracle] {
        headroom.row(&[
            r.policy_name.clone(),
            f2(r.tco_savings_percent()),
            f2(r.tcio_savings_percent()),
        ]);
    }
    println!("{}", headroom.render());
    let ratio = if heuristic_run.tco_savings_percent() > 0.0 {
        oracle.tco_savings_percent() / heuristic_run.tco_savings_percent()
    } else {
        f64::INFINITY
    };
    println!(
        "Oracle headroom: {:.2}x the Heuristic's TCO savings (paper reports ~5.06x)\n",
        ratio
    );
}
