//! Figure 5: prototype deployment results.
//!
//! The paper's prototype runs 16 pipelines / 1024 shuffle jobs (3.6 TiB peak)
//! against a dedicated SSD cache at quotas of 1% and 20% of peak usage, and
//! compares FirstFit against Adaptive Ranking. We reproduce the same scale by
//! truncating a mixed-workload trace to 1024 jobs and running both methods
//! through the simulator at the same two quotas.

use byom_bench::report::f2;
use byom_bench::{ExperimentContext, ExperimentParams, Table};
use byom_policies::FirstFit;
use byom_sim::{SimConfig, Simulator};
use byom_trace::{ClusterSpec, Trace, TraceGenerator};

fn main() {
    // Train on the full mixed-workload history; test on a 1024-job prototype
    // run, mirroring the paper's 16-pipeline setup.
    let params = ExperimentParams {
        train_hours: 12.0,
        test_hours: 6.0,
        ..ExperimentParams::default()
    };
    let ctx = ExperimentContext::prepare(ClusterSpec::mixed_workloads(9), params);
    let prototype_jobs: Vec<_> = TraceGenerator::new(7777)
        .generate(&ClusterSpec::mixed_workloads(9), 6.0 * 3600.0)
        .into_jobs()
        .into_iter()
        .take(1024)
        .collect();
    let prototype = Trace::new(prototype_jobs);
    println!(
        "Prototype workload: {} shuffle jobs, peak storage {:.2} TiB\n",
        prototype.len(),
        prototype.peak_space_usage() as f64 / (1u64 << 40) as f64
    );

    let mut table = Table::new(
        "Figure 5: prototype savings (Adaptive Ranking vs FirstFit)",
        &[
            "SSD quota",
            "method",
            "TCO savings %",
            "TCIO savings %",
            "ratio vs FirstFit (TCO)",
            "ratio vs FirstFit (TCIO)",
        ],
    );

    for quota in [0.01, 0.20] {
        let sim = Simulator::new(
            SimConfig::try_from_quota_fraction(&prototype, quota).expect("valid quota fraction"),
            ctx.cost_model,
        );
        let mut first_fit = FirstFit::new();
        let ff = sim.run(&prototype, &mut first_fit);
        let mut ranking = ctx.trained.adaptive_ranking_policy();
        let ar = sim.run(&prototype, &mut ranking);

        let tco_ratio = if ff.tco_savings_percent() > 0.0 {
            ar.tco_savings_percent() / ff.tco_savings_percent()
        } else {
            f64::INFINITY
        };
        let tcio_ratio = if ff.tcio_savings_percent() > 0.0 {
            ar.tcio_savings_percent() / ff.tcio_savings_percent()
        } else {
            f64::INFINITY
        };

        table.row(&[
            format!("{:.0}%", quota * 100.0),
            ff.policy_name.clone(),
            f2(ff.tco_savings_percent()),
            f2(ff.tcio_savings_percent()),
            "1.00".into(),
            "1.00".into(),
        ]);
        table.row(&[
            format!("{:.0}%", quota * 100.0),
            ar.policy_name.clone(),
            f2(ar.tco_savings_percent()),
            f2(ar.tcio_savings_percent()),
            f2(tco_ratio),
            f2(tcio_ratio),
        ]);
    }
    println!("{}", table.render());
    println!("Paper reference: 1% quota -> 1.14% TCO savings (4.38x FirstFit); 20% quota -> 2.48% (1.77x).");
}
