//! Figure 6: TCO and TCIO savings across the 10-cluster evaluation fleet at a
//! fixed 1% SSD quota, comparing the five online methods.

use byom_bench::report::f2;
use byom_bench::{run_clusters_parallel, ExperimentContext, ExperimentParams, Table};
use byom_trace::ClusterSpec;

fn main() {
    let quota = 0.01;
    let params = ExperimentParams {
        train_hours: 8.0,
        test_hours: 4.0,
        gbdt_trees: 40,
        ..ExperimentParams::default()
    };

    let mut tco = Table::new(
        "Figure 6 (top): TCO savings % per cluster at 1% SSD quota",
        &[
            "cluster",
            "FirstFit",
            "Heuristic",
            "ML Baseline",
            "Adaptive Hash",
            "Adaptive Ranking",
        ],
    );
    let mut tcio = Table::new(
        "Figure 6 (bottom): TCIO savings % per cluster at 1% SSD quota",
        &[
            "cluster",
            "FirstFit",
            "Heuristic",
            "ML Baseline",
            "Adaptive Hash",
            "Adaptive Ranking",
        ],
    );
    let mut ratios = Vec::new();

    // Each cluster's experiment is independent; fan them out across cores.
    let fleet = ClusterSpec::evaluation_fleet();
    let per_cluster = run_clusters_parallel(&fleet, params.parallelism, |_, spec| {
        let id = spec.id;
        let ctx = ExperimentContext::prepare(
            spec.clone(),
            ExperimentParams {
                train_seed: 1001 + u64::from(id),
                test_seed: 2002 + u64::from(id),
                ..params
            },
        );
        (id, ctx.run_all_methods(quota, false))
    });

    for (id, results) in per_cluster {
        let row_tco: Vec<String> = std::iter::once(format!("C{id}"))
            .chain(results.iter().map(|r| f2(r.tco_savings_percent)))
            .collect();
        let row_tcio: Vec<String> = std::iter::once(format!("C{id}"))
            .chain(results.iter().map(|r| f2(r.tcio_savings_percent)))
            .collect();
        tco.row(&row_tco);
        tcio.row(&row_tcio);

        let ranking = results
            .iter()
            .find(|r| r.method == "Adaptive Ranking")
            .expect("ranking result present");
        let best_baseline = results
            .iter()
            .filter(|r| r.method != "Adaptive Ranking" && r.method != "Adaptive Hash")
            .map(|r| r.tco_savings_percent)
            .fold(f64::MIN, f64::max);
        if best_baseline > 0.0 {
            ratios.push(ranking.tco_savings_percent / best_baseline);
        }
    }

    println!("{}", tco.render());
    println!("{}", tcio.render());
    if !ratios.is_empty() {
        let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        println!(
            "Adaptive Ranking vs best baseline (TCO): max {:.2}x, mean {:.2}x across clusters",
            max, mean
        );
        println!("Paper reference: up to 3.47x (2.59x on average) over the best baseline.");
    }
}
