//! Figure 7: TCO savings as a function of the SSD quota, for all seven
//! compared methods (five online policies plus the two clairvoyant oracles).

use byom_bench::report::f2;
use byom_bench::{run_quotas_parallel, ExperimentContext, Table};

fn main() {
    let ctx = ExperimentContext::default_cluster();
    let quotas = [0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0];

    let mut table = Table::new(
        "Figure 7: TCO savings % vs SSD quota (portion of peak SSD usage)",
        &[
            "quota",
            "FirstFit",
            "Heuristic",
            "ML Baseline",
            "Adaptive Hash",
            "Adaptive Ranking",
            "Oracle TCIO",
            "Oracle TCO",
        ],
    );
    let mut tcio_table = Table::new(
        "Figure 7 companion: TCIO savings % vs SSD quota",
        &[
            "quota",
            "FirstFit",
            "Heuristic",
            "ML Baseline",
            "Adaptive Hash",
            "Adaptive Ranking",
            "Oracle TCIO",
            "Oracle TCO",
        ],
    );

    // The quota operating points are independent given the trained context;
    // sweep them across cores (0 = all available).
    let all_results = run_quotas_parallel(&ctx, &quotas, true, ctx.params.parallelism);
    for (quota, results) in quotas.iter().zip(all_results) {
        let row: Vec<String> = std::iter::once(format!("{:.0}%", quota * 100.0))
            .chain(results.iter().map(|r| f2(r.tco_savings_percent)))
            .collect();
        table.row(&row);
        let row2: Vec<String> = std::iter::once(format!("{:.0}%", quota * 100.0))
            .chain(results.iter().map(|r| f2(r.tcio_savings_percent)))
            .collect();
        tcio_table.row(&row2);
    }
    println!("{}", table.render());
    println!("{}", tcio_table.render());
    println!("Expected shape: Adaptive Ranking dominates baselines at low quotas; TCO savings");
    println!("flatten or dip at very large quotas (SSD costs) while TCIO savings keep rising.");
}
