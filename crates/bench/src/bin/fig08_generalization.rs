//! Figure 8: workload generalization across clusters.
//!
//! Trains one category model per cluster C0..C3 and evaluates each of them on
//! C0's test trace across an SSD-quota sweep. C3 is the specialized cluster
//! that runs workloads rare elsewhere, so its model is expected to transfer
//! worst.

use byom_bench::report::f2;
use byom_bench::{run_clusters_parallel, ExperimentContext, ExperimentParams, Table};
use byom_core::{AdaptivePolicy, ByomPipeline};
use byom_policies::CategoryHeuristic;
use byom_trace::{ClusterSpec, TraceGenerator};

fn main() {
    let params = ExperimentParams {
        train_hours: 10.0,
        test_hours: 5.0,
        gbdt_trees: 40,
        ..ExperimentParams::default()
    };
    // The evaluation cluster (C0) provides the test trace and cost model.
    let ctx = ExperimentContext::prepare(ClusterSpec::balanced(0), params);

    // Train one model per source cluster.
    let sources = [
        ClusterSpec::balanced(0),
        ClusterSpec::skewed(1, byom_trace::Archetype::QueryJoin),
        ClusterSpec::skewed(2, byom_trace::Archetype::LogProcessing),
        ClusterSpec::specialized(3),
    ];
    // Each source cluster's model is independent; train them across cores.
    let trained = run_clusters_parallel(&sources, params.parallelism, |_, spec| {
        let train = TraceGenerator::new(1001 + u64::from(spec.id))
            .generate_cached(spec, params.train_hours * 3600.0);
        ByomPipeline::builder()
            .num_categories(params.num_categories)
            .gbdt_trees(params.gbdt_trees)
            .parallelism(params.parallelism)
            .build()
            .train(&train, &ctx.cost_model)
            .expect("training succeeds")
    });

    let quotas = [0.01, 0.05, 0.1, 0.2, 0.4, 0.8];
    let mut table = Table::new(
        "Figure 8: TCO savings % on cluster C0, models trained on C0..C3",
        &[
            "quota",
            "train C0",
            "train C1",
            "train C2",
            "train C3",
            "best baseline (Heuristic)",
        ],
    );
    for quota in quotas {
        let mut row = vec![format!("{:.0}%", quota * 100.0)];
        for t in &trained {
            let mut policy: AdaptivePolicy<_> = t.adaptive_ranking_policy();
            let result = ctx.run_policy(quota, &mut policy);
            row.push(f2(result.tco_savings_percent()));
        }
        let mut heuristic = CategoryHeuristic::default();
        row.push(f2(ctx
            .run_policy(quota, &mut heuristic)
            .tco_savings_percent()));
        table.row(&row);
    }
    println!("{}", table.render());
    println!("Expected shape: models trained on C0-C2 transfer to C0; the specialized");
    println!("cluster C3's model is the outlier, as in the paper.");
}
