//! Figure 9: model analysis.
//!
//! * (a) cumulative inference time over 50 jobs — the paper's unoptimized
//!   Python prototype needs ≈4 ms/job; our native implementation is far
//!   below that budget.
//! * (b) model top-1 accuracy vs training-set size across clusters.
//! * (c) feature-group importance (AUC decrease) per predicted category.

use byom_bench::report::f2;
use byom_bench::{ExperimentContext, ExperimentParams, Table};
use byom_core::{ByomPipeline, CategoryLabeler};
use byom_trace::{ClusterSpec, TraceGenerator};
use std::time::Instant;

fn main() {
    let ctx = ExperimentContext::default_cluster();

    // (a) Inference latency over 50 jobs.
    let mut latency = Table::new(
        "Figure 9a: cumulative inference time over 50 jobs",
        &["jobs", "cumulative time (ms)", "per-job (us)"],
    );
    let jobs: Vec<_> = ctx.test.iter().take(50).collect();
    let model = ctx.trained.model();
    let start = Instant::now();
    let mut cumulative = Vec::new();
    for job in &jobs {
        let _ = model.predict_category(&job.features);
        cumulative.push(start.elapsed());
    }
    for &n in &[10usize, 20, 30, 40, 50] {
        if n <= cumulative.len() {
            let total = cumulative[n - 1].as_secs_f64() * 1e3;
            latency.row(&[n.to_string(), f2(total), f2(total * 1e3 / n as f64)]);
        }
    }
    println!("{}", latency.render());
    println!(
        "Paper reference: ~4 ms/job (Python prototype); ~99 ms/job for the Transformer baseline.\n"
    );

    // (b) Accuracy vs training size across clusters.
    let mut accuracy = Table::new(
        "Figure 9b: top-1 accuracy vs training-set size (15-category models)",
        &[
            "cluster",
            "training jobs",
            "top-1 accuracy",
            "top-3 accuracy",
        ],
    );
    let eval_params = ExperimentParams {
        train_hours: 8.0,
        test_hours: 4.0,
        gbdt_trees: 40,
        ..ExperimentParams::default()
    };
    for spec in ClusterSpec::evaluation_fleet().into_iter().take(5) {
        let id = spec.id;
        let train = TraceGenerator::new(3000 + u64::from(id))
            .generate(&spec, eval_params.train_hours * 3600.0);
        let test = TraceGenerator::new(4000 + u64::from(id))
            .generate(&spec, eval_params.test_hours * 3600.0);
        let trained = ByomPipeline::builder()
            .num_categories(15)
            .gbdt_trees(eval_params.gbdt_trees)
            .build()
            .train(&train, &ctx.cost_model)
            .expect("training succeeds");
        let test_costs = ctx.cost_model.cost_trace(&test);
        let labeler: &CategoryLabeler = trained.labeler();
        let eval = trained.model().evaluate(&test, &test_costs, labeler);
        accuracy.row(&[
            format!("C{id}"),
            eval.training_size.to_string(),
            f2(eval.top1_accuracy),
            f2(eval.top3_accuracy),
        ]);
    }
    println!("{}", accuracy.render());
    println!("Paper reference: average top-1 accuracy 0.36 for 15-category models; no strong");
    println!("correlation between training size and accuracy.\n");

    // (c) Feature-group importance per category.
    let test_costs = ctx.cost_model.cost_trace(&ctx.test);
    let importance = ctx
        .trained
        .model()
        .feature_group_importance(&ctx.test, &test_costs, ctx.trained.labeler(), 99)
        .expect("importance computation succeeds");
    let mut imp_table = Table::new(
        "Figure 9c: feature-group importance (normalized AUC decrease) per category",
        &[
            "category",
            "A: historical",
            "B: exec metadata",
            "C: allocated res",
            "T: timestamp",
        ],
    );
    for (category, row) in importance.iter().enumerate() {
        imp_table.row(&[
            category.to_string(),
            f2(row[0]),
            f2(row[1]),
            f2(row[2]),
            f2(row[3]),
        ]);
    }
    println!("{}", imp_table.render());
    println!("Paper reference: historical system metrics dominate I/O-density categories;");
    println!("timestamp and execution metadata matter most for the negative-TCO category 0.");
}
