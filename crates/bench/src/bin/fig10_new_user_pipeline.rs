//! Figure 10: generalization to new users and new pipelines.
//!
//! For each of several clusters, pick the user (and, separately, the
//! pipeline) with the second-largest TCO footprint, train the category model
//! once *with* and once *without* that user's/pipeline's jobs, and compare
//! the TCO savings achieved on the full test trace. Matching curves indicate
//! the method handles previously unseen users/pipelines.

use byom_bench::report::f2;
use byom_bench::{ExperimentContext, ExperimentParams, Table};
use byom_core::ByomPipeline;
use byom_trace::{ClusterSpec, Trace};
use std::collections::BTreeMap;

/// The key of the entity with the second-largest total HDD TCO.
fn second_largest_by<F: Fn(&byom_trace::ShuffleJob) -> String>(
    ctx: &ExperimentContext,
    key: F,
) -> Option<String> {
    let costs = ctx.cost_model.cost_trace(&ctx.train);
    let mut totals: BTreeMap<String, f64> = BTreeMap::new();
    for (job, cost) in ctx.train.iter().zip(&costs) {
        *totals.entry(key(job)).or_default() += cost.tco_hdd;
    }
    let mut ranked: Vec<(String, f64)> = totals.into_iter().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    ranked.get(1).map(|(k, _)| k.clone())
}

fn savings_with_and_without(
    ctx: &ExperimentContext,
    excluded: &str,
    key: impl Fn(&byom_trace::ShuffleJob) -> String,
    quotas: &[f64],
) -> Vec<(f64, f64, f64)> {
    let full_train = ctx.train.clone();
    let without: Trace = ctx.train.filter(|j| key(j) != excluded);
    let with_model = ByomPipeline::builder()
        .num_categories(ctx.params.num_categories)
        .gbdt_trees(ctx.params.gbdt_trees)
        .build()
        .train(&full_train, &ctx.cost_model)
        .expect("training with entity succeeds");
    let without_model = ByomPipeline::builder()
        .num_categories(ctx.params.num_categories)
        .gbdt_trees(ctx.params.gbdt_trees)
        .build()
        .train(&without, &ctx.cost_model)
        .expect("training without entity succeeds");

    quotas
        .iter()
        .map(|&q| {
            let a = ctx
                .run_policy(q, &mut with_model.adaptive_ranking_policy())
                .tco_savings_percent();
            let b = ctx
                .run_policy(q, &mut without_model.adaptive_ranking_policy())
                .tco_savings_percent();
            (q, a, b)
        })
        .collect()
}

fn main() {
    let quotas = [0.01, 0.1, 0.3, 0.6, 1.0];
    let params = ExperimentParams {
        train_hours: 10.0,
        test_hours: 5.0,
        gbdt_trees: 40,
        ..ExperimentParams::default()
    };

    let mut user_table = Table::new(
        "Figure 10 (upper): TCO savings % with vs without the held-out user in training",
        &["cluster", "quota", "train with user", "train without user"],
    );
    let mut pipe_table = Table::new(
        "Figure 10 (lower): TCO savings % with vs without the held-out pipeline in training",
        &[
            "cluster",
            "quota",
            "train with pipeline",
            "train without pipeline",
        ],
    );

    for spec in ClusterSpec::evaluation_fleet().into_iter().take(3) {
        let id = spec.id;
        let ctx = ExperimentContext::prepare(
            spec,
            ExperimentParams {
                train_seed: 1001 + u64::from(id),
                test_seed: 2002 + u64::from(id),
                ..params
            },
        );
        if let Some(user) = second_largest_by(&ctx, |j| j.features.user_name.clone()) {
            for (q, with, without) in
                savings_with_and_without(&ctx, &user, |j| j.features.user_name.clone(), &quotas)
            {
                user_table.row(&[
                    format!("C{id}"),
                    format!("{:.0}%", q * 100.0),
                    f2(with),
                    f2(without),
                ]);
            }
        }
        if let Some(pipeline) = second_largest_by(&ctx, |j| j.features.pipeline_name.clone()) {
            for (q, with, without) in savings_with_and_without(
                &ctx,
                &pipeline,
                |j| j.features.pipeline_name.clone(),
                &quotas,
            ) {
                pipe_table.row(&[
                    format!("C{id}"),
                    format!("{:.0}%", q * 100.0),
                    f2(with),
                    f2(without),
                ]);
            }
        }
    }
    println!("{}", user_table.render());
    println!("{}", pipe_table.render());
    println!("Expected shape: the with/without curves track each other closely, as in the paper.");
}
