//! Figure 11: predicted category vs ground-truth category.
//!
//! Compares the Adaptive Ranking policy driven by the learned model against
//! the same adaptive algorithm driven by the *true* category (computed from
//! each job's measured cost — 100% prediction accuracy). The paper's insight:
//! beyond a point, end-to-end savings do not benefit from a more accurate
//! model; the category design and the adaptive algorithm dominate.

use byom_bench::report::f2;
use byom_bench::{ExperimentContext, Table};

fn main() {
    let ctx = ExperimentContext::default_cluster();
    let quotas = [0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0];

    let mut table = Table::new(
        "Figure 11: TCO savings % — predicted vs true category",
        &[
            "quota",
            "Predicted category (Adaptive Ranking)",
            "True category",
        ],
    );
    for quota in quotas {
        let predicted = ctx
            .run_policy(quota, &mut ctx.trained.adaptive_ranking_policy())
            .tco_savings_percent();
        let truth = ctx
            .run_policy(quota, &mut ctx.trained.true_category_policy())
            .tco_savings_percent();
        table.row(&[format!("{:.0}%", quota * 100.0), f2(predicted), f2(truth)]);
    }
    println!("{}", table.render());
    println!("Expected shape: the two curves are close — perfect prediction accuracy adds little,");
    println!("because the adaptive algorithm and the category design carry most of the benefit.");
}
