//! Figures 13 & 14: mixed framework / non-framework workload evaluation
//! (Appendix C.1).
//!
//! Runs a 1:1 mix of framework workloads (data-processing shuffles) and
//! non-framework workloads (ML checkpointing, compress-and-upload) at 1% and
//! 20% SSD quotas, comparing FirstFit and Adaptive Ranking, and reports
//! storage savings split by workload class (Figure 13) plus the modelled
//! application run-time savings (Figure 14).

use byom_bench::report::f2;
use byom_bench::{ExperimentContext, ExperimentParams, Table};
use byom_cost::{savings_summary, Placement};
use byom_exec::prelude::*;
use byom_policies::FirstFit;
use byom_sim::{application_runtime_savings_percent, SimulationResult};
use byom_trace::{Archetype, ClusterSpec};

/// Savings summary restricted to framework or non-framework jobs.
fn split_savings(ctx: &ExperimentContext, result: &SimulationResult, framework: bool) -> f64 {
    let mut costs = Vec::new();
    let mut placements = Vec::new();
    for ((job, cost), outcome) in ctx.test.iter().zip(&result.costs).zip(&result.outcomes) {
        let is_framework = Archetype::from_index(job.archetype)
            .map(|a| a.is_framework())
            .unwrap_or(true);
        if is_framework == framework {
            costs.push(*cost);
            placements.push(Placement::partial(outcome.ssd_fraction.clamp(0.0, 1.0)));
        }
    }
    savings_summary(&costs, &placements).tco_savings_percent()
}

fn main() {
    let params = ExperimentParams {
        train_hours: 12.0,
        test_hours: 6.0,
        ..ExperimentParams::default()
    };
    let ctx = ExperimentContext::prepare(ClusterSpec::mixed_workloads(9), params);

    let mut storage = Table::new(
        "Figure 13: mixed-workload TCO savings % (split by workload class)",
        &[
            "quota",
            "method",
            "framework",
            "non-framework",
            "overall TCIO %",
        ],
    );
    let mut runtime = Table::new(
        "Figure 14: application run-time savings % (modelled)",
        &["quota", "method", "runtime savings %"],
    );

    // Both quota operating points (and both methods at each) are independent
    // given the trained context; evaluate them across cores.
    let quotas = [0.01, 0.20];
    let evaluated: Vec<(f64, SimulationResult, SimulationResult)> = quotas
        .par_iter()
        .with_max_threads(ctx.params.parallelism)
        .map(|&quota| {
            let mut first_fit = FirstFit::new();
            let ff = ctx.run_policy(quota, &mut first_fit);
            let ar = ctx.run_policy(quota, &mut ctx.trained.adaptive_ranking_policy());
            (quota, ff, ar)
        })
        .collect();

    for (quota, ff, ar) in &evaluated {
        let quota = *quota;
        for result in [ff, ar] {
            storage.row(&[
                format!("{:.0}%", quota * 100.0),
                result.policy_name.clone(),
                f2(split_savings(&ctx, result, true)),
                f2(split_savings(&ctx, result, false)),
                f2(result.tcio_savings_percent()),
            ]);
            runtime.row(&[
                format!("{:.0}%", quota * 100.0),
                result.policy_name.clone(),
                f2(application_runtime_savings_percent(result)),
            ]);
        }
    }
    println!("{}", storage.render());
    println!("{}", runtime.render());
    println!("Expected shape: Adaptive Ranking beats FirstFit for both framework and");
    println!("non-framework workloads, and no workload class shows a run-time regression.");
}
