//! Figure 15: sensitivity of the adaptive algorithm to its hyperparameters.
//!
//! Sweeps the spillover tolerance range, the look-back window length, and the
//! admission-decision interval over the paper's grid and reports the band
//! (min/max) of TCO savings across all combinations at each SSD quota, plus
//! the look-back-window semantics ablation called out in DESIGN.md.

use byom_bench::report::f2;
use byom_bench::{ExperimentContext, Table};
use byom_core::{AdaptiveConfig, AdaptivePolicy, FeedbackSignal};

fn main() {
    let ctx = ExperimentContext::default_cluster();
    let tolerances = [(0.005, 0.03), (0.01, 0.15), (0.05, 0.25)];
    let windows = [600.0, 900.0, 1800.0];
    let intervals = [600.0, 900.0, 1800.0];
    let quotas = [0.01, 0.1, 0.3, 0.6, 1.0];

    let mut table = Table::new(
        "Figure 15: Adaptive Ranking TCO savings % band across 27 hyperparameter combinations",
        &["quota", "min", "max", "spread"],
    );
    for quota in quotas {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &(lo, hi) in &tolerances {
            for &tw in &windows {
                for &tl in &intervals {
                    let config = AdaptiveConfig {
                        num_categories: ctx.params.num_categories,
                        lookback_window_secs: tw,
                        decision_interval_secs: tl,
                        spillover_tolerance: (lo, hi),
                        initial_act: 1,
                        signal: FeedbackSignal::SpilloverTcio,
                    };
                    let mut policy = AdaptivePolicy::new(ctx.trained.model().clone(), config);
                    let savings = ctx.run_policy(quota, &mut policy).tco_savings_percent();
                    min = min.min(savings);
                    max = max.max(savings);
                }
            }
        }
        table.row(&[
            format!("{:.0}%", quota * 100.0),
            f2(min),
            f2(max),
            f2(max - min),
        ]);
    }
    println!("{}", table.render());

    // Ablation: spillover-TCIO feedback vs spillover-bytes feedback.
    let mut ablation = Table::new(
        "Ablation: feedback signal (spillover TCIO vs spillover bytes)",
        &["quota", "SpilloverTcio", "SpilloverBytes"],
    );
    for quota in [0.01, 0.1, 0.5] {
        let mut row = vec![format!("{:.0}%", quota * 100.0)];
        for signal in [
            FeedbackSignal::SpilloverTcio,
            FeedbackSignal::SpilloverBytes,
        ] {
            let config = AdaptiveConfig {
                num_categories: ctx.params.num_categories,
                signal,
                ..AdaptiveConfig::default()
            };
            let mut policy = AdaptivePolicy::new(ctx.trained.model().clone(), config);
            row.push(f2(ctx.run_policy(quota, &mut policy).tco_savings_percent()));
        }
        ablation.row(&row);
    }
    println!("{}", ablation.render());
    println!("Expected shape: a narrow band — the method is not sensitive to the adaptive");
    println!("algorithm's hyperparameters (paper Figure 15).");
}
