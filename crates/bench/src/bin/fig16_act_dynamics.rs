//! Figure 16: dynamics of the adaptive category selection algorithm.
//!
//! Runs Adaptive Ranking on one workload at four SSD quotas and prints the
//! admission category threshold (ACT) and observed spillover-TCIO percentage
//! over time, showing the threshold settling high when the SSD is scarce and
//! low when it is plentiful.

use byom_bench::report::f2;
use byom_bench::{ExperimentContext, ExperimentParams, Table};
use byom_trace::ClusterSpec;

fn main() {
    let params = ExperimentParams {
        test_hours: 24.0,
        ..ExperimentParams::default()
    };
    let ctx = ExperimentContext::prepare(ClusterSpec::balanced(0), params);

    for quota in [0.0001, 0.01, 0.1, 0.5] {
        let mut policy = ctx.trained.adaptive_ranking_policy();
        let result = ctx.run_policy(quota, &mut policy);
        let trace = policy.adaptation_trace();
        let mut table = Table::new(
            format!(
                "Figure 16: ACT dynamics at quota {:.2}% (final TCO savings {:.2}%)",
                quota * 100.0,
                result.tco_savings_percent()
            ),
            &["time (h)", "ACT", "spillover TCIO %"],
        );
        // Sample at most ~16 rows evenly over the adaptation trace.
        let step = (trace.len() / 16).max(1);
        for (t, act, spill) in trace.iter().step_by(step) {
            table.row(&[f2(t / 3600.0), act.to_string(), f2(*spill)]);
        }
        println!("{}", table.render());
        let mean_act: f64 =
            trace.iter().map(|(_, a, _)| *a as f64).sum::<f64>() / trace.len().max(1) as f64;
        println!("mean ACT at this quota: {:.2}\n", mean_act);
    }
    println!("Expected shape: tighter quotas hold the ACT in a higher range (fewer categories");
    println!(
        "admitted); plentiful quotas let it settle at the floor, as in the paper's Figure 16."
    );
}
