//! Resilience figure: savings retention under increasing fault intensity.
//!
//! Sweeps the canonical fault plan (`FaultPlan::at_intensity`, seed 42)
//! across fault intensities and compares the graceful-degradation ladder
//! against the no-fallback ablation (the same faulty model behind the plain
//! adaptive policy). The headline claim: the ladder retains most of the
//! unfaulted savings even at full fault intensity, while the no-fallback
//! stack loses its savings for the duration of every model blackout.
//!
//! Set `BYOM_BENCH_QUICK=1` for the CI smoke configuration.

use byom_bench::report::f2;
use byom_bench::resilience::{
    quick_mode, resilience_context, run_resilience_sweep, INTENSITIES, RESILIENCE_QUOTA,
    RESILIENCE_SEED,
};
use byom_bench::Table;

fn main() {
    let quick = quick_mode();
    let ctx = resilience_context(quick);
    let sweep = run_resilience_sweep(&ctx, RESILIENCE_QUOTA, RESILIENCE_SEED, &INTENSITIES);

    let mut table = Table::new(
        format!(
            "Resilience: TCO savings retention vs fault intensity (seed {}, quota {:.0}%{})",
            RESILIENCE_SEED,
            RESILIENCE_QUOTA * 100.0,
            if quick { ", quick mode" } else { "" }
        ),
        &[
            "intensity",
            "ladder %sav",
            "ladder retain%",
            "no-fallback %sav",
            "no-fallback retain%",
            "faults",
            "blackouts",
            "model-rung%",
        ],
    );
    for point in &sweep.points {
        let ladder_occupancy = &point.ladder.resilience.fallback_occupancy;
        let total: u64 = ladder_occupancy.iter().sum();
        let model_share = if total == 0 {
            0.0
        } else {
            ladder_occupancy.first().copied().unwrap_or(0) as f64 / total as f64 * 100.0
        };
        table.row(&[
            format!("{:.2}", point.intensity),
            f2(point.ladder.tco_savings_percent()),
            f2(sweep.retention_percent(&point.ladder)),
            f2(point.no_fallback.tco_savings_percent()),
            f2(sweep.retention_percent(&point.no_fallback)),
            point.ladder.resilience.faults_injected().to_string(),
            point.ladder.resilience.model_blackouts.to_string(),
            f2(model_share),
        ]);
    }
    println!(
        "Unfaulted Adaptive Ranking: {:.2}% TCO savings\n",
        sweep.unfaulted.tco_savings_percent()
    );
    println!("{}", table.render());
    println!("Expected shape: the ladder's retention degrades gracefully with intensity and");
    println!("stays above the no-fallback ablation, which goes dark for every blackout window.");
}
