//! Table 4: sensitivity of end-to-end TCO savings and model accuracy to the
//! number of categories N, at a 10% SSD quota.
//!
//! Few categories are easy to predict but too coarse to rank jobs well; many
//! categories rank finely but each class is harder to predict. The paper's
//! sweet spot is N = 15.

use byom_bench::report::f2;
use byom_bench::{ExperimentContext, ExperimentParams, Table};
use byom_core::ByomPipeline;
use byom_trace::ClusterSpec;

fn main() {
    let quota = 0.1;
    let params = ExperimentParams::default();
    let ctx = ExperimentContext::prepare(ClusterSpec::balanced(0), params);
    let test_costs = ctx.cost_model.cost_trace(&ctx.test);

    let mut table = Table::new(
        "Table 4: TCO savings and top-1 accuracy vs number of categories (10% quota)",
        &["categories N", "TCO savings %", "top-1 accuracy"],
    );

    let mut best_baseline = f64::MIN;
    for r in ctx.run_all_methods(quota, false) {
        if r.method != "Adaptive Ranking" && r.method != "Adaptive Hash" {
            best_baseline = best_baseline.max(r.tco_savings_percent);
        }
    }

    for n in [2usize, 5, 15, 25, 35] {
        let trained = ByomPipeline::builder()
            .num_categories(n)
            .gbdt_trees(params.gbdt_trees)
            .build()
            .train(&ctx.train, &ctx.cost_model)
            .expect("training succeeds");
        let savings = ctx
            .run_policy(quota, &mut trained.adaptive_ranking_policy())
            .tco_savings_percent();
        let eval = trained
            .model()
            .evaluate(&ctx.test, &test_costs, trained.labeler());
        table.row(&[format!("N = {n}"), f2(savings), f2(eval.top1_accuracy)]);
    }
    table.row(&["Best baseline".into(), f2(best_baseline), "-".into()]);
    println!("{}", table.render());
    println!("Paper reference: N=2 -> 9.25% (73.4% acc), N=15 -> 12.7% (32.3% acc), N=35 -> 10.8% (21.2% acc);");
    println!("best baseline 10.7%. Expected shape: accuracy falls with N while savings peak at a moderate N.");
}
