//! Experiment setup and the compared-methods runner.

use byom_core::{ByomPipeline, TrainedByom};
use byom_cost::{CostModel, CostRates};
use byom_exec::prelude::*;
use byom_policies::{
    CategoryHeuristic, FirstFit, LifetimeMlBaseline, LifetimeModelConfig, OraclePolicy,
};
use byom_sim::{
    application_runtime_savings_percent, PlacementPolicy, SimConfig, SimulationResult, Simulator,
};
use byom_solver::{Oracle, OracleObjective};
use byom_trace::{ClusterSpec, JobId, Trace, TraceGenerator};

/// Parameters shared by most experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentParams {
    /// RNG seed for the training trace.
    pub train_seed: u64,
    /// RNG seed for the test trace.
    pub test_seed: u64,
    /// Training trace duration in hours (the paper uses one week; the
    /// default here is scaled down so experiments finish in minutes).
    pub train_hours: f64,
    /// Test trace duration in hours.
    pub test_hours: f64,
    /// Number of importance categories N.
    pub num_categories: usize,
    /// Maximum boosting rounds for the category model.
    pub gbdt_trees: usize,
    /// Thread budget for model training and the parallel sweep helpers
    /// ([`run_clusters_parallel`], [`run_quotas_parallel`],
    /// `run_resilience_sweep`). All layers share one persistent executor
    /// pool, so this is a single process-wide budget rather than a per-level
    /// multiplier: nested fan-outs (clusters × per-class trees × split
    /// search) cooperate inside it via work-stealing. `0` means "inherit the
    /// ambient budget" (`BYOM_THREADS` or all cores at top level); `1`
    /// forces strictly sequential execution at every nesting level. Results
    /// are bit-identical regardless of this setting.
    pub parallelism: usize,
}

impl Default for ExperimentParams {
    fn default() -> Self {
        ExperimentParams {
            train_seed: 1001,
            test_seed: 2002,
            train_hours: 12.0,
            test_hours: 6.0,
            num_categories: 15,
            gbdt_trees: 50,
            parallelism: 0,
        }
    }
}

/// A fully prepared experiment: train/test traces, cost model, and a trained
/// BYOM deployment for one cluster.
#[derive(Debug)]
pub struct ExperimentContext {
    /// The cluster specification the traces were generated from.
    pub spec: ClusterSpec,
    /// Training trace (the "historical week").
    pub train: Trace,
    /// Test trace (the "online week").
    pub test: Trace,
    /// The cost model.
    pub cost_model: CostModel,
    /// The trained BYOM deployment (labeler + category model).
    pub trained: TrainedByom,
    /// Parameters used to build the context.
    pub params: ExperimentParams,
}

/// One method's savings at one operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodResult {
    /// Method name as used in the paper's figures.
    pub method: String,
    /// TCO savings percent relative to all-on-HDD.
    pub tco_savings_percent: f64,
    /// TCIO savings percent relative to all-on-HDD.
    pub tcio_savings_percent: f64,
    /// Application run-time savings percent (Appendix C.1.2 model).
    pub runtime_savings_percent: f64,
}

impl ExperimentContext {
    /// Build an experiment context for one cluster.
    ///
    /// # Panics
    /// Panics if model training fails (which would indicate an empty or
    /// degenerate generated trace).
    pub fn prepare(spec: ClusterSpec, params: ExperimentParams) -> Self {
        // Pin the experiment's thread budget for everything preparation does
        // (trace generation, labeling, model training): nested parallel
        // calls inherit it instead of falling back to "all cores".
        byom_exec::install(params.parallelism, || {
            // `generate_cached` deduplicates trace generation process-wide,
            // so figure binaries that prepare overlapping contexts (and
            // parallel sweeps racing over the same specs) only pay for each
            // distinct (seed, spec, duration) once.
            let train = TraceGenerator::new(params.train_seed)
                .generate_cached(&spec, params.train_hours * 3600.0)
                .as_ref()
                .clone();
            let test = TraceGenerator::new(params.test_seed)
                .generate_cached(&spec, params.test_hours * 3600.0)
                .as_ref()
                .clone();
            let cost_model = CostModel::new(CostRates::default());
            let trained = ByomPipeline::builder()
                .num_categories(params.num_categories)
                .gbdt_trees(params.gbdt_trees)
                .parallelism(params.parallelism)
                .build()
                .train(&train, &cost_model)
                .expect("training the category model on a generated trace should succeed");
            ExperimentContext {
                spec,
                train,
                test,
                cost_model,
                trained,
                params,
            }
        })
    }

    /// Convenience: a balanced single-cluster context with default parameters.
    pub fn default_cluster() -> Self {
        ExperimentContext::prepare(ClusterSpec::balanced(0), ExperimentParams::default())
    }

    /// The simulator for a given SSD quota (fraction of the test trace's peak
    /// space usage).
    pub fn simulator(&self, quota_fraction: f64) -> Simulator {
        Simulator::new(
            SimConfig::try_from_quota_fraction(&self.test, quota_fraction)
                .expect("valid quota fraction"),
            self.cost_model,
        )
    }

    /// Run one policy on the test trace at the given quota.
    pub fn run_policy<P: PlacementPolicy + ?Sized>(
        &self,
        quota_fraction: f64,
        policy: &mut P,
    ) -> SimulationResult {
        self.simulator(quota_fraction).run(&self.test, policy)
    }

    /// Run the clairvoyant oracle (as a playback policy) on the test trace.
    pub fn run_oracle(&self, quota_fraction: f64, objective: OracleObjective) -> SimulationResult {
        let costs = self.cost_model.cost_trace(&self.test);
        let capacity = (self.test.peak_space_usage() as f64 * quota_fraction) as u64;
        let solution = Oracle::new(objective, capacity).solve(&costs);
        let ids: Vec<JobId> = self.test.iter().map(|j| j.id).collect();
        let name = match objective {
            OracleObjective::Tco => "Oracle TCO",
            OracleObjective::Tcio => "Oracle TCIO",
        };
        let mut policy = OraclePolicy::from_selection(name, &ids, &solution.on_ssd);
        self.run_policy(quota_fraction, &mut policy)
    }

    /// Run every compared method at the given quota and return one
    /// [`MethodResult`] per method, in the paper's usual order.
    ///
    /// `include_oracles` controls whether the clairvoyant bounds are included
    /// (they are the slowest part for large traces).
    pub fn run_all_methods(&self, quota_fraction: f64, include_oracles: bool) -> Vec<MethodResult> {
        // Pin this experiment's thread budget: before the unified executor,
        // the ML baseline trained below fell back to "all available cores"
        // even when `params.parallelism` was 1, because nested calls
        // resolved their own `available_parallelism` default. Installing the
        // budget makes `parallelism = 1` strictly sequential at every
        // nesting level.
        byom_exec::install(self.params.parallelism, || {
            self.run_all_methods_inner(quota_fraction, include_oracles)
        })
    }

    fn run_all_methods_inner(
        &self,
        quota_fraction: f64,
        include_oracles: bool,
    ) -> Vec<MethodResult> {
        let mut results = Vec::new();

        let mut first_fit = FirstFit::new();
        results.push(self.to_result(self.run_policy(quota_fraction, &mut first_fit)));

        let mut heuristic = CategoryHeuristic::default();
        results.push(self.to_result(self.run_policy(quota_fraction, &mut heuristic)));

        let ml_config = LifetimeModelConfig {
            gbdt: byom_gbdt::GbdtParams {
                num_classes: 8,
                num_trees: self.params.gbdt_trees.min(40),
                ..byom_gbdt::GbdtParams::default()
            },
            ..LifetimeModelConfig::default()
        };
        let mut ml_baseline = LifetimeMlBaseline::train(ml_config, &self.train)
            .expect("lifetime baseline training should succeed");
        results.push(self.to_result(self.run_policy(quota_fraction, &mut ml_baseline)));

        let mut hash = self.trained.adaptive_hash_policy();
        results.push(self.to_result(self.run_policy(quota_fraction, &mut hash)));

        let mut ranking = self.trained.adaptive_ranking_policy();
        results.push(self.to_result(self.run_policy(quota_fraction, &mut ranking)));

        if include_oracles {
            results.push(self.to_result(self.run_oracle(quota_fraction, OracleObjective::Tcio)));
            results.push(self.to_result(self.run_oracle(quota_fraction, OracleObjective::Tco)));
        }
        results
    }

    /// Convert a simulation result into a [`MethodResult`] row.
    pub fn to_result(&self, result: SimulationResult) -> MethodResult {
        MethodResult {
            method: result.policy_name.clone(),
            tco_savings_percent: result.tco_savings_percent(),
            tcio_savings_percent: result.tcio_savings_percent(),
            runtime_savings_percent: application_runtime_savings_percent(&result),
        }
    }
}

/// Evaluate `run` for every cluster spec on up to `parallelism` threads of
/// the shared executor pool (`0` = inherit the ambient budget, `1` = the
/// old sequential loop, at every nesting level).
///
/// Results come back in spec order, and every experiment is deterministic
/// given its spec, so the output is identical to mapping `run` over `specs`
/// sequentially. The closure receives the spec's position as well, since
/// per-cluster experiments often derive seeds or labels from it.
pub fn run_clusters_parallel<T, F>(specs: &[ClusterSpec], parallelism: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &ClusterSpec) -> T + Sync,
{
    (0..specs.len())
        .into_par_iter()
        .with_max_threads(parallelism)
        .map(|i| run(i, &specs[i]))
        .collect()
}

/// Run the compared-methods sweep of one prepared context across several
/// quotas on up to `parallelism` threads of the shared executor pool (`0` =
/// inherit the ambient budget, `1` = the old sequential loop, at every
/// nesting level). Returns one `Vec<MethodResult>` per quota,
/// in quota order — identical to calling
/// [`ExperimentContext::run_all_methods`] in a loop.
pub fn run_quotas_parallel(
    ctx: &ExperimentContext,
    quotas: &[f64],
    include_oracles: bool,
    parallelism: usize,
) -> Vec<Vec<MethodResult>> {
    quotas
        .par_iter()
        .with_max_threads(parallelism)
        .map(|&q| ctx.run_all_methods(q, include_oracles))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> ExperimentParams {
        ExperimentParams {
            train_hours: 6.0,
            test_hours: 3.0,
            num_categories: 5,
            gbdt_trees: 10,
            ..Default::default()
        }
    }

    #[test]
    fn context_prepares_and_runs_all_methods() {
        let ctx = ExperimentContext::prepare(ClusterSpec::balanced(0), quick_params());
        assert!(!ctx.train.is_empty());
        assert!(!ctx.test.is_empty());
        let results = ctx.run_all_methods(0.05, true);
        assert_eq!(results.len(), 7);
        let names: Vec<&str> = results.iter().map(|r| r.method.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "FirstFit",
                "Heuristic",
                "ML Baseline",
                "Adaptive Hash",
                "Adaptive Ranking",
                "Oracle TCIO",
                "Oracle TCO"
            ]
        );
        // The oracle TCO bound should be at least as good as every online
        // method, up to the oracle's greedy approximation gap: the Oracle
        // solver is a multi-ordering greedy (see byom_solver::exact), so an
        // online method can edge past it by a fraction of a percentage point
        // on some traces.
        let oracle_tco = results.last().unwrap().tco_savings_percent;
        for r in &results[..5] {
            assert!(
                r.tco_savings_percent <= oracle_tco + 0.5,
                "{} ({:.3}%) exceeded the oracle bound ({:.3}%)",
                r.method,
                r.tco_savings_percent,
                oracle_tco
            );
        }
    }

    #[test]
    fn oracle_runner_matches_objective_names() {
        let ctx = ExperimentContext::prepare(ClusterSpec::balanced(1), quick_params());
        let tco = ctx.run_oracle(0.1, OracleObjective::Tco);
        let tcio = ctx.run_oracle(0.1, OracleObjective::Tcio);
        assert_eq!(tco.policy_name, "Oracle TCO");
        assert_eq!(tcio.policy_name, "Oracle TCIO");
        // The TCIO oracle saves at least as much TCIO as the TCO oracle.
        assert!(tcio.tcio_savings_percent() >= tco.tcio_savings_percent() - 1e-6);
    }
}
