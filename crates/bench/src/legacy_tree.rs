//! Frozen copy of the pre-histogram-engine tree fit, kept as a reference.
//!
//! This is the row-major, rebuild-every-node split finder exactly as it
//! shipped before the histogram engine (column-major bins, pooled buffers,
//! sibling subtraction) replaced it. It exists for two reasons:
//!
//! * the `train` benchmark measures the engine's speedup against this
//!   baseline rather than against a guess;
//! * the equivalence tests pin `HistogramMode::Rebuild` to be bit-identical
//!   to this implementation, so the engine's reference mode is anchored to
//!   real history instead of to itself.
//!
//! Only the sequential path is preserved (the historical parallel search was
//! bit-identical to it by construction). Do not "improve" this module; its
//! value is that it does not change.

use byom_gbdt::{BinMapper, Dataset, Node, TreeParams};

/// Bin a dataset into the historical **row-major** layout
/// (`out[i * num_features + f]`), as `BinMapper::bin_dataset` did before it
/// grew the column-major `BinnedMatrix`.
pub fn bin_dataset_row_major(mapper: &BinMapper, data: &Dataset) -> Vec<u16> {
    let mut out = Vec::with_capacity(data.len() * data.num_features());
    for i in 0..data.len() {
        for f in 0..data.num_features() {
            out.push(mapper.bin(f, data.value(i, f)) as u16);
        }
    }
    out
}

struct FitContext<'a> {
    binned: &'a [u16],
    num_features: usize,
    mapper: &'a BinMapper,
    grad: &'a [f64],
    hess: &'a [f64],
    params: TreeParams,
}

struct BestSplit {
    feature: usize,
    bin: usize,
    gain: f64,
}

/// Fit a tree with the pre-engine algorithm and return its node array
/// (root first) — directly comparable to `Tree::nodes()`.
///
/// `params.histogram_mode` is ignored: this implementation predates it.
///
/// # Panics
/// Panics if `rows` is empty or the inputs disagree on the number of rows.
pub fn fit_legacy(
    binned: &[u16],
    num_features: usize,
    mapper: &BinMapper,
    grad: &[f64],
    hess: &[f64],
    rows: &[usize],
    params: TreeParams,
) -> Vec<Node> {
    assert!(!rows.is_empty(), "cannot fit a tree on zero rows");
    assert_eq!(grad.len(), hess.len(), "grad and hess must be parallel");
    assert_eq!(
        binned.len(),
        grad.len() * num_features,
        "binned matrix shape mismatch"
    );
    let ctx = FitContext {
        binned,
        num_features,
        mapper,
        grad,
        hess,
        params,
    };
    let mut nodes = Vec::new();
    let mut rows_owned: Vec<usize> = rows.to_vec();
    build_node(&mut nodes, &ctx, &mut rows_owned, 0);
    nodes
}

fn build_node(
    nodes: &mut Vec<Node>,
    ctx: &FitContext<'_>,
    rows: &mut [usize],
    depth: usize,
) -> usize {
    let (g_sum, h_sum) = rows.iter().fold((0.0, 0.0), |(g, h), &i| {
        (
            g + ctx.grad.get(i).copied().unwrap_or(0.0),
            h + ctx.hess.get(i).copied().unwrap_or(0.0),
        )
    });
    let leaf_value = -g_sum / (h_sum + ctx.params.l2_lambda);

    let node_idx = nodes.len();
    nodes.push(Node {
        feature: 0,
        threshold: 0.0,
        left: -1,
        right: -1,
        value: leaf_value,
        gain: 0.0,
    });

    if depth >= ctx.params.max_depth || rows.len() < 2 * ctx.params.min_samples_leaf {
        return node_idx;
    }

    let Some(best) = find_best_split(ctx, rows, g_sum, h_sum) else {
        return node_idx;
    };

    let threshold = ctx.mapper.edge(best.feature, best.bin);
    let mut split_point = 0;
    for i in 0..rows.len() {
        let row = rows.get(i).copied().unwrap_or(0);
        let bin = ctx
            .binned
            .get(row * ctx.num_features + best.feature)
            .copied()
            .unwrap_or(0) as usize;
        if bin <= best.bin {
            rows.swap(i, split_point);
            split_point += 1;
        }
    }
    if split_point == 0
        || split_point == rows.len()
        || split_point < ctx.params.min_samples_leaf
        || rows.len() - split_point < ctx.params.min_samples_leaf
    {
        return node_idx;
    }

    let (left_rows, right_rows) = rows.split_at_mut(split_point);
    let left_idx = build_node(nodes, ctx, left_rows, depth + 1);
    let right_idx = build_node(nodes, ctx, right_rows, depth + 1);

    if let Some(node) = nodes.get_mut(node_idx) {
        node.feature = best.feature as u32;
        node.threshold = threshold;
        node.left = left_idx as i32;
        node.right = right_idx as i32;
        node.gain = best.gain;
    }
    node_idx
}

fn find_best_split(
    ctx: &FitContext<'_>,
    rows: &[usize],
    g_total: f64,
    h_total: f64,
) -> Option<BestSplit> {
    let mut best: Option<BestSplit> = None;
    for f in 0..ctx.num_features {
        let Some(candidate) = feature_best_split(ctx, rows, f, g_total, h_total) else {
            continue;
        };
        if best.as_ref().is_none_or(|s| candidate.gain > s.gain) {
            best = Some(candidate);
        }
    }
    best
}

fn feature_best_split(
    ctx: &FitContext<'_>,
    rows: &[usize],
    f: usize,
    g_total: f64,
    h_total: f64,
) -> Option<BestSplit> {
    let lambda = ctx.params.l2_lambda;
    let parent_score = g_total * g_total / (h_total + lambda);
    let num_bins = ctx.mapper.num_bins(f);
    if num_bins < 2 {
        return None;
    }
    // The historical strided fill: every row touch jumps `num_features`
    // entries through the row-major matrix.
    let mut hist = vec![(0.0f64, 0.0f64, 0usize); num_bins];
    for &i in rows {
        let b = ctx
            .binned
            .get(i * ctx.num_features + f)
            .copied()
            .unwrap_or(0) as usize;
        if let (Some(slot), Some(&g), Some(&h)) =
            (hist.get_mut(b), ctx.grad.get(i), ctx.hess.get(i))
        {
            slot.0 += g;
            slot.1 += h;
            slot.2 += 1;
        }
    }
    let mut best: Option<BestSplit> = None;
    let mut g_left = 0.0;
    let mut h_left = 0.0;
    let mut c_left = 0usize;
    for (b, &(g_bin, h_bin, c_bin)) in hist.iter().enumerate().take(num_bins - 1) {
        g_left += g_bin;
        h_left += h_bin;
        c_left += c_bin;
        let c_right = rows.len() - c_left;
        if c_left < ctx.params.min_samples_leaf || c_right < ctx.params.min_samples_leaf {
            continue;
        }
        let g_right = g_total - g_left;
        let h_right = h_total - h_left;
        let gain = 0.5
            * (g_left * g_left / (h_left + lambda) + g_right * g_right / (h_right + lambda)
                - parent_score);
        if gain > ctx.params.min_split_gain && best.as_ref().is_none_or(|s| gain > s.gain) {
            best = Some(BestSplit {
                feature: f,
                bin: b,
                gain,
            });
        }
    }
    best
}
