//! Shared experiment harness used by the per-figure binaries and the
//! Criterion benchmarks.
//!
//! Every table and figure of the paper has a corresponding binary in
//! `src/bin/` (see DESIGN.md for the index). They all build on the helpers in
//! this crate: generating train/test traces, training a BYOM deployment, and
//! running the full set of compared methods (FirstFit, Heuristic, ML
//! Baseline, Adaptive Hash, Adaptive Ranking, Oracle TCIO, Oracle TCO)
//! through the simulator at a given SSD quota.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod harness;
pub mod legacy_tree;
pub mod report;
pub mod resilience;

pub use harness::{
    run_clusters_parallel, run_quotas_parallel, ExperimentContext, ExperimentParams, MethodResult,
};
pub use report::{print_table, Table};
pub use resilience::{run_resilience_sweep, ResiliencePoint, ResilienceSweep};
