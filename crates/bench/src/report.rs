//! Minimal plain-text table rendering for experiment binaries.

/// A simple column-aligned table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Rows shorter than the header are padded with blanks.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        let mut row: Vec<String> = cells.to_vec();
        while row.len() < self.header.len() {
            row.push(String::new());
        }
        self.rows.push(row);
        self
    }

    /// Append a row from `&str` cells.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render the table as a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Render and print a table to stdout.
pub fn print_table(table: &Table) {
    print!("{}", table.render());
}

/// Format a float with two decimal places (helper for experiment binaries).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_header_and_rows() {
        let mut t = Table::new("Demo", &["method", "savings"]);
        t.row_str(&["FirstFit", "1.00"]);
        t.row(&["Adaptive Ranking".to_string(), "3.47".to_string()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("method"));
        assert!(s.contains("Adaptive Ranking"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new("x", &["a", "b", "c"]);
        t.row_str(&["only-one"]);
        assert_eq!(t.num_rows(), 1);
        assert!(t.render().contains("only-one"));
    }

    #[test]
    fn f2_formats_two_decimals() {
        assert_eq!(f2(3.17159), "3.17");
        assert_eq!(f2(-0.5), "-0.50");
    }
}
