//! Shared sweep logic for the resilience experiment (`fig_resilience`):
//! fault intensity × policy, producing the savings-retention curve.
//!
//! The sweep lives here (rather than in the binary) so the facade's
//! integration tests and the `fig_resilience` binary run the exact same
//! code: one prepared context, one unfaulted twin run, and per intensity a
//! degradation-ladder run plus a no-fallback ablation run under the same
//! [`FaultPlan`].

use crate::harness::{ExperimentContext, ExperimentParams};
use byom_chaos::{attach_twin_delta, run_ladder, run_no_fallback, run_unfaulted, FaultPlan};
use byom_exec::prelude::*;
use byom_sim::SimulationResult;
use byom_trace::ClusterSpec;

/// The fixed seed the resilience figure (and its CI smoke run) uses.
pub const RESILIENCE_SEED: u64 = 42;

/// The canonical fault-intensity grid, from fault-free to full intensity.
pub const INTENSITIES: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// The SSD quota (fraction of the test trace's peak space usage) the
/// resilience experiment runs at: tight enough that placement quality —
/// and therefore model availability — matters.
pub const RESILIENCE_QUOTA: f64 = 0.05;

/// Whether quick mode is enabled (`BYOM_BENCH_QUICK=1`), shrinking the
/// workload so CI smoke runs finish fast.
pub fn quick_mode() -> bool {
    std::env::var("BYOM_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// Experiment parameters for the resilience sweep. The test window must
/// reach past the canonical fault plan's last device recovery (hour 4), so
/// even quick mode keeps a six-hour test trace and shrinks the training
/// side instead.
pub fn resilience_params(quick: bool) -> ExperimentParams {
    if quick {
        ExperimentParams {
            train_hours: 6.0,
            test_hours: 6.0,
            num_categories: 5,
            gbdt_trees: 15,
            ..Default::default()
        }
    } else {
        ExperimentParams::default()
    }
}

/// Prepare the resilience experiment's context (balanced cluster 0).
pub fn resilience_context(quick: bool) -> ExperimentContext {
    ExperimentContext::prepare(ClusterSpec::balanced(0), resilience_params(quick))
}

/// Both policies' results at one fault intensity.
#[derive(Debug, Clone, PartialEq)]
pub struct ResiliencePoint {
    /// Fault intensity in `[0, 1]` (see [`FaultPlan::at_intensity`]).
    pub intensity: f64,
    /// The degradation ladder's run under the plan.
    pub ladder: SimulationResult,
    /// The no-fallback ablation's run under the same plan.
    pub no_fallback: SimulationResult,
}

/// The full sweep: the unfaulted twin plus one [`ResiliencePoint`] per
/// intensity.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceSweep {
    /// The unfaulted Adaptive Ranking run every point is compared against.
    pub unfaulted: SimulationResult,
    /// Per-intensity results, in the order the intensities were given.
    pub points: Vec<ResiliencePoint>,
}

impl ResilienceSweep {
    /// Percentage of the unfaulted run's TCO savings a result retains
    /// (100 = no loss). Returns 100 when the unfaulted baseline saved
    /// nothing, since there was nothing to lose.
    pub fn retention_percent(&self, result: &SimulationResult) -> f64 {
        let base = self.unfaulted.tco_savings_percent();
        if base <= 0.0 {
            100.0
        } else {
            result.tco_savings_percent() / base * 100.0
        }
    }
}

/// Run the resilience sweep: one unfaulted twin, then per intensity a
/// ladder run and a no-fallback run under `FaultPlan::at_intensity(seed, i)`,
/// each with its savings delta versus the twin recorded in the resilience
/// report. Deterministic for a given context and seed.
///
/// Intensities fan out across the shared executor pool under the context's
/// thread budget: every point is a pure function of `(ctx, seed,
/// intensity)` and results come back in intensity order, so the sweep is
/// bit-identical to the old sequential loop.
pub fn run_resilience_sweep(
    ctx: &ExperimentContext,
    quota_fraction: f64,
    seed: u64,
    intensities: &[f64],
) -> ResilienceSweep {
    let sim = ctx.simulator(quota_fraction);
    let unfaulted = run_unfaulted(&ctx.trained, &sim, &ctx.test);
    let points = intensities
        .par_iter()
        .with_max_threads(ctx.params.parallelism)
        .map(|&intensity| {
            let plan = FaultPlan::at_intensity(seed, intensity);
            let mut ladder = run_ladder(&ctx.trained, &sim, &ctx.test, &plan);
            attach_twin_delta(&mut ladder, &unfaulted);
            let mut no_fallback = run_no_fallback(&ctx.trained, &sim, &ctx.test, &plan);
            attach_twin_delta(&mut no_fallback, &unfaulted);
            ResiliencePoint {
                intensity,
                ladder,
                no_fallback,
            }
        })
        .collect();
    ResilienceSweep { unfaulted, points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_and_anchored_by_the_unfaulted_twin() {
        let ctx = resilience_context(true);
        let a = run_resilience_sweep(&ctx, RESILIENCE_QUOTA, RESILIENCE_SEED, &[0.0, 1.0]);
        let b = run_resilience_sweep(&ctx, RESILIENCE_QUOTA, RESILIENCE_SEED, &[0.0, 1.0]);
        assert_eq!(a, b);
        let zero = a.points.first().expect("two points");
        assert_eq!(
            zero.no_fallback.savings, a.unfaulted.savings,
            "zero-fault ablation run matches the twin"
        );
        assert!((a.retention_percent(&zero.no_fallback) - 100.0).abs() < 1e-9);
    }
}
