//! Device-surface fault injection: SSD capacity step-downs/recoveries and
//! transient admission failures with deterministic retry-after windows.

use crate::plan::DeviceFaults;
use crate::{mix, salt};
use byom_sim::{DeviceModel, ResilienceReport};
use byom_trace::ShuffleJob;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A [`DeviceModel`] that applies a [`DeviceFaults`] schedule.
///
/// Capacity steps are a deterministic piecewise-constant multiplier over the
/// configured base capacity. Admission faults are two-phase: a per-job
/// seeded draw triggers an *outage*, after which every SSD admission fails
/// deterministically until `admission_retry_after_secs` of simulated time
/// have elapsed — modelling a device that NAKs writes and tells clients when
/// to retry.
#[derive(Debug, Clone)]
pub struct FaultyDevice {
    faults: DeviceFaults,
    seed: u64,
    active_step: Option<usize>,
    busy_until: Option<f64>,
    capacity_steps: u64,
    admission_outages: u64,
    admission_failures: u64,
}

impl FaultyDevice {
    /// Build a device from a fault schedule and the plan seed.
    pub fn new(faults: DeviceFaults, seed: u64) -> Self {
        FaultyDevice {
            faults,
            seed,
            active_step: None,
            busy_until: None,
            capacity_steps: 0,
            admission_outages: 0,
            admission_failures: 0,
        }
    }

    /// Capacity transitions observed so far.
    pub fn capacity_steps_observed(&self) -> u64 {
        self.capacity_steps
    }

    /// Distinct outages triggered so far.
    pub fn admission_outages(&self) -> u64 {
        self.admission_outages
    }

    /// SSD admissions rejected so far.
    pub fn admission_failures(&self) -> u64 {
        self.admission_failures
    }
}

impl DeviceModel for FaultyDevice {
    fn capacity_at(&mut self, now: f64, base_capacity_bytes: u64) -> u64 {
        if self.faults.capacity_steps.is_empty() {
            return base_capacity_bytes;
        }
        let mut active = None;
        for (i, step) in self.faults.capacity_steps.iter().enumerate() {
            if step.at_secs <= now {
                active = Some(i);
            }
        }
        if active != self.active_step {
            self.capacity_steps += 1;
            self.active_step = active;
        }
        let factor = active
            .and_then(|i| self.faults.capacity_steps.get(i))
            .map(|s| s.factor)
            .unwrap_or(1.0);
        (base_capacity_bytes as f64 * factor).max(0.0) as u64
    }

    fn try_admit(&mut self, now: f64, job: &ShuffleJob) -> bool {
        if let Some(until) = self.busy_until {
            if now < until {
                self.admission_failures += 1;
                return false;
            }
            self.busy_until = None;
        }
        let p = self.faults.admission_failure_probability;
        if p > 0.0 {
            let mut rng = StdRng::seed_from_u64(mix(self.seed, job.id.0, salt::DEVICE));
            if rng.gen_bool(p) {
                self.admission_outages += 1;
                self.admission_failures += 1;
                self.busy_until = Some(now + self.faults.admission_retry_after_secs);
                return false;
            }
        }
        true
    }

    fn fill_report(&self, report: &mut ResilienceReport) {
        report.capacity_steps = self.capacity_steps;
        report.admission_outages = self.admission_outages;
        report.admission_failures = self.admission_failures;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::CapacityStep;
    use byom_trace::{IoProfile, JobFeatures, JobId};

    fn job(id: u64, arrival: f64) -> ShuffleJob {
        ShuffleJob {
            id: JobId(id),
            cluster: 0,
            arrival,
            lifetime: 10.0,
            size_bytes: 100,
            io: IoProfile::default(),
            features: JobFeatures::default(),
            archetype: 0,
        }
    }

    #[test]
    fn fault_free_device_is_transparent() {
        let mut d = FaultyDevice::new(DeviceFaults::default(), 42);
        assert_eq!(d.capacity_at(0.0, 12_345), 12_345);
        assert_eq!(d.capacity_at(1e9, 12_345), 12_345);
        for i in 0..100 {
            assert!(d.try_admit(i as f64, &job(i, i as f64)));
        }
        let mut report = ResilienceReport::default();
        d.fill_report(&mut report);
        assert_eq!(report, ResilienceReport::default());
    }

    #[test]
    fn capacity_steps_down_and_recovers() {
        let faults = DeviceFaults {
            capacity_steps: vec![
                CapacityStep {
                    at_secs: 100.0,
                    factor: 0.5,
                },
                CapacityStep {
                    at_secs: 200.0,
                    factor: 1.0,
                },
            ],
            ..Default::default()
        };
        let mut d = FaultyDevice::new(faults, 42);
        assert_eq!(d.capacity_at(50.0, 1_000), 1_000);
        assert_eq!(d.capacity_at(100.0, 1_000), 500);
        assert_eq!(d.capacity_at(150.0, 1_000), 500);
        assert_eq!(d.capacity_at(250.0, 1_000), 1_000);
        assert_eq!(d.capacity_steps_observed(), 2, "down + recovery");
    }

    #[test]
    fn outage_blocks_admissions_until_retry_after() {
        let faults = DeviceFaults {
            admission_failure_probability: 1.0,
            admission_retry_after_secs: 100.0,
            ..Default::default()
        };
        let mut d = FaultyDevice::new(faults, 42);
        assert!(!d.try_admit(0.0, &job(1, 0.0)), "outage triggers");
        assert!(!d.try_admit(50.0, &job(2, 50.0)), "still in retry window");
        // At t=100 the window has elapsed; with p=1 a fresh outage triggers
        // immediately, so the admission still fails but a new outage counts.
        assert!(!d.try_admit(100.0, &job(3, 100.0)));
        assert_eq!(d.admission_outages(), 2);
        assert_eq!(d.admission_failures(), 3);
    }

    #[test]
    fn retry_after_lets_traffic_through_when_probability_drops() {
        // Trigger once, then verify a job after the window with a seed that
        // draws "no outage" is admitted.
        let faults = DeviceFaults {
            admission_failure_probability: 0.5,
            admission_retry_after_secs: 10.0,
            ..Default::default()
        };
        let mut d = FaultyDevice::new(faults, 42);
        let mut admitted = 0;
        let mut rejected = 0;
        for i in 0..200u64 {
            let t = i as f64 * 20.0; // spaced beyond the retry window
            if d.try_admit(t, &job(i, t)) {
                admitted += 1;
            } else {
                rejected += 1;
            }
        }
        assert!(admitted > 0, "some jobs pass");
        assert!(rejected > 0, "some outages trigger");
        assert_eq!(d.admission_failures(), rejected);
    }

    #[test]
    fn determinism_per_seed() {
        let faults = DeviceFaults {
            admission_failure_probability: 0.3,
            admission_retry_after_secs: 50.0,
            ..Default::default()
        };
        let run = |seed| {
            let mut d = FaultyDevice::new(faults.clone(), seed);
            (0..500u64)
                .map(|i| d.try_admit(i as f64, &job(i, i as f64)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(1337));
    }
}
