//! Trace-surface fault injection: drops, duplicates, metadata corruption,
//! and blanked feature columns.

use crate::plan::FaultPlan;
use crate::{mix, salt};
use byom_trace::{FeatureGroup, JobId, Trace};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Counts of trace faults actually injected by [`apply_trace_faults`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceFaultCounts {
    /// Jobs removed from the trace.
    pub jobs_dropped: u64,
    /// Jobs re-submitted with a fresh id.
    pub jobs_duplicated: u64,
    /// Jobs whose size/lifetime metadata was corrupted.
    pub jobs_corrupted: u64,
    /// Jobs that lost a feature group.
    pub features_blanked: u64,
}

/// Apply the plan's trace faults to a trace, returning the perturbed trace
/// and the realized fault counts.
///
/// Every per-job decision draws from an RNG seeded by
/// `mix(plan.seed, job.id, TRACE_SALT)`, so the perturbation is a pure
/// function of the plan and the job identities — independent of trace order
/// and bit-reproducible across runs. A fault-free plan returns the input
/// unchanged.
pub fn apply_trace_faults(trace: Trace, plan: &FaultPlan) -> (Trace, TraceFaultCounts) {
    let faults = plan.trace;
    let mut counts = TraceFaultCounts::default();
    if faults.is_fault_free() {
        return (trace, counts);
    }

    // Duplicates get ids above anything in the input so their own fault
    // streams (model, device) never collide with an original job's.
    let mut next_id = trace.max_job_id() + 1;
    let perturbed = trace.perturb(|job, out| {
        let mut rng = StdRng::seed_from_u64(mix(plan.seed, job.id.0, salt::TRACE));
        if faults.drop_probability > 0.0 && rng.gen_bool(faults.drop_probability) {
            counts.jobs_dropped += 1;
            return;
        }
        let duplicate =
            faults.duplicate_probability > 0.0 && rng.gen_bool(faults.duplicate_probability);
        let mut job = job;
        if faults.corrupt_probability > 0.0 && rng.gen_bool(faults.corrupt_probability) {
            let size_factor: f64 = rng.gen_range(0.5..2.0);
            let lifetime_factor: f64 = rng.gen_range(0.5..2.0);
            job.size_bytes = ((job.size_bytes as f64 * size_factor) as u64).max(1);
            job.lifetime = (job.lifetime * lifetime_factor).max(1.0);
            counts.jobs_corrupted += 1;
        }
        if faults.feature_blank_probability > 0.0 && rng.gen_bool(faults.feature_blank_probability)
        {
            let group = match rng.gen_range(0..4u32) {
                0 => FeatureGroup::HistoricalSystemMetrics,
                1 => FeatureGroup::ExecutionMetadata,
                2 => FeatureGroup::AllocatedResources,
                _ => FeatureGroup::JobTimestamp,
            };
            job.features.clear_group(group);
            counts.features_blanked += 1;
        }
        if duplicate {
            let mut twin = job.clone();
            twin.id = JobId(next_id);
            next_id += 1;
            twin.arrival += rng.gen_range(1.0..60.0);
            counts.jobs_duplicated += 1;
            out.push(job);
            out.push(twin);
        } else {
            out.push(job);
        }
    });
    (perturbed, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use byom_trace::{ClusterSpec, TraceGenerator};

    fn trace() -> Trace {
        TraceGenerator::new(11).generate(&ClusterSpec::balanced(0), 4.0 * 3_600.0)
    }

    #[test]
    fn zero_fault_plan_returns_the_trace_unchanged() {
        let t = trace();
        let (out, counts) = apply_trace_faults(t.clone(), &FaultPlan::none(42));
        assert_eq!(out, t);
        assert_eq!(counts, TraceFaultCounts::default());
    }

    #[test]
    fn faults_are_deterministic_for_a_seed() {
        let plan = FaultPlan::at_intensity(42, 0.8);
        let (a, ca) = apply_trace_faults(trace(), &plan);
        let (b, cb) = apply_trace_faults(trace(), &plan);
        assert_eq!(a, b);
        assert_eq!(ca, cb);
        let (c, cc) = apply_trace_faults(trace(), &FaultPlan::at_intensity(43, 0.8));
        assert!(c != a || cc != ca, "a different seed perturbs differently");
    }

    #[test]
    fn counts_reflect_realized_faults_and_sizes_add_up() {
        let t = trace();
        let plan = FaultPlan::at_intensity(42, 1.0);
        let (out, counts) = apply_trace_faults(t.clone(), &plan);
        assert!(counts.jobs_dropped > 0);
        assert!(counts.jobs_duplicated > 0);
        assert!(counts.jobs_corrupted > 0);
        assert!(counts.features_blanked > 0);
        let expected = t.len() as i64 - counts.jobs_dropped as i64 + counts.jobs_duplicated as i64;
        assert_eq!(out.len() as i64, expected);
    }

    #[test]
    fn duplicates_get_fresh_ids_and_later_arrivals() {
        let t = trace();
        let max_id = t.max_job_id();
        let plan = FaultPlan {
            trace: crate::plan::TraceFaults {
                duplicate_probability: 0.5,
                ..Default::default()
            },
            ..FaultPlan::none(9)
        };
        let (out, counts) = apply_trace_faults(t.clone(), &plan);
        assert!(counts.jobs_duplicated > 0);
        let twins: Vec<_> = out.iter().filter(|j| j.id.0 > max_id).collect();
        assert_eq!(twins.len() as u64, counts.jobs_duplicated);
        // Ids are unique across the whole perturbed trace.
        let mut ids: Vec<u64> = out.iter().map(|j| j.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), out.len());
    }

    #[test]
    fn corruption_changes_metadata_but_keeps_identity() {
        let t = trace();
        let plan = FaultPlan {
            trace: crate::plan::TraceFaults {
                corrupt_probability: 1.0,
                ..Default::default()
            },
            ..FaultPlan::none(5)
        };
        let (out, counts) = apply_trace_faults(t.clone(), &plan);
        assert_eq!(counts.jobs_corrupted, t.len() as u64);
        assert_eq!(out.len(), t.len());
        let changed = out
            .iter()
            .zip(t.iter())
            .filter(|(a, b)| a.size_bytes != b.size_bytes)
            .count();
        assert!(changed > t.len() / 2, "most sizes should move");
    }
}
