//! Deterministic fault injection and graceful-degradation harness for the
//! BYOM tiering pipeline.
//!
//! Production learned-tiering deployments fail in three places: the *trace*
//! (dropped, duplicated, or corrupted job metadata from flaky collection
//! pipelines), the *model* (prediction-service blackouts, stale or corrupted
//! labels), and the *device* (capacity step-downs, transient admission
//! failures). This crate injects all three fault surfaces into the simulator
//! in a **seeded, bit-reproducible** way and measures how much of the learned
//! policy's savings the graceful-degradation ladder
//! ([`byom_core::LadderPolicy`]) retains.
//!
//! The pieces:
//!
//! * [`FaultPlan`] — a serde-configurable description of what to break,
//!   seeded through the workspace's deterministic RNG. Every per-job fault
//!   decision is derived by hashing `(plan seed, job id, surface salt)`, so
//!   outcomes are independent of iteration order and identical across runs.
//! * [`apply_trace_faults`] — perturbs a [`byom_trace::Trace`] (drops,
//!   duplicates, metadata corruption, blanked feature columns).
//! * [`FaultyCategorizer`] — wraps any [`byom_core::Categorizer`] with
//!   prediction blackouts and confidence-calibrated label flips. It
//!   implements both [`byom_core::Categorizer`] (blackout ⇒ fall back to
//!   category 0 — the "no fallback" ablation) and
//!   [`byom_core::FallibleCategorizer`] (blackout ⇒ `None`, which the ladder
//!   detects and degrades around).
//! * [`FaultyDevice`] — a [`byom_sim::DeviceModel`] injecting SSD capacity
//!   step-downs/recoveries and transient admission failures with a
//!   deterministic retry-after window.
//! * [`run_ladder`] / [`run_no_fallback`] / [`run_unfaulted`] — twin-run
//!   helpers that wire everything together and merge all fault accounting
//!   into the result's [`byom_sim::ResilienceReport`].
//!
//! A zero-fault plan ([`FaultPlan::none`]) is guaranteed to leave every byte
//! of the simulation result identical to a plan-free run; the crate's tests
//! enforce this equivalence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod device;
pub mod inject;
pub mod model;
pub mod plan;
pub mod run;

pub use device::FaultyDevice;
pub use inject::{apply_trace_faults, TraceFaultCounts};
pub use model::FaultyCategorizer;
pub use plan::{
    BlackoutWindow, CapacityStep, DeviceFaults, FaultPlan, InvalidFaultPlan, ModelFaults,
    TraceFaults,
};
pub use run::{attach_twin_delta, run_ladder, run_ladder_with, run_no_fallback, run_unfaulted};

/// Mix a plan seed, a job id, and a fault-surface salt into an RNG seed.
///
/// SplitMix64-style finalizer: per-job streams are decorrelated and depend
/// only on the *identity* of the job, never on iteration order, so fault
/// decisions are stable under trace re-sorting, duplication, and filtering.
pub(crate) fn mix(seed: u64, job_id: u64, salt: u64) -> u64 {
    let mut z = seed
        ^ job_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ salt.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-surface salts feeding [`mix`], so the same job draws independent
/// streams for trace, model, and device faults.
pub(crate) mod salt {
    /// Trace-surface salt.
    pub const TRACE: u64 = 0x7472_6163;
    /// Model-surface salt.
    pub const MODEL: u64 = 0x6d6f_6465;
    /// Device-surface salt.
    pub const DEVICE: u64 = 0x6465_7669;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_stable_and_sensitive_to_every_input() {
        let base = mix(42, 7, salt::TRACE);
        assert_eq!(base, mix(42, 7, salt::TRACE), "pure function");
        assert_ne!(base, mix(43, 7, salt::TRACE), "seed matters");
        assert_ne!(base, mix(42, 8, salt::TRACE), "job id matters");
        assert_ne!(base, mix(42, 7, salt::MODEL), "salt matters");
    }
}
