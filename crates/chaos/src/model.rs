//! Model-surface fault injection: prediction blackouts and
//! confidence-calibrated label flips.

use crate::plan::ModelFaults;
use crate::{mix, salt};
use byom_core::{Categorizer, FallibleCategorizer};
use byom_trace::ShuffleJob;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::cell::Cell;

/// Wraps a categorizer with model faults.
///
/// The wrapper implements both category interfaces, with deliberately
/// different blackout semantics:
///
/// * [`FallibleCategorizer`] — blackout ⇒ `None`. This is what the
///   degradation ladder consumes: it *sees* the outage and falls back.
/// * [`Categorizer`] — blackout ⇒ category 0 (the "loses money on SSD"
///   category). This is the **no-fallback ablation**: a plain adaptive
///   policy keeps trusting the wedged prediction service and sends
///   everything to HDD for the duration.
///
/// Label flips are calibrated by the wrapped model's confidence: a flip
/// fires with probability `rate × (1.5 − confidence)` (clamped to `[0, 1]`),
/// so uncertain predictions corrupt more readily than confident ones, and
/// the flipped label is a *neighboring* category — the plausible kind of
/// error a miscalibrated ranking model makes.
///
/// All decisions are keyed by `mix(seed, job.id, MODEL_SALT)`:
/// order-independent and bit-reproducible. Fault counters use [`Cell`]
/// because [`Categorizer::categorize`] takes `&self`.
#[derive(Debug, Clone)]
pub struct FaultyCategorizer<C: Categorizer> {
    inner: C,
    faults: ModelFaults,
    seed: u64,
    blackouts: Cell<u64>,
    flips: Cell<u64>,
}

impl<C: Categorizer> FaultyCategorizer<C> {
    /// Wrap `inner` with the given model faults and seed.
    pub fn new(inner: C, faults: ModelFaults, seed: u64) -> Self {
        FaultyCategorizer {
            inner,
            faults,
            seed,
            blackouts: Cell::new(0),
            flips: Cell::new(0),
        }
    }

    /// The wrapped categorizer.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Decisions requested while the model was blacked out.
    pub fn blackouts(&self) -> u64 {
        self.blackouts.get()
    }

    /// Predictions flipped to a wrong category.
    pub fn labels_flipped(&self) -> u64 {
        self.flips.get()
    }

    /// Whether the prediction service is dark at simulated time `t`.
    pub fn in_blackout(&self, t: f64) -> bool {
        self.faults.blackout.is_some_and(|w| w.contains(t))
    }

    /// The (possibly flipped) prediction outside a blackout. With a zero
    /// flip rate this is exactly `inner.categorize(job)` — no RNG is built
    /// and no extra float path runs, so zero-fault runs are bit-identical to
    /// unwrapped ones.
    fn predicted(&self, job: &ShuffleJob) -> usize {
        let rate = self.faults.label_flip_rate;
        if rate <= 0.0 {
            return self.inner.categorize(job);
        }
        let (category, confidence) = self.inner.categorize_with_confidence(job);
        let p = (rate * (1.5 - confidence)).clamp(0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(mix(self.seed, job.id.0, salt::MODEL));
        if p > 0.0 && rng.gen_bool(p) {
            let n = self.inner.num_categories();
            let up = rng.gen_bool(0.5);
            let flipped = if up && category + 1 < n {
                category + 1
            } else if category > 0 {
                category - 1
            } else if category + 1 < n {
                category + 1
            } else {
                category
            };
            if flipped != category {
                self.flips.set(self.flips.get() + 1);
                return flipped;
            }
        }
        category
    }
}

impl<C: Categorizer> Categorizer for FaultyCategorizer<C> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn categorize(&self, job: &ShuffleJob) -> usize {
        if self.in_blackout(job.arrival) {
            self.blackouts.set(self.blackouts.get() + 1);
            // No-fallback semantics: a wedged service reports the bottom
            // category, so the adaptive policy stops admitting to SSD.
            0
        } else {
            self.predicted(job)
        }
    }

    fn num_categories(&self) -> usize {
        self.inner.num_categories()
    }
}

impl<C: Categorizer> FallibleCategorizer for FaultyCategorizer<C> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn try_categorize(&self, job: &ShuffleJob) -> Option<usize> {
        if self.in_blackout(job.arrival) {
            self.blackouts.set(self.blackouts.get() + 1);
            None
        } else {
            Some(self.predicted(job))
        }
    }

    fn num_categories(&self) -> usize {
        self.inner.num_categories()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::BlackoutWindow;
    use byom_core::HashCategorizer;
    use byom_trace::{ClusterSpec, Trace, TraceGenerator};

    fn trace() -> Trace {
        TraceGenerator::new(21).generate(&ClusterSpec::balanced(0), 2.0 * 3_600.0)
    }

    fn blackout(start: f64, duration: f64) -> ModelFaults {
        ModelFaults {
            blackout: Some(BlackoutWindow {
                start_secs: start,
                duration_secs: duration,
            }),
            label_flip_rate: 0.0,
        }
    }

    #[test]
    fn zero_faults_delegate_exactly() {
        let inner = HashCategorizer::new(8);
        let faulty = FaultyCategorizer::new(inner, ModelFaults::default(), 42);
        for job in trace().iter() {
            assert_eq!(Categorizer::categorize(&faulty, job), inner.categorize(job));
            assert_eq!(faulty.try_categorize(job), Some(inner.categorize(job)));
        }
        assert_eq!(faulty.blackouts(), 0);
        assert_eq!(faulty.labels_flipped(), 0);
        assert_eq!(Categorizer::num_categories(&faulty), 8);
        assert_eq!(Categorizer::name(&faulty), "Hash");
    }

    #[test]
    fn blackout_splits_the_two_interfaces() {
        let faulty = FaultyCategorizer::new(HashCategorizer::new(8), blackout(0.0, 1e12), 42);
        let t = trace();
        let job = t.iter().next().unwrap();
        assert_eq!(faulty.try_categorize(job), None, "ladder sees the outage");
        assert_eq!(
            Categorizer::categorize(&faulty, job),
            0,
            "no-fallback ablation trusts the wedged service"
        );
        assert_eq!(faulty.blackouts(), 2, "both calls counted");
    }

    #[test]
    fn blackout_window_is_time_scoped() {
        let faulty = FaultyCategorizer::new(HashCategorizer::new(8), blackout(1_000.0, 500.0), 42);
        assert!(!faulty.in_blackout(999.0));
        assert!(faulty.in_blackout(1_000.0));
        assert!(faulty.in_blackout(1_499.0));
        assert!(!faulty.in_blackout(1_500.0));
    }

    #[test]
    fn label_flips_hit_roughly_the_target_rate_and_stay_adjacent() {
        let faults = ModelFaults {
            blackout: None,
            label_flip_rate: 0.4,
        };
        let inner = HashCategorizer::new(8);
        let faulty = FaultyCategorizer::new(inner, faults, 42);
        let t = trace();
        let mut flipped = 0usize;
        for job in t.iter() {
            let clean = inner.categorize(job);
            let noisy = Categorizer::categorize(&faulty, job);
            if noisy != clean {
                flipped += 1;
                assert_eq!(
                    noisy.abs_diff(clean),
                    1,
                    "flips move to a neighboring category"
                );
            }
        }
        assert_eq!(flipped as u64, faulty.labels_flipped());
        // Hash is fully confident, so p = 0.4 × 0.5 = 0.2 per job.
        let rate = flipped as f64 / t.len() as f64;
        assert!(
            (0.1..=0.3).contains(&rate),
            "flip rate {rate:.3} far from calibrated 0.2"
        );
    }

    #[test]
    fn flips_are_deterministic_per_seed() {
        let faults = ModelFaults {
            blackout: None,
            label_flip_rate: 0.5,
        };
        let t = trace();
        let a = FaultyCategorizer::new(HashCategorizer::new(8), faults, 7);
        let b = FaultyCategorizer::new(HashCategorizer::new(8), faults, 7);
        for job in t.iter() {
            assert_eq!(
                Categorizer::categorize(&a, job),
                Categorizer::categorize(&b, job)
            );
        }
        assert_eq!(a.labels_flipped(), b.labels_flipped());
    }
}
