//! The serde-configurable fault plan: what to break, how often, and with
//! which seed.

use serde::{Deserialize, Serialize};

/// Trace-surface faults: flaky metadata-collection pipelines.
///
/// Each probability is evaluated independently per job from a seeded,
/// job-id-keyed stream; all values must lie in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceFaults {
    /// Probability a job is silently dropped from the trace.
    pub drop_probability: f64,
    /// Probability a job is re-submitted (duplicated with a fresh id and a
    /// slightly later arrival).
    pub duplicate_probability: f64,
    /// Probability a job's size and lifetime metadata are corrupted by a
    /// random factor in `[0.5, 2)`.
    pub corrupt_probability: f64,
    /// Probability one of the job's feature groups is blanked, as when an
    /// upstream feature pipeline fails to deliver a column set.
    pub feature_blank_probability: f64,
}

impl TraceFaults {
    /// Whether no trace fault can ever fire.
    pub fn is_fault_free(&self) -> bool {
        self.drop_probability == 0.0
            && self.duplicate_probability == 0.0
            && self.corrupt_probability == 0.0
            && self.feature_blank_probability == 0.0
    }
}

/// A contiguous window of simulated time during which the prediction
/// service cannot answer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlackoutWindow {
    /// Start of the blackout, in simulated seconds.
    pub start_secs: f64,
    /// Length of the blackout, in simulated seconds.
    pub duration_secs: f64,
}

impl BlackoutWindow {
    /// Whether simulated time `t` falls inside the blackout.
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start_secs && t < self.start_secs + self.duration_secs
    }
}

/// Model-surface faults: blackouts and label corruption.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ModelFaults {
    /// Prediction blackout window, if any.
    pub blackout: Option<BlackoutWindow>,
    /// Target label-flip error rate in `[0, 1]`. The realized per-job flip
    /// probability is calibrated by the model's confidence: confident
    /// predictions flip less often than uncertain ones
    /// (`rate × (1.5 − confidence)`, clamped to `[0, 1]`).
    pub label_flip_rate: f64,
}

impl ModelFaults {
    /// Whether no model fault can ever fire.
    pub fn is_fault_free(&self) -> bool {
        self.blackout.is_none() && self.label_flip_rate == 0.0
    }
}

/// One SSD capacity transition: at `at_secs`, the usable capacity becomes
/// `factor ×` the configured base capacity (a factor of `1.0` models a
/// recovery; factors below `1.0` model step-downs from failed drives or
/// reclaimed quota).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityStep {
    /// Simulated time at which the step takes effect.
    pub at_secs: f64,
    /// Capacity multiplier from this time onward (until the next step).
    pub factor: f64,
}

/// Device-surface faults: capacity steps and transient admission failures.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DeviceFaults {
    /// Capacity transitions in ascending `at_secs` order.
    pub capacity_steps: Vec<CapacityStep>,
    /// Probability an SSD admission triggers a transient outage.
    pub admission_failure_probability: f64,
    /// After an outage triggers, every SSD admission fails deterministically
    /// until this many simulated seconds have elapsed.
    pub admission_retry_after_secs: f64,
}

impl DeviceFaults {
    /// Whether no device fault can ever fire.
    pub fn is_fault_free(&self) -> bool {
        self.capacity_steps.is_empty() && self.admission_failure_probability == 0.0
    }
}

/// A fault plan describes every fault the run injects. Zero probabilities,
/// no blackout, and no capacity steps mean "inject nothing", and a
/// zero-fault plan is guaranteed to reproduce the plan-free run bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for every fault decision in the run.
    pub seed: u64,
    /// Trace-surface faults.
    pub trace: TraceFaults,
    /// Model-surface faults.
    pub model: ModelFaults,
    /// Device-surface faults.
    pub device: DeviceFaults,
}

/// A fault plan failed validation: some knob is outside its legal range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidFaultPlan {
    /// The offending field, dotted from the plan root.
    pub field: &'static str,
    /// The offending value.
    pub value: f64,
}

impl std::fmt::Display for InvalidFaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fault plan field `{}` out of range: {}",
            self.field, self.value
        )
    }
}

impl std::error::Error for InvalidFaultPlan {}

fn check_probability(field: &'static str, value: f64) -> Result<(), InvalidFaultPlan> {
    if (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(InvalidFaultPlan { field, value })
    }
}

fn check_non_negative(field: &'static str, value: f64) -> Result<(), InvalidFaultPlan> {
    if value.is_finite() && value >= 0.0 {
        Ok(())
    } else {
        Err(InvalidFaultPlan { field, value })
    }
}

impl FaultPlan {
    /// The zero-fault plan: nothing ever fires. Running under this plan is
    /// bit-identical to running with no plan at all.
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            trace: TraceFaults::default(),
            model: ModelFaults::default(),
            device: DeviceFaults::default(),
        }
    }

    /// A canonical all-surface plan scaled by `intensity` in `[0, 1]`
    /// (clamped). Intensity 0 equals [`FaultPlan::none`]; higher intensities
    /// strictly widen every fault: probabilities grow linearly and the model
    /// blackout window grows from the same fixed start, so the faults at a
    /// lower intensity are a subset of those at a higher one. This nesting is
    /// what makes the savings-retention curve (and the ladder-monotonicity
    /// property test) meaningful.
    pub fn at_intensity(seed: u64, intensity: f64) -> Self {
        let i = intensity.clamp(0.0, 1.0);
        if i == 0.0 {
            return FaultPlan::none(seed);
        }
        FaultPlan {
            seed,
            trace: TraceFaults {
                drop_probability: 0.05 * i,
                duplicate_probability: 0.05 * i,
                corrupt_probability: 0.10 * i,
                feature_blank_probability: 0.10 * i,
            },
            model: ModelFaults {
                // Nested windows: all intensities black out from hour 1, the
                // window just lasts longer at higher intensity (up to 3 h).
                blackout: Some(BlackoutWindow {
                    start_secs: 3_600.0,
                    duration_secs: 3.0 * 3_600.0 * i,
                }),
                label_flip_rate: 0.30 * i,
            },
            device: DeviceFaults {
                // Step down at hour 2, recover at hour 4. Device faults are
                // kept milder than the model faults on purpose: no rung can
                // route around a device outage, so past a point they only
                // flatten every policy equally instead of separating them.
                capacity_steps: vec![
                    CapacityStep {
                        at_secs: 2.0 * 3_600.0,
                        factor: 1.0 - 0.3 * i,
                    },
                    CapacityStep {
                        at_secs: 4.0 * 3_600.0,
                        factor: 1.0,
                    },
                ],
                admission_failure_probability: 0.005 * i,
                admission_retry_after_secs: 60.0,
            },
        }
    }

    /// Whether this plan can never inject any fault.
    pub fn is_fault_free(&self) -> bool {
        self.trace.is_fault_free() && self.model.is_fault_free() && self.device.is_fault_free()
    }

    /// Check every knob is within its legal range.
    ///
    /// # Errors
    /// Returns the first out-of-range field found.
    pub fn validate(&self) -> Result<(), InvalidFaultPlan> {
        check_probability("trace.drop_probability", self.trace.drop_probability)?;
        check_probability(
            "trace.duplicate_probability",
            self.trace.duplicate_probability,
        )?;
        check_probability("trace.corrupt_probability", self.trace.corrupt_probability)?;
        check_probability(
            "trace.feature_blank_probability",
            self.trace.feature_blank_probability,
        )?;
        if let Some(w) = &self.model.blackout {
            check_non_negative("model.blackout.start_secs", w.start_secs)?;
            check_non_negative("model.blackout.duration_secs", w.duration_secs)?;
        }
        check_probability("model.label_flip_rate", self.model.label_flip_rate)?;
        let mut previous = f64::NEG_INFINITY;
        for step in &self.device.capacity_steps {
            check_non_negative("device.capacity_steps.at_secs", step.at_secs)?;
            check_non_negative("device.capacity_steps.factor", step.factor)?;
            if step.at_secs < previous {
                return Err(InvalidFaultPlan {
                    field: "device.capacity_steps.at_secs (ordering)",
                    value: step.at_secs,
                });
            }
            previous = step.at_secs;
        }
        check_probability(
            "device.admission_failure_probability",
            self.device.admission_failure_probability,
        )?;
        check_non_negative(
            "device.admission_retry_after_secs",
            self.device.admission_retry_after_secs,
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_fault_free_and_valid() {
        let plan = FaultPlan::none(42);
        assert!(plan.is_fault_free());
        assert!(plan.validate().is_ok());
        assert_eq!(plan, FaultPlan::at_intensity(42, 0.0));
    }

    #[test]
    fn intensity_plans_are_valid_and_nested() {
        let lo = FaultPlan::at_intensity(42, 0.25);
        let hi = FaultPlan::at_intensity(42, 1.0);
        assert!(lo.validate().is_ok());
        assert!(hi.validate().is_ok());
        assert!(!lo.is_fault_free());
        let (lo_w, hi_w) = (lo.model.blackout.unwrap(), hi.model.blackout.unwrap());
        assert_eq!(lo_w.start_secs, hi_w.start_secs, "windows share a start");
        assert!(lo_w.duration_secs < hi_w.duration_secs, "windows nest");
        assert!(lo.trace.drop_probability < hi.trace.drop_probability);
        assert!(
            FaultPlan::at_intensity(42, 7.0).validate().is_ok(),
            "clamped"
        );
    }

    #[test]
    fn validate_rejects_out_of_range_knobs() {
        let mut plan = FaultPlan::none(1);
        plan.trace.drop_probability = 1.5;
        let err = plan.validate().unwrap_err();
        assert_eq!(err.field, "trace.drop_probability");
        assert!(err.to_string().contains("out of range"));

        let mut plan = FaultPlan::none(1);
        plan.device.capacity_steps = vec![
            CapacityStep {
                at_secs: 100.0,
                factor: 0.5,
            },
            CapacityStep {
                at_secs: 50.0,
                factor: 1.0,
            },
        ];
        assert!(plan.validate().is_err(), "unsorted steps rejected");
    }

    #[test]
    fn blackout_window_containment() {
        let w = BlackoutWindow {
            start_secs: 100.0,
            duration_secs: 50.0,
        };
        assert!(!w.contains(99.9));
        assert!(w.contains(100.0));
        assert!(w.contains(149.9));
        assert!(!w.contains(150.0));
    }

    #[test]
    fn plan_round_trips_through_serde() {
        let plan = FaultPlan::at_intensity(7, 0.5);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
