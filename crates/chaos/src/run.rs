//! Twin-run helpers: wire a fault plan through the trace, model, and device
//! surfaces, run the simulator, and merge every fault count into the
//! result's [`ResilienceReport`].

use crate::device::FaultyDevice;
use crate::inject::{apply_trace_faults, TraceFaultCounts};
use crate::model::FaultyCategorizer;
use crate::plan::FaultPlan;
use byom_core::{AdaptivePolicy, LadderConfig, TrainedByom};
use byom_sim::{ResilienceReport, SimulationResult, Simulator};
use byom_trace::Trace;

fn merge_counts(
    report: &mut ResilienceReport,
    trace_counts: &TraceFaultCounts,
    blackouts: u64,
    flips: u64,
) {
    report.jobs_dropped = trace_counts.jobs_dropped;
    report.jobs_duplicated = trace_counts.jobs_duplicated;
    report.jobs_corrupted = trace_counts.jobs_corrupted;
    report.features_blanked = trace_counts.features_blanked;
    report.model_blackouts = blackouts;
    report.labels_flipped = flips;
}

/// Run the plain (unfaulted) Adaptive Ranking policy: the twin against which
/// faulted runs are compared.
pub fn run_unfaulted(trained: &TrainedByom, sim: &Simulator, test: &Trace) -> SimulationResult {
    sim.run(test, &mut trained.adaptive_ranking_policy())
}

/// Run the degradation ladder (with default ladder settings) under a fault
/// plan. See [`run_ladder_with`].
pub fn run_ladder(
    trained: &TrainedByom,
    sim: &Simulator,
    test: &Trace,
    plan: &FaultPlan,
) -> SimulationResult {
    run_ladder_with(
        trained,
        sim,
        test,
        plan,
        LadderConfig {
            adaptive: *trained.adaptive_config(),
            ..LadderConfig::default()
        },
    )
}

/// Run the degradation ladder under a fault plan: the trace is perturbed,
/// the trained model is wrapped in a [`FaultyCategorizer`] (whose blackouts
/// the ladder detects and degrades around), and the run executes on a
/// [`FaultyDevice`]. All fault counts, the ladder's rung occupancy, and the
/// device accounting end up in the result's [`ResilienceReport`].
///
/// Under a zero-fault plan the result is byte-identical to
/// `sim.run(test, &mut trained.ladder_policy())`.
pub fn run_ladder_with(
    trained: &TrainedByom,
    sim: &Simulator,
    test: &Trace,
    plan: &FaultPlan,
    config: LadderConfig,
) -> SimulationResult {
    let (faulted, trace_counts) = apply_trace_faults(test.clone(), plan);
    let faulty = FaultyCategorizer::new(trained.model().clone(), plan.model, plan.seed);
    let mut policy = trained.ladder_policy_with(faulty, config);
    let mut device = FaultyDevice::new(plan.device.clone(), plan.seed);
    let mut result = sim.run_with_device(&faulted, &mut policy, &mut device);
    merge_counts(
        &mut result.resilience,
        &trace_counts,
        policy.model().blackouts(),
        policy.model().labels_flipped(),
    );
    result
}

/// Run the **no-fallback ablation** under a fault plan: the same faulty
/// model, trace, and device as [`run_ladder_with`], but behind the plain
/// adaptive policy, which cannot see blackouts — it keeps consuming the
/// wedged service's category-0 answers and loses its savings for the
/// duration. The gap between this run and the ladder run is the value of
/// graceful degradation.
///
/// Under a zero-fault plan the result is byte-identical to
/// `sim.run(test, &mut trained.adaptive_ranking_policy())`.
pub fn run_no_fallback(
    trained: &TrainedByom,
    sim: &Simulator,
    test: &Trace,
    plan: &FaultPlan,
) -> SimulationResult {
    let (faulted, trace_counts) = apply_trace_faults(test.clone(), plan);
    let faulty = FaultyCategorizer::new(trained.model().clone(), plan.model, plan.seed);
    let mut policy = AdaptivePolicy::new(faulty, *trained.adaptive_config());
    let mut device = FaultyDevice::new(plan.device.clone(), plan.seed);
    let mut result = sim.run_with_device(&faulted, &mut policy, &mut device);
    merge_counts(
        &mut result.resilience,
        &trace_counts,
        policy.categorizer().blackouts(),
        policy.categorizer().labels_flipped(),
    );
    result
}

/// Record the faulted run's savings delta (percentage points of TCO savings)
/// versus its unfaulted twin in the faulted result's resilience report.
pub fn attach_twin_delta(faulted: &mut SimulationResult, unfaulted: &SimulationResult) {
    faulted.resilience.savings_delta_percent =
        faulted.tco_savings_percent() - unfaulted.tco_savings_percent();
}

#[cfg(test)]
mod tests {
    use super::*;
    use byom_core::ByomPipeline;
    use byom_cost::{CostModel, CostRates};
    use byom_sim::SimConfig;
    use byom_trace::{ClusterSpec, TraceGenerator};

    fn setup() -> (TrainedByom, Simulator, Trace) {
        let spec = ClusterSpec::balanced(0);
        let train = TraceGenerator::new(71).generate(&spec, 8.0 * 3_600.0);
        let test = TraceGenerator::new(72).generate(&spec, 6.0 * 3_600.0);
        let cost_model = CostModel::new(CostRates::default());
        let trained = ByomPipeline::builder()
            .num_categories(5)
            .gbdt_trees(15)
            .build()
            .train(&train, &cost_model)
            .unwrap();
        let config = SimConfig::try_from_quota_fraction(&test, 0.05).expect("valid quota");
        (trained, Simulator::new(config, cost_model), test)
    }

    #[test]
    fn zero_fault_no_fallback_run_is_byte_identical_to_plain_run() {
        let (trained, sim, test) = setup();
        let faulted = run_no_fallback(&trained, &sim, &test, &FaultPlan::none(42));
        let plain = run_unfaulted(&trained, &sim, &test);
        assert_eq!(
            serde_json::to_string(&faulted).unwrap(),
            serde_json::to_string(&plain).unwrap()
        );
    }

    #[test]
    fn zero_fault_ladder_run_is_byte_identical_to_plain_ladder_run() {
        let (trained, sim, test) = setup();
        let faulted = run_ladder(&trained, &sim, &test, &FaultPlan::none(42));
        let plain = sim.run(&test, &mut trained.ladder_policy());
        assert_eq!(
            serde_json::to_string(&faulted).unwrap(),
            serde_json::to_string(&plain).unwrap()
        );
    }

    #[test]
    fn same_seed_gives_identical_resilience_reports() {
        let (trained, sim, test) = setup();
        let plan = FaultPlan::at_intensity(42, 0.75);
        let a = run_ladder(&trained, &sim, &test, &plan);
        let b = run_ladder(&trained, &sim, &test, &plan);
        assert_eq!(a.resilience, b.resilience);
        assert_eq!(a, b, "entire results match, not just the report");
        assert!(a.resilience.faults_injected() > 0, "faults actually fired");
    }

    #[test]
    fn ladder_occupancy_and_twin_delta_are_reported() {
        let (trained, sim, test) = setup();
        let plan = FaultPlan::at_intensity(42, 1.0);
        let unfaulted = run_unfaulted(&trained, &sim, &test);
        let mut faulted = run_ladder(&trained, &sim, &test, &plan);
        attach_twin_delta(&mut faulted, &unfaulted);
        let occupancy = &faulted.resilience.fallback_occupancy;
        assert_eq!(occupancy.len(), byom_core::LADDER_RUNGS);
        assert_eq!(
            occupancy.iter().sum::<u64>(),
            faulted.outcomes.len() as u64,
            "every placement is attributed to a rung"
        );
        assert!(
            occupancy.iter().skip(1).sum::<u64>() > 0,
            "full-intensity faults push decisions off the model rung"
        );
        assert!(
            faulted.resilience.savings_delta_percent.is_finite(),
            "twin delta recorded"
        );
    }
}
