//! The Adaptive Category Selection Algorithm (Algorithm 1 of the paper).
//!
//! The storage layer cannot rely on a fixed SSD capacity — free capacity
//! fluctuates with co-located workloads — so instead of reasoning about
//! bytes it observes a single behavioural signal: the **spillover-TCIO
//! percentage**, the portion of SSD-scheduled jobs' TCIO that failed to be
//! realized because the SSD was full. The algorithm keeps an *admission
//! category threshold* (ACT): arriving jobs whose predicted category is at or
//! above the ACT are scheduled to SSD. When the observed spillover percentage
//! exceeds the tolerance range, the ACT is raised (admit fewer, more
//! important categories); when it falls below the range, the ACT is lowered
//! (admit more categories). Two smoothing mechanisms bound the churn: the
//! tolerance *range* (no change inside it) and a minimum decision interval.

use byom_sim::JobOutcome;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Which feedback signal drives threshold adaptation.
///
/// The paper uses spillover TCIO; direct SSD-utilization feedback is kept as
/// an ablation option (it requires knowing the capacity, which the paper
/// argues is impractical across heterogeneous clusters).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FeedbackSignal {
    /// The paper's signal: spillover-TCIO percentage over the look-back window.
    SpilloverTcio,
    /// Ablation: jobs' failed-admission byte fraction over the look-back window.
    SpilloverBytes,
}

/// Configuration of the adaptive category selection algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Number of model categories N (ACT stays within `[1, N-1]`).
    pub num_categories: usize,
    /// Look-back window length `t_w` in seconds (jobs *starting* within the
    /// window are considered, per the paper's design discussion).
    pub lookback_window_secs: f64,
    /// Admission decisions stay in effect for `t_l` seconds before the ACT is
    /// re-evaluated.
    pub decision_interval_secs: f64,
    /// Spillover tolerance range `[T_l, T_u]` as fractions (0.01 = 1%).
    pub spillover_tolerance: (f64, f64),
    /// Initial admission category threshold.
    pub initial_act: usize,
    /// The feedback signal to use.
    pub signal: FeedbackSignal,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            num_categories: 15,
            lookback_window_secs: 900.0,
            decision_interval_secs: 900.0,
            spillover_tolerance: (0.01, 0.15),
            initial_act: 1,
            signal: FeedbackSignal::SpilloverTcio,
        }
    }
}

impl AdaptiveConfig {
    /// Validate the configuration.
    ///
    /// # Errors
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_categories < 2 {
            return Err(format!(
                "num_categories must be >= 2, got {}",
                self.num_categories
            ));
        }
        if self.lookback_window_secs <= 0.0 || self.decision_interval_secs <= 0.0 {
            return Err("window and decision interval must be positive".into());
        }
        let (lo, hi) = self.spillover_tolerance;
        if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || lo > hi {
            return Err(format!("invalid spillover tolerance range [{lo}, {hi}]"));
        }
        if self.initial_act == 0 || self.initial_act > self.num_categories - 1 {
            return Err(format!(
                "initial_act must be in [1, {}], got {}",
                self.num_categories - 1,
                self.initial_act
            ));
        }
        Ok(())
    }
}

/// One entry of the observation history `X_h`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Observation {
    arrival: f64,
    scheduled_ssd: bool,
    ssd_fraction: f64,
    spillover_time: Option<f64>,
    tcio_hdd: f64,
    end: f64,
    size_bytes: u64,
}

/// The adaptive category selection state machine (Algorithm 1).
#[derive(Debug, Clone)]
pub struct AdaptiveSelector {
    config: AdaptiveConfig,
    act: usize,
    last_decision_time: Option<f64>,
    history: VecDeque<Observation>,
    /// Recorded (time, ACT, spillover percentage) samples for analysis
    /// (Figure 16 of the paper).
    trace: Vec<(f64, usize, f64)>,
}

impl AdaptiveSelector {
    /// Create a selector with the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid; validate it first with
    /// [`AdaptiveConfig::validate`] to handle errors gracefully.
    pub fn new(config: AdaptiveConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid adaptive config: {e}");
        }
        AdaptiveSelector {
            act: config.initial_act,
            config,
            last_decision_time: None,
            history: VecDeque::new(),
            trace: Vec::new(),
        }
    }

    /// The current admission category threshold.
    pub fn act(&self) -> usize {
        self.act
    }

    /// The configuration in use.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// The recorded `(time, ACT, spillover_percent)` adaptation trace.
    pub fn adaptation_trace(&self) -> &[(f64, usize, f64)] {
        &self.trace
    }

    /// Decide whether a job arriving at `now` with predicted `category`
    /// should be scheduled to SSD. This also performs the periodic ACT
    /// update when the previous decision has expired.
    pub fn admit(&mut self, now: f64, category: usize) -> bool {
        let expired = self
            .last_decision_time
            .is_none_or(|td| now >= td + self.config.decision_interval_secs);
        if expired {
            self.update_act(now);
            self.last_decision_time = Some(now);
        }
        category >= self.act
    }

    /// Record the realized outcome of a job (the simulator's feedback).
    pub fn observe(&mut self, outcome: &JobOutcome) {
        self.history.push_back(Observation {
            arrival: outcome.arrival,
            scheduled_ssd: outcome.scheduled == byom_sim::Device::Ssd,
            ssd_fraction: outcome.ssd_fraction,
            spillover_time: outcome.spillover_time,
            tcio_hdd: outcome.tcio_hdd,
            end: outcome.end,
            size_bytes: outcome.size_bytes,
        });
    }

    /// The spillover percentage over the current look-back window ending at
    /// `now`, according to the configured feedback signal. Returns 0.0 when
    /// no SSD-scheduled jobs are in the window.
    pub fn spillover_fraction(&mut self, now: f64) -> f64 {
        let window_start = now - self.config.lookback_window_secs;
        // Remove expired observations (jobs that *started* before the window).
        while let Some(front) = self.history.front() {
            if front.arrival < window_start {
                self.history.pop_front();
            } else {
                break;
            }
        }
        let mut spilled = 0.0;
        let mut scheduled = 0.0;
        for o in &self.history {
            if !o.scheduled_ssd {
                continue;
            }
            match self.config.signal {
                FeedbackSignal::SpilloverTcio => {
                    scheduled += o.tcio_hdd;
                    if let Some(ts) = o.spillover_time {
                        let t = now.min(o.end);
                        if t > o.arrival && t >= ts {
                            let window = (t - o.arrival).max(1e-9);
                            let spilled_window = (t - ts).max(0.0).min(window);
                            spilled +=
                                (spilled_window / window) * (1.0 - o.ssd_fraction) * o.tcio_hdd;
                        }
                    }
                }
                FeedbackSignal::SpilloverBytes => {
                    scheduled += o.size_bytes as f64;
                    spilled += (1.0 - o.ssd_fraction) * o.size_bytes as f64;
                }
            }
        }
        if scheduled <= 0.0 {
            0.0
        } else {
            spilled / scheduled
        }
    }

    fn update_act(&mut self, now: f64) {
        let spill = self.spillover_fraction(now);
        let (lo, hi) = self.config.spillover_tolerance;
        if spill < lo {
            // SSD has headroom: admit more categories (lower the threshold).
            self.act = self.act.saturating_sub(1).max(1);
        } else if spill > hi {
            // SSD is saturated: admit fewer categories (raise the threshold).
            self.act = (self.act + 1).min(self.config.num_categories - 1);
        }
        self.trace.push((now, self.act, spill * 100.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byom_sim::{Device, JobOutcome};
    use byom_trace::JobId;

    fn config(n: usize) -> AdaptiveConfig {
        AdaptiveConfig {
            num_categories: n,
            lookback_window_secs: 100.0,
            decision_interval_secs: 10.0,
            spillover_tolerance: (0.05, 0.25),
            initial_act: 1,
            signal: FeedbackSignal::SpilloverTcio,
        }
    }

    fn outcome(arrival: f64, scheduled: Device, fraction: f64, tcio: f64) -> JobOutcome {
        JobOutcome {
            job_id: JobId(0),
            arrival,
            end: arrival + 50.0,
            scheduled,
            ssd_fraction: fraction,
            spillover_time: if scheduled == Device::Ssd && fraction < 1.0 {
                Some(arrival)
            } else {
                None
            },
            tcio_hdd: tcio,
            size_bytes: 100,
        }
    }

    #[test]
    fn admits_categories_at_or_above_act() {
        let mut s = AdaptiveSelector::new(config(5));
        assert_eq!(s.act(), 1);
        assert!(s.admit(0.0, 1));
        assert!(s.admit(0.0, 4));
        assert!(!s.admit(0.0, 0));
    }

    #[test]
    fn act_rises_under_heavy_spillover() {
        let mut s = AdaptiveSelector::new(config(5));
        // Feed fully-spilled SSD-scheduled jobs.
        for i in 0..10 {
            s.observe(&outcome(i as f64, Device::Ssd, 0.0, 1.0));
        }
        // Advance decisions over time so the ACT has several chances to move.
        let mut acts = Vec::new();
        for step in 1..=4 {
            let now = 10.0 + step as f64 * 10.0;
            let _ = s.admit(now, 4);
            acts.push(s.act());
        }
        assert!(*acts.last().unwrap() > 1, "ACT should rise, got {acts:?}");
        assert!(*acts.last().unwrap() <= 4);
    }

    #[test]
    fn act_falls_when_spillover_is_low() {
        let mut s = AdaptiveSelector::new(AdaptiveConfig {
            initial_act: 4,
            ..config(5)
        });
        for i in 0..10 {
            s.observe(&outcome(i as f64, Device::Ssd, 1.0, 1.0));
        }
        for step in 1..=4 {
            let _ = s.admit(10.0 + step as f64 * 10.0, 4);
        }
        assert_eq!(
            s.act(),
            1,
            "ACT should decay to the floor with no spillover"
        );
    }

    #[test]
    fn act_stays_within_bounds() {
        let mut s = AdaptiveSelector::new(config(3));
        // Heavy spillover forever: ACT must not exceed N-1 = 2.
        for i in 0..100 {
            s.observe(&outcome(i as f64, Device::Ssd, 0.0, 1.0));
            let _ = s.admit(i as f64, 2);
        }
        assert!(s.act() <= 2 && s.act() >= 1);
    }

    #[test]
    fn act_unchanged_inside_tolerance_range() {
        let mut s = AdaptiveSelector::new(AdaptiveConfig {
            initial_act: 2,
            spillover_tolerance: (0.05, 0.5),
            ..config(5)
        });
        // ~25% spillover: inside [5%, 50%].
        for i in 0..8 {
            let fraction = if i % 4 == 0 { 0.0 } else { 1.0 };
            s.observe(&outcome(i as f64, Device::Ssd, fraction, 1.0));
        }
        for step in 1..=3 {
            let _ = s.admit(8.0 + step as f64 * 10.0, 4);
        }
        assert_eq!(s.act(), 2);
    }

    #[test]
    fn decision_interval_limits_update_frequency() {
        let mut s = AdaptiveSelector::new(config(5));
        for i in 0..5 {
            s.observe(&outcome(i as f64, Device::Ssd, 0.0, 1.0));
        }
        // Many admissions within one decision interval: only the first
        // triggers an update.
        let _ = s.admit(5.0, 4);
        let updates_after_first = s.adaptation_trace().len();
        for _ in 0..10 {
            let _ = s.admit(5.5, 4);
        }
        assert_eq!(s.adaptation_trace().len(), updates_after_first);
    }

    #[test]
    fn lookback_window_drops_old_observations() {
        let mut s = AdaptiveSelector::new(config(5));
        // Old, fully-spilled jobs...
        for i in 0..5 {
            s.observe(&outcome(i as f64, Device::Ssd, 0.0, 1.0));
        }
        // ...followed by recent, fully-fitting jobs far in the future.
        for i in 0..5 {
            s.observe(&outcome(1000.0 + i as f64, Device::Ssd, 1.0, 1.0));
        }
        let spill = s.spillover_fraction(1010.0);
        assert!(
            spill < 0.01,
            "old spillover should have aged out, got {spill}"
        );
    }

    #[test]
    fn hdd_scheduled_jobs_do_not_affect_spillover() {
        let mut s = AdaptiveSelector::new(config(5));
        for i in 0..5 {
            s.observe(&outcome(i as f64, Device::Hdd, 0.0, 1.0));
        }
        assert_eq!(s.spillover_fraction(10.0), 0.0);
    }

    #[test]
    fn byte_signal_ablation_tracks_fractions() {
        let mut s = AdaptiveSelector::new(AdaptiveConfig {
            signal: FeedbackSignal::SpilloverBytes,
            ..config(5)
        });
        s.observe(&outcome(0.0, Device::Ssd, 1.0, 1.0));
        s.observe(&outcome(1.0, Device::Ssd, 0.0, 1.0));
        assert!((s.spillover_fraction(2.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn config_validation_catches_errors() {
        assert!(AdaptiveConfig::default().validate().is_ok());
        assert!(AdaptiveConfig {
            num_categories: 1,
            ..AdaptiveConfig::default()
        }
        .validate()
        .is_err());
        assert!(AdaptiveConfig {
            spillover_tolerance: (0.5, 0.1),
            ..AdaptiveConfig::default()
        }
        .validate()
        .is_err());
        assert!(AdaptiveConfig {
            initial_act: 0,
            ..AdaptiveConfig::default()
        }
        .validate()
        .is_err());
        assert!(AdaptiveConfig {
            lookback_window_secs: 0.0,
            ..AdaptiveConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    #[should_panic(expected = "invalid adaptive config")]
    fn constructor_panics_on_invalid_config() {
        let _ = AdaptiveSelector::new(AdaptiveConfig {
            num_categories: 0,
            ..AdaptiveConfig::default()
        });
    }
}
