//! Categorizers: ways of turning an arriving job into an importance-ranking
//! category for the adaptive selection algorithm.
//!
//! Three categorizers are used in the paper's evaluation:
//!
//! * the learned [`CategoryModel`](crate::model::CategoryModel) (Adaptive
//!   Ranking, the paper's method);
//! * [`HashCategorizer`] — the non-ML ablation (Adaptive Hash), which spreads
//!   pipelines uniformly over the positive categories by hashing their
//!   identity;
//! * [`TrueCategoryOracle`] — replays the ground-truth category computed from
//!   the job's measured cost, used for Figure 11's "True category" line.

use crate::labels::CategoryLabeler;
use byom_cost::{CostModel, JobCost};
use byom_trace::ShuffleJob;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Maps an arriving job to a predicted importance-ranking category.
pub trait Categorizer {
    /// Short name used to build policy names (e.g. "Ranking", "Hash").
    fn name(&self) -> &str;

    /// Predict the category of a job from information available before it
    /// executes.
    fn categorize(&self, job: &ShuffleJob) -> usize;

    /// Predict the category together with the categorizer's confidence in
    /// `[0, 1]`. Deterministic categorizers (hash, oracle) are fully
    /// confident; learned models override this with their predicted class
    /// probability. Fault-injection layers use the confidence to calibrate
    /// label-flip faults.
    fn categorize_with_confidence(&self, job: &ShuffleJob) -> (usize, f64) {
        (self.categorize(job), 1.0)
    }

    /// Number of categories this categorizer produces.
    fn num_categories(&self) -> usize;
}

/// The non-ML ablation: hash the job's pipeline identity into one of the
/// positive categories `1..N-1`. This preserves the adaptive algorithm's
/// structure while removing any learned notion of importance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashCategorizer {
    num_categories: usize,
}

impl HashCategorizer {
    /// Create a hash categorizer with `num_categories` categories.
    ///
    /// # Panics
    /// Panics if `num_categories < 2`.
    pub fn new(num_categories: usize) -> Self {
        assert!(num_categories >= 2, "need at least 2 categories");
        HashCategorizer { num_categories }
    }
}

impl Categorizer for HashCategorizer {
    fn name(&self) -> &str {
        "Hash"
    }

    fn categorize(&self, job: &ShuffleJob) -> usize {
        let mut hasher = DefaultHasher::new();
        job.features.pipeline_name.hash(&mut hasher);
        job.features.execution_name.hash(&mut hasher);
        let positive = self.num_categories - 1;
        1 + (hasher.finish() % positive as u64) as usize
    }

    fn num_categories(&self) -> usize {
        self.num_categories
    }
}

/// Ground-truth categorizer: computes the job's *actual* category from its
/// measured cost using the fitted labeler (100% accurate "prediction").
/// Only usable in simulation, where post-execution measurements exist.
#[derive(Debug, Clone)]
pub struct TrueCategoryOracle {
    labeler: CategoryLabeler,
    cost_model: CostModel,
}

impl TrueCategoryOracle {
    /// Create a ground-truth categorizer from a fitted labeler and the cost
    /// model used to measure jobs.
    pub fn new(labeler: CategoryLabeler, cost_model: CostModel) -> Self {
        TrueCategoryOracle {
            labeler,
            cost_model,
        }
    }

    /// The true category of a job, computed from its measured cost.
    pub fn true_category(&self, cost: &JobCost) -> usize {
        self.labeler.label(cost)
    }
}

impl Categorizer for TrueCategoryOracle {
    fn name(&self) -> &str {
        "TrueCategory"
    }

    fn categorize(&self, job: &ShuffleJob) -> usize {
        self.labeler.label(&self.cost_model.cost_job(job))
    }

    fn num_categories(&self) -> usize {
        self.labeler.num_categories()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byom_cost::CostRates;
    use byom_trace::{ClusterSpec, TraceGenerator};

    #[test]
    fn hash_categorizer_is_deterministic_and_in_range() {
        let trace = TraceGenerator::new(31).generate(&ClusterSpec::balanced(0), 3_600.0);
        let cat = HashCategorizer::new(15);
        for job in trace.iter() {
            let c = cat.categorize(job);
            assert!((1..15).contains(&c));
            assert_eq!(c, cat.categorize(job));
        }
        assert_eq!(cat.num_categories(), 15);
        assert_eq!(cat.name(), "Hash");
    }

    #[test]
    fn hash_categorizer_spreads_pipelines_across_categories() {
        let trace = TraceGenerator::new(32).generate(&ClusterSpec::balanced(0), 14_400.0);
        let cat = HashCategorizer::new(8);
        let distinct: std::collections::HashSet<usize> =
            trace.iter().map(|j| cat.categorize(j)).collect();
        assert!(distinct.len() >= 4, "expected spread, got {distinct:?}");
    }

    #[test]
    #[should_panic(expected = "at least 2 categories")]
    fn hash_categorizer_rejects_one_category() {
        let _ = HashCategorizer::new(1);
    }

    #[test]
    fn true_category_oracle_matches_labeler() {
        let trace = TraceGenerator::new(33).generate(&ClusterSpec::balanced(0), 7_200.0);
        let cost_model = CostModel::new(CostRates::default());
        let costs = cost_model.cost_trace(&trace);
        let labeler = CategoryLabeler::fit(&costs, 5);
        let oracle = TrueCategoryOracle::new(labeler.clone(), cost_model);
        for (job, cost) in trace.iter().zip(&costs) {
            assert_eq!(oracle.categorize(job), labeler.label(cost));
            assert_eq!(oracle.true_category(cost), labeler.label(cost));
        }
        assert_eq!(oracle.num_categories(), 5);
    }
}
