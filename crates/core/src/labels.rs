//! Category label design (Section 4.2 of the paper).
//!
//! The model's target is an *importance ranking category*:
//!
//! * **Category 0**: jobs whose TCO savings from SSD placement are negative —
//!   the oracle never admits them, regardless of capacity.
//! * **Categories 1..N-1**: jobs with non-negative savings, bucketed by I/O
//!   density into equal-frequency quantiles of the training set (linear or
//!   logarithmic spacing would produce heavily imbalanced classes, see
//!   Figure 4). Higher categories contain denser — more important — jobs.

use byom_cost::JobCost;
use serde::{Deserialize, Serialize};

/// Assigns importance-ranking categories to jobs based on TCO savings sign
/// and I/O density quantiles fit on a training set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoryLabeler {
    /// Number of categories, N (including category 0).
    num_categories: usize,
    /// Ascending I/O-density thresholds separating categories `1..N-1`.
    /// `thresholds[i]` is the upper edge of category `i + 1`.
    thresholds: Vec<f64>,
}

impl CategoryLabeler {
    /// Fit a labeler on training-set costs.
    ///
    /// # Panics
    /// Panics if `num_categories < 2`.
    pub fn fit(costs: &[JobCost], num_categories: usize) -> Self {
        assert!(num_categories >= 2, "need at least 2 categories");
        let mut densities: Vec<f64> = costs
            .iter()
            .filter(|c| c.tco_savings() >= 0.0)
            .map(|c| c.io_density)
            .collect();
        densities.sort_by(|a, b| a.total_cmp(b));

        let positive_buckets = num_categories - 1;
        let mut thresholds = Vec::with_capacity(positive_buckets.saturating_sub(1));
        if !densities.is_empty() {
            for k in 1..positive_buckets {
                let idx = (k * densities.len()) / positive_buckets;
                thresholds.push(densities[idx.min(densities.len() - 1)]);
            }
        }
        CategoryLabeler {
            num_categories,
            thresholds,
        }
    }

    /// Number of categories N.
    pub fn num_categories(&self) -> usize {
        self.num_categories
    }

    /// Label one job: 0 for negative savings, otherwise `1..N-1` by I/O
    /// density (higher = denser = more important).
    pub fn label(&self, cost: &JobCost) -> usize {
        if cost.tco_savings() < 0.0 {
            return 0;
        }
        let mut category = 1;
        for &t in &self.thresholds {
            if cost.io_density > t {
                category += 1;
            } else {
                break;
            }
        }
        category.min(self.num_categories - 1)
    }

    /// Label every job in a slice, preserving order.
    pub fn label_all(&self, costs: &[JobCost]) -> Vec<usize> {
        costs.iter().map(|c| self.label(c)).collect()
    }

    /// The fitted I/O-density thresholds (ascending).
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byom_trace::JobId;

    fn cost(savings: f64, density: f64) -> JobCost {
        JobCost {
            id: JobId(0),
            arrival: 0.0,
            lifetime: 1.0,
            size_bytes: 1,
            tcio_hdd: 0.0,
            tco_hdd: savings.max(0.0) + 1.0,
            tco_ssd: 1.0 - savings.min(0.0),
            io_density: density,
        }
    }

    fn training_set() -> Vec<JobCost> {
        // 100 positive-savings jobs with densities 1..=100, plus some negative.
        let mut v: Vec<JobCost> = (1..=100).map(|i| cost(1.0, i as f64)).collect();
        v.extend((0..20).map(|i| cost(-1.0, i as f64)));
        v
    }

    #[test]
    fn negative_savings_is_always_category_zero() {
        let labeler = CategoryLabeler::fit(&training_set(), 5);
        assert_eq!(labeler.label(&cost(-0.5, 1000.0)), 0);
        assert_eq!(labeler.label(&cost(-0.5, 0.001)), 0);
    }

    #[test]
    fn positive_savings_categories_increase_with_density() {
        let labeler = CategoryLabeler::fit(&training_set(), 5);
        let low = labeler.label(&cost(1.0, 5.0));
        let mid = labeler.label(&cost(1.0, 50.0));
        let high = labeler.label(&cost(1.0, 99.0));
        assert!(low >= 1);
        assert!(low <= mid && mid <= high);
        assert_eq!(high, 4);
    }

    #[test]
    fn categories_are_roughly_balanced_on_the_training_set() {
        let costs = training_set();
        let labeler = CategoryLabeler::fit(&costs, 5);
        let labels = labeler.label_all(&costs);
        // Count only positive-savings jobs (the 100 density-spread ones).
        let mut counts = vec![0usize; 5];
        for &l in labels.iter().take(100) {
            counts[l] += 1;
        }
        for c in &counts[1..] {
            assert!(
                (15..=40).contains(c),
                "positive categories should be roughly balanced, got {counts:?}"
            );
        }
    }

    #[test]
    fn labels_stay_in_range() {
        let labeler = CategoryLabeler::fit(&training_set(), 15);
        for density in [0.0, 0.5, 3.0, 42.0, 1e6] {
            for savings in [-1.0, 0.0, 5.0] {
                let l = labeler.label(&cost(savings, density));
                assert!(l < 15);
            }
        }
    }

    #[test]
    fn two_category_labeler_is_just_the_savings_sign() {
        let labeler = CategoryLabeler::fit(&training_set(), 2);
        assert_eq!(labeler.label(&cost(-1.0, 50.0)), 0);
        assert_eq!(labeler.label(&cost(1.0, 0.001)), 1);
        assert_eq!(labeler.label(&cost(1.0, 1e9)), 1);
        assert!(labeler.thresholds().is_empty());
    }

    #[test]
    fn all_negative_training_set_still_labels() {
        let costs: Vec<JobCost> = (0..10).map(|i| cost(-1.0, i as f64)).collect();
        let labeler = CategoryLabeler::fit(&costs, 5);
        assert_eq!(labeler.label(&cost(1.0, 3.0)), 1);
    }

    #[test]
    #[should_panic(expected = "at least 2 categories")]
    fn rejects_single_category() {
        let _ = CategoryLabeler::fit(&training_set(), 1);
    }

    #[test]
    fn thresholds_are_sorted() {
        let labeler = CategoryLabeler::fit(&training_set(), 8);
        let t = labeler.thresholds();
        assert!(t.windows(2).all(|w| w[0] <= w[1]));
    }
}
