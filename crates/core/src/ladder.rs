//! The graceful-degradation ladder: a placement policy that falls back
//! through progressively simpler rungs when the learned model misbehaves.
//!
//! The ladder's rungs, from most to least capable:
//!
//! 0. **Model** — the (possibly fallible) category model plus the adaptive
//!    category selection algorithm.
//! 1. **Hash** — the non-ML hash categorizer plus an independent adaptive
//!    selector; survives model blackouts and label corruption.
//! 2. **Heuristic** — the CacheSack-style per-category admission heuristic;
//!    survives broken feature pipelines (it only needs the pipeline
//!    identity and measured costs).
//! 3. **FirstFit** — the static production baseline; needs nothing but the
//!    job's size.
//!
//! A spillover-fed [`HealthTracker`] demotes to the next rung after `K`
//! consecutive failures or misses attributed to the active rung (a failure
//! is a model blackout; a miss is an SSD-scheduled job that *fully*
//! spilled — partial spillover is the adaptive selector's signal), and
//! probes the rung above for recovery: after a demotion cooldown elapses,
//! or early once the active rung builds a `K`-long success streak (evidence
//! that whatever flooded the ladder with failures has passed). All
//! bookkeeping runs in *simulated* time — the tracker never consults a wall
//! clock, so ladder runs stay bit-reproducible.
//!
//! Every rung is kept warm regardless of which rung is deciding: the hash
//! selector keeps observing outcomes and the heuristic keeps folding costs
//! into its category statistics, so a demotion hands control to a rung with
//! up-to-date state rather than a cold start.

use crate::adaptive::{AdaptiveConfig, AdaptiveSelector};
use crate::categorize::{Categorizer, HashCategorizer};
use byom_cost::JobCost;
use byom_policies::{CategoryHeuristic, FirstFit};
use byom_sim::{Device, JobOutcome, PlacementPolicy, SystemState};
use byom_trace::ShuffleJob;
use serde::{Deserialize, Serialize};

/// Number of rungs in the degradation ladder.
pub const LADDER_RUNGS: usize = 4;

/// Rung names, top (most capable) first.
pub const RUNG_NAMES: [&str; LADDER_RUNGS] = ["model", "hash", "heuristic", "first-fit"];

/// A categorizer whose predictions may be temporarily unavailable.
///
/// This is the interface the ladder's top rung consumes: `None` means "the
/// prediction service cannot answer right now" (in fault-injection runs, a
/// blackout window), which the ladder treats as a failure of the model rung.
pub trait FallibleCategorizer {
    /// Short name used to build the policy name (e.g. "Ranking").
    fn name(&self) -> &str;

    /// Predict the job's category, or `None` if no prediction is available
    /// at the job's arrival time.
    fn try_categorize(&self, job: &ShuffleJob) -> Option<usize>;

    /// Number of categories this categorizer produces.
    fn num_categories(&self) -> usize;
}

/// Adapter: use an ordinary (infallible) [`Categorizer`] as the ladder's
/// model rung. Its predictions are always available.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Infallible<C>(pub C);

impl<C: Categorizer> FallibleCategorizer for Infallible<C> {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn try_categorize(&self, job: &ShuffleJob) -> Option<usize> {
        Some(self.0.categorize(job))
    }

    fn num_categories(&self) -> usize {
        self.0.num_categories()
    }
}

/// Configuration of the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LadderConfig {
    /// Demote to the next rung after this many consecutive failures/misses
    /// attributed to the active rung (values below 1 behave as 1).
    pub demote_after: usize,
    /// Simulated seconds to wait after a demotion (or a failed probe)
    /// before probing the rung above for recovery.
    pub probe_after_secs: f64,
    /// Adaptive-selector configuration shared by the model and hash rungs
    /// (each rung gets its own independent selector instance).
    pub adaptive: AdaptiveConfig,
}

impl Default for LadderConfig {
    fn default() -> Self {
        LadderConfig {
            demote_after: 10,
            probe_after_secs: 1_800.0,
            adaptive: AdaptiveConfig::default(),
        }
    }
}

/// The spillover-fed health state machine driving rung transitions.
///
/// Failures and successes are *attributed*: only events produced by the
/// currently active rung move the consecutive-failure counter, so a fallback
/// rung's good outcomes do not mask a blacked-out model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthTracker {
    demote_after: usize,
    probe_after_secs: f64,
    active: usize,
    consecutive_failures: usize,
    consecutive_successes: usize,
    /// Start of the current probe cooldown (simulated time), if demoted.
    cooldown_start: Option<f64>,
    demotions: u64,
    promotions: u64,
}

impl HealthTracker {
    /// Create a tracker starting at the top rung.
    pub fn new(demote_after: usize, probe_after_secs: f64) -> Self {
        HealthTracker {
            demote_after: demote_after.max(1),
            probe_after_secs,
            active: 0,
            consecutive_failures: 0,
            consecutive_successes: 0,
            cooldown_start: None,
            demotions: 0,
            promotions: 0,
        }
    }

    /// The currently active rung (0 = model .. 3 = first-fit).
    pub fn active_rung(&self) -> usize {
        self.active
    }

    /// Number of demotions so far.
    pub fn demotions(&self) -> u64 {
        self.demotions
    }

    /// Number of promotions (successful probes) so far.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Record a failure/miss attributed to the active rung at simulated
    /// time `now`; demotes when the consecutive streak reaches the limit.
    pub fn record_failure(&mut self, now: f64) {
        self.consecutive_successes = 0;
        self.consecutive_failures += 1;
        if self.consecutive_failures >= self.demote_after && self.active + 1 < LADDER_RUNGS {
            self.active += 1;
            self.consecutive_failures = 0;
            self.cooldown_start = Some(now);
            self.demotions += 1;
        }
    }

    /// Record a success attributed to the active rung, resetting the failure
    /// streak and extending the success streak.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.consecutive_successes = self.consecutive_successes.saturating_add(1);
    }

    /// Whether the rung above should be probed at simulated time `now`:
    /// either the probe cooldown has elapsed, or the active rung has built a
    /// success streak of `K` (the demotion threshold, symmetrically) — a
    /// healthy fallback is evidence the condition that forced the demotion
    /// (e.g. a device outage flooding every rung with full spills) has
    /// passed, so recovery should not wait out the full cooldown.
    pub fn probe_due(&self, now: f64) -> bool {
        self.active > 0
            && (self.consecutive_successes >= self.demote_after
                || self
                    .cooldown_start
                    .is_none_or(|t| now >= t + self.probe_after_secs))
    }

    /// A probe succeeded: move one rung up and restart the cooldown (unless
    /// back at the top).
    pub fn promote(&mut self, now: f64) {
        if self.active > 0 {
            self.active -= 1;
            self.promotions += 1;
            self.consecutive_failures = 0;
            self.consecutive_successes = 0;
            self.cooldown_start = if self.active == 0 { None } else { Some(now) };
        }
    }

    /// A probe failed: restart the cooldown (and the success streak) from
    /// `now`.
    pub fn probe_failed(&mut self, now: f64) {
        self.consecutive_successes = 0;
        self.cooldown_start = Some(now);
    }
}

/// The graceful-degradation placement policy: model → hash → heuristic →
/// first-fit, with health-driven demotion and recovery probing.
#[derive(Debug, Clone)]
pub struct LadderPolicy<M: FallibleCategorizer> {
    name: String,
    model: M,
    model_selector: AdaptiveSelector,
    hash: HashCategorizer,
    hash_selector: AdaptiveSelector,
    heuristic: CategoryHeuristic,
    first_fit: FirstFit,
    health: HealthTracker,
    occupancy: [u64; LADDER_RUNGS],
    /// Rung that decided the most recent placement (observe() attributes the
    /// outcome to it; the simulator interleaves place/observe per job).
    last_decider: usize,
    /// Whether the most recent decision spoke for the active rung's health.
    last_attributed: bool,
}

impl<M: FallibleCategorizer> LadderPolicy<M> {
    /// Build a ladder from a (possibly fallible) model-rung categorizer.
    /// The adaptive selectors' category count follows the categorizer's.
    ///
    /// # Panics
    /// Panics if `config.adaptive` is invalid (see
    /// [`AdaptiveConfig::validate`]) or the categorizer produces fewer than
    /// two categories.
    pub fn new(model: M, config: LadderConfig) -> Self {
        let adaptive = AdaptiveConfig {
            num_categories: model.num_categories(),
            ..config.adaptive
        };
        let name = format!("Ladder {}", model.name());
        LadderPolicy {
            name,
            model_selector: AdaptiveSelector::new(adaptive),
            hash: HashCategorizer::new(adaptive.num_categories),
            hash_selector: AdaptiveSelector::new(adaptive),
            heuristic: CategoryHeuristic::default(),
            first_fit: FirstFit::new(),
            health: HealthTracker::new(config.demote_after, config.probe_after_secs),
            occupancy: [0; LADDER_RUNGS],
            last_decider: 0,
            last_attributed: false,
            model,
        }
    }

    /// The model-rung categorizer.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The health tracker's current state.
    pub fn health(&self) -> &HealthTracker {
        &self.health
    }

    /// Placement decisions made by each rung, top rung first.
    pub fn rung_occupancy(&self) -> [u64; LADDER_RUNGS] {
        self.occupancy
    }

    /// Fraction of decisions made by the model rung (0 when no decisions).
    pub fn model_rung_fraction(&self) -> f64 {
        let total: u64 = self.occupancy.iter().sum();
        let model = self.occupancy.first().copied().unwrap_or(0);
        if total == 0 {
            0.0
        } else {
            model as f64 / total as f64
        }
    }

    /// Decide via the model rung if it answers; `None` means blackout.
    fn model_decision(&mut self, now: f64, job: &ShuffleJob) -> Option<Device> {
        let category = self.model.try_categorize(job)?;
        Some(if self.model_selector.admit(now, category) {
            Device::Ssd
        } else {
            Device::Hdd
        })
    }

    /// Decide via a fallback rung (1..=3).
    fn fallback_decision(
        &mut self,
        rung: usize,
        now: f64,
        job: &ShuffleJob,
        cost: &JobCost,
        state: &SystemState,
    ) -> Device {
        match rung {
            1 => {
                // The hash categories carry no cost signal (they are
                // pseudo-random buckets), so the rung additionally gates on
                // the job's measured costs: a job whose SSD TCO exceeds its
                // HDD TCO can never pay for its admission.
                let category = self.hash.categorize(job);
                if cost.tco_ssd < cost.tco_hdd && self.hash_selector.admit(now, category) {
                    Device::Ssd
                } else {
                    Device::Hdd
                }
            }
            2 => {
                if self.heuristic.admits(job) {
                    Device::Ssd
                } else {
                    Device::Hdd
                }
            }
            _ => self.first_fit.place(job, cost, state),
        }
    }
}

impl<M: FallibleCategorizer> PlacementPolicy for LadderPolicy<M> {
    fn name(&self) -> &str {
        &self.name
    }

    fn place(&mut self, job: &ShuffleJob, cost: &JobCost, state: &SystemState) -> Device {
        let now = job.arrival;
        // Keep the lower rungs warm no matter who decides.
        self.heuristic.record(job, cost, state.ssd_capacity_bytes);

        let active = self.health.active_rung();
        let (decider, decision) = if active == 0 {
            match self.model_decision(now, job) {
                Some(d) => (0, d),
                None => {
                    // Blackout while the model is the authority: a failure.
                    self.health.record_failure(now);
                    let rung = self.health.active_rung().max(1);
                    (rung, self.fallback_decision(rung, now, job, cost, state))
                }
            }
        } else if self.health.probe_due(now) {
            if active == 1 {
                // The rung above is the model: the probe succeeds only if it
                // answers.
                match self.model_decision(now, job) {
                    Some(d) => {
                        self.health.promote(now);
                        (0, d)
                    }
                    None => {
                        self.health.probe_failed(now);
                        (1, self.fallback_decision(1, now, job, cost, state))
                    }
                }
            } else {
                // Non-model rungs always answer: climb one rung.
                self.health.promote(now);
                let rung = self.health.active_rung();
                (rung, self.fallback_decision(rung, now, job, cost, state))
            }
        } else {
            (
                active,
                self.fallback_decision(active, now, job, cost, state),
            )
        };

        if let Some(slot) = self.occupancy.get_mut(decider) {
            *slot += 1;
        }
        self.last_decider = decider;
        self.last_attributed = decider == self.health.active_rung();
        decision
    }

    fn fill_resilience(&self, report: &mut byom_sim::ResilienceReport) {
        report.fallback_occupancy = self.occupancy.to_vec();
    }

    fn observe(&mut self, outcome: &JobOutcome) {
        // Both adaptive selectors keep learning from every outcome.
        self.model_selector.observe(outcome);
        self.hash_selector.observe(outcome);
        // Spillover feedback: only outcomes decided by the active rung speak
        // for its health (a fallback's good outcome must not mask a
        // blacked-out model). Only *full* spills count as misses — partial
        // spillover is routine at tight quotas and is the adaptive
        // selector's feedback signal, not a rung-health event.
        if outcome.scheduled == Device::Ssd && self.last_attributed {
            if outcome.ssd_fraction == 0.0 {
                self.health.record_failure(outcome.arrival);
            } else {
                self.health.record_success();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byom_trace::{IoProfile, JobFeatures, JobId};

    /// A fallible categorizer that is blacked out inside a time window.
    #[derive(Debug, Clone)]
    struct WindowedModel {
        blackout: (f64, f64),
        categories: usize,
    }

    impl FallibleCategorizer for WindowedModel {
        fn name(&self) -> &str {
            "Windowed"
        }
        fn try_categorize(&self, job: &ShuffleJob) -> Option<usize> {
            let (start, end) = self.blackout;
            if job.arrival >= start && job.arrival < end {
                None
            } else {
                Some(self.categories - 1) // always top category
            }
        }
        fn num_categories(&self) -> usize {
            self.categories
        }
    }

    fn job(id: u64, arrival: f64, size: u64) -> ShuffleJob {
        ShuffleJob {
            id: JobId(id),
            cluster: 0,
            arrival,
            lifetime: 50.0,
            size_bytes: size,
            io: IoProfile {
                read_bytes: size * 4,
                written_bytes: size,
                read_ops: 10,
                write_ops: 10,
                dram_hit_fraction: 0.0,
                mean_read_size: 4096,
            },
            features: JobFeatures::default(),
            archetype: 0,
        }
    }

    fn cost(id: u64, arrival: f64) -> JobCost {
        JobCost {
            id: JobId(id),
            arrival,
            lifetime: 50.0,
            size_bytes: 100,
            tcio_hdd: 1.0,
            tco_hdd: 2.0,
            tco_ssd: 1.0,
            io_density: 1.0,
        }
    }

    fn state(now: f64) -> SystemState {
        SystemState {
            now,
            ssd_occupancy_bytes: 0,
            ssd_capacity_bytes: 10_000,
        }
    }

    fn ladder_config(demote_after: usize, probe_after: f64) -> LadderConfig {
        LadderConfig {
            demote_after,
            probe_after_secs: probe_after,
            adaptive: AdaptiveConfig {
                num_categories: 5,
                ..AdaptiveConfig::default()
            },
        }
    }

    #[test]
    fn healthy_model_keeps_the_top_rung() {
        let model = WindowedModel {
            blackout: (-1.0, -1.0),
            categories: 5,
        };
        let mut ladder = LadderPolicy::new(model, ladder_config(3, 600.0));
        assert_eq!(ladder.name(), "Ladder Windowed");
        for i in 0..50u64 {
            let t = i as f64 * 10.0;
            let _ = ladder.place(&job(i, t, 100), &cost(i, t), &state(t));
        }
        assert_eq!(ladder.health().active_rung(), 0);
        assert_eq!(ladder.rung_occupancy()[0], 50);
        assert!((ladder.model_rung_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn blackout_demotes_and_recovery_promotes() {
        // Blackout covers [100, 400): with K=3 the ladder demotes to the
        // hash rung, then probes its way back after the blackout ends.
        let model = WindowedModel {
            blackout: (100.0, 400.0),
            categories: 5,
        };
        let mut ladder = LadderPolicy::new(model, ladder_config(3, 50.0));
        let mut demoted_during_blackout = false;
        for i in 0..100u64 {
            let t = i as f64 * 10.0;
            let _ = ladder.place(&job(i, t, 100), &cost(i, t), &state(t));
            if (100.0..400.0).contains(&t) && ladder.health().active_rung() > 0 {
                demoted_during_blackout = true;
            }
        }
        assert!(demoted_during_blackout, "K consecutive blackouts demote");
        assert_eq!(
            ladder.health().active_rung(),
            0,
            "the ladder probes back to the model after the blackout"
        );
        assert!(ladder.health().demotions() >= 1);
        assert!(ladder.health().promotions() >= 1);
        assert!(ladder.rung_occupancy()[1] > 0, "hash rung covered the gap");
    }

    #[test]
    fn fallback_successes_do_not_mask_model_failures() {
        // During a blackout the hash rung's decisions may succeed; the
        // health tracker must still demote on the model's failures.
        let model = WindowedModel {
            blackout: (0.0, f64::MAX),
            categories: 5,
        };
        let mut ladder = LadderPolicy::new(model, ladder_config(5, 1e12));
        for i in 0..20u64 {
            let t = i as f64;
            let d = ladder.place(&job(i, t, 100), &cost(i, t), &state(t));
            // Feed perfect outcomes for every decision.
            ladder.observe(&JobOutcome {
                job_id: JobId(i),
                arrival: t,
                end: t + 50.0,
                scheduled: d,
                ssd_fraction: if d == Device::Ssd { 1.0 } else { 0.0 },
                spillover_time: None,
                tcio_hdd: 1.0,
                size_bytes: 100,
            });
        }
        assert!(
            ladder.health().active_rung() >= 1,
            "permanent blackout must demote even with healthy fallbacks"
        );
    }

    #[test]
    fn persistent_misses_walk_down_the_ladder() {
        let model = WindowedModel {
            blackout: (-1.0, -1.0),
            categories: 5,
        };
        let mut ladder = LadderPolicy::new(model, ladder_config(2, 1e12));
        for i in 0..40u64 {
            let t = i as f64;
            let d = ladder.place(&job(i, t, 100), &cost(i, t), &state(t));
            // Every SSD-scheduled job fully spills.
            ladder.observe(&JobOutcome {
                job_id: JobId(i),
                arrival: t,
                end: t + 50.0,
                scheduled: d,
                ssd_fraction: 0.0,
                spillover_time: if d == Device::Ssd { Some(t) } else { None },
                tcio_hdd: 1.0,
                size_bytes: 100,
            });
        }
        assert!(
            ladder.health().active_rung() >= 1,
            "spillover misses demote the model rung, got {:?}",
            ladder.health()
        );
        let occupancy = ladder.rung_occupancy();
        assert_eq!(occupancy.iter().sum::<u64>(), 40);
    }

    #[test]
    fn health_tracker_bounds_and_counters() {
        let mut h = HealthTracker::new(0, 10.0); // clamped to 1
        assert_eq!(h.active_rung(), 0);
        for i in 0..10 {
            h.record_failure(i as f64);
        }
        assert_eq!(h.active_rung(), LADDER_RUNGS - 1, "demotion saturates");
        assert_eq!(h.demotions(), (LADDER_RUNGS - 1) as u64);
        // The last demotion (to the bottom rung) happened at now = 2.0.
        assert!(!h.probe_due(11.0), "cooldown not yet elapsed");
        assert!(h.probe_due(12.0));
        h.promote(20.0);
        assert_eq!(h.active_rung(), LADDER_RUNGS - 2);
        assert_eq!(h.promotions(), 1);
        h.record_success();
        // Climb all the way back.
        h.promote(40.0);
        h.promote(60.0);
        assert_eq!(h.active_rung(), 0);
        h.promote(80.0); // no-op at the top
        assert_eq!(h.active_rung(), 0);
        assert!(!h.probe_due(1e9), "no probes at the top rung");
    }
}
