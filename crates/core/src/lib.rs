//! The BYOM ("bring your own model") cross-layer storage placement approach.
//!
//! This crate implements the paper's primary contribution (Section 4):
//!
//! 1. **Category labels** ([`labels`]): the oracle-inspired importance
//!    ranking — category 0 for jobs whose SSD placement would *lose* money
//!    (negative TCO savings), and categories `1..N-1` formed by
//!    equal-frequency I/O-density quantiles of the training set.
//! 2. **Application-layer category models** ([`model`]): per-cluster (or
//!    per-workload) gradient-boosted-tree classifiers that rank an arriving
//!    job's importance from features available *before* it executes.
//! 3. **The adaptive category selection algorithm** ([`adaptive`],
//!    Algorithm 1): the storage-layer heuristic that slides an admission
//!    category threshold (ACT) in response to the observed spillover-TCIO
//!    percentage, so the same model adapts to whatever SSD capacity happens
//!    to be available.
//! 4. **Placement policies** ([`policy`]): `Adaptive Ranking` (the paper's
//!    method) and `Adaptive Hash` (the non-ML ablation), both implementing
//!    [`byom_sim::PlacementPolicy`].
//! 5. **An end-to-end pipeline** ([`pipeline`]): train per-cluster models on
//!    a historical week of data and produce ready-to-run policies, mirroring
//!    the paper's offline-train / online-deploy flow.
//!
//! ```
//! use byom_core::ByomPipeline;
//! use byom_cost::{CostModel, CostRates};
//! use byom_trace::{ClusterSpec, TraceGenerator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let generator = TraceGenerator::new(7);
//! let spec = ClusterSpec::balanced(0);
//! let train = generator.generate(&spec, 6.0 * 3600.0);
//! let cost_model = CostModel::new(CostRates::default());
//!
//! let pipeline = ByomPipeline::builder()
//!     .num_categories(5)
//!     .gbdt_trees(20)
//!     .build()
//!     .train(&train, &cost_model)?;
//! let mut policy = pipeline.adaptive_ranking_policy();
//!
//! // `policy` now plugs into the simulator like any baseline.
//! # let _ = &mut policy;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adaptive;
pub mod categorize;
pub mod labels;
pub mod ladder;
pub mod model;
pub mod pipeline;
pub mod policy;
pub mod registry;

pub use adaptive::{AdaptiveConfig, AdaptiveSelector, FeedbackSignal};
pub use categorize::{Categorizer, HashCategorizer, TrueCategoryOracle};
pub use labels::CategoryLabeler;
pub use ladder::{
    FallibleCategorizer, HealthTracker, Infallible, LadderConfig, LadderPolicy, LADDER_RUNGS,
    RUNG_NAMES,
};
pub use model::{CategoryModel, CategoryModelConfig, ModelEvaluation};
pub use pipeline::{ByomPipeline, ByomPipelineBuilder, TrainedByom};
pub use policy::AdaptivePolicy;
pub use registry::{ModelGranularity, ModelRegistry};
