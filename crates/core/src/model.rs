//! The application-layer category model.
//!
//! A [`CategoryModel`] is the small, interpretable model each workload
//! "brings": a gradient-boosted-tree classifier over the features of Table 2
//! that predicts a job's importance-ranking category. The paper trains one
//! model per cluster (jointly over that cluster's workloads); nothing in this
//! API prevents finer or coarser granularity.

use crate::categorize::Categorizer;
use crate::labels::CategoryLabeler;
use byom_cost::JobCost;
use byom_gbdt::{
    auc_drop_importance, importance::group_importance, top_k_accuracy, Dataset, GbdtError,
    GbdtParams, GradientBoostedTrees,
};
use byom_trace::{FeatureEncoder, FeatureGroup, JobFeatures, ShuffleJob, Trace};
use serde::{Deserialize, Serialize};

/// Configuration for training a [`CategoryModel`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CategoryModelConfig {
    /// Number of importance categories N (the paper's default is 15).
    pub num_categories: usize,
    /// Boosting parameters (the `num_classes` field is overridden by
    /// `num_categories`).
    pub gbdt: GbdtParams,
    /// Feature encoder (numeric pass-through + metadata hashing).
    pub encoder: FeatureEncoder,
    /// Fraction of the training data held out for early stopping; 0 disables
    /// the validation split.
    pub valid_fraction: f64,
}

impl Default for CategoryModelConfig {
    fn default() -> Self {
        CategoryModelConfig {
            num_categories: 15,
            gbdt: GbdtParams::paper_default(15),
            encoder: FeatureEncoder::default(),
            valid_fraction: 0.2,
        }
    }
}

/// Evaluation summary of a trained category model on a labelled dataset.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ModelEvaluation {
    /// Top-1 classification accuracy.
    pub top1_accuracy: f64,
    /// Top-3 classification accuracy.
    pub top3_accuracy: f64,
    /// Number of evaluated examples.
    pub num_examples: usize,
    /// Number of training examples the model was fit on.
    pub training_size: usize,
}

/// A trained per-cluster (or per-workload) category model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CategoryModel {
    encoder: FeatureEncoder,
    model: GradientBoostedTrees,
    num_categories: usize,
    training_size: usize,
}

impl CategoryModel {
    /// Train a category model on a historical trace whose per-job costs and
    /// labels come from `costs` and `labeler`.
    ///
    /// # Errors
    /// Returns an error if the trace is empty or model training fails.
    ///
    /// # Panics
    /// Panics if `trace` and `costs` have different lengths.
    pub fn train(
        config: &CategoryModelConfig,
        trace: &Trace,
        costs: &[JobCost],
        labeler: &CategoryLabeler,
    ) -> Result<Self, GbdtError> {
        assert_eq!(trace.len(), costs.len(), "trace and costs must be parallel");
        let rows: Vec<Vec<f64>> = trace
            .iter()
            .map(|j| config.encoder.encode(&j.features))
            .collect();
        let labels = labeler.label_all(costs);
        let data = Dataset::from_rows(rows, labels)?;

        let params = GbdtParams {
            num_classes: config.num_categories,
            ..config.gbdt
        };
        let model = if config.valid_fraction > 0.0 && data.len() >= 20 {
            let mut rng = rand_seed(params.seed);
            let (train, valid) = data.split(&mut rng, config.valid_fraction);
            GradientBoostedTrees::train(&params, &train, Some(&valid))?
        } else {
            GradientBoostedTrees::train(&params, &data, None)?
        };
        Ok(CategoryModel {
            encoder: config.encoder,
            model,
            num_categories: config.num_categories,
            training_size: trace.len(),
        })
    }

    /// Predict the importance category of a job from its pre-execution
    /// features.
    pub fn predict_category(&self, features: &JobFeatures) -> usize {
        self.model.predict(&self.encoder.encode(features))
    }

    /// Predicted probability distribution over categories.
    pub fn predict_proba(&self, features: &JobFeatures) -> Vec<f64> {
        self.model.predict_proba(&self.encoder.encode(features))
    }

    /// Evaluate top-1/top-3 accuracy on a labelled test trace.
    ///
    /// # Panics
    /// Panics if `trace` and `costs` have different lengths.
    pub fn evaluate(
        &self,
        trace: &Trace,
        costs: &[JobCost],
        labeler: &CategoryLabeler,
    ) -> ModelEvaluation {
        assert_eq!(trace.len(), costs.len(), "trace and costs must be parallel");
        if trace.is_empty() {
            return ModelEvaluation {
                training_size: self.training_size,
                ..Default::default()
            };
        }
        let truth = labeler.label_all(costs);
        let mut predictions = Vec::with_capacity(trace.len());
        let mut probabilities = Vec::with_capacity(trace.len());
        for job in trace.iter() {
            let p = self.predict_proba(&job.features);
            predictions.push(argmax(&p));
            probabilities.push(p);
        }
        ModelEvaluation {
            top1_accuracy: byom_gbdt::accuracy(&predictions, &truth),
            top3_accuracy: top_k_accuracy(&probabilities, &truth, 3),
            num_examples: trace.len(),
            training_size: self.training_size,
        }
    }

    /// Per-category feature-*group* importance (Figure 9c): for each
    /// category, the AUC decrease attributable to each of the four feature
    /// groups (A: historical metrics, B: execution metadata, C: allocated
    /// resources, T: timestamp), normalized within the category.
    ///
    /// # Errors
    /// Returns an error if the evaluation data cannot be assembled.
    ///
    /// # Panics
    /// Panics if `trace` and `costs` have different lengths.
    pub fn feature_group_importance(
        &self,
        trace: &Trace,
        costs: &[JobCost],
        labeler: &CategoryLabeler,
        seed: u64,
    ) -> Result<Vec<Vec<f64>>, GbdtError> {
        assert_eq!(trace.len(), costs.len(), "trace and costs must be parallel");
        let rows: Vec<Vec<f64>> = trace
            .iter()
            .map(|j| self.encoder.encode(&j.features))
            .collect();
        let labels = labeler.label_all(costs);
        let data = Dataset::from_rows(rows, labels)?;
        let per_feature = auc_drop_importance(&self.model, &data, seed);
        let group_of: Vec<usize> = self
            .encoder
            .feature_groups()
            .iter()
            .map(|g| group_index(*g))
            .collect();
        Ok(group_importance(&per_feature, &group_of, 4))
    }

    /// Number of categories the model predicts.
    pub fn num_categories(&self) -> usize {
        self.num_categories
    }

    /// Number of training examples the model was fit on.
    pub fn training_size(&self) -> usize {
        self.training_size
    }

    /// The underlying boosted-tree ensemble.
    pub fn gbdt(&self) -> &GradientBoostedTrees {
        &self.model
    }

    /// The feature encoder used at training time.
    pub fn encoder(&self) -> &FeatureEncoder {
        &self.encoder
    }
}

impl Categorizer for CategoryModel {
    fn name(&self) -> &str {
        "Ranking"
    }

    fn categorize(&self, job: &ShuffleJob) -> usize {
        self.predict_category(&job.features)
    }

    fn categorize_with_confidence(&self, job: &ShuffleJob) -> (usize, f64) {
        let proba = self.predict_proba(&job.features);
        let category = argmax(&proba);
        let confidence = proba.get(category).copied().unwrap_or(0.0);
        (category, confidence)
    }

    fn num_categories(&self) -> usize {
        self.num_categories
    }
}

/// The canonical index of a feature group in Figure 9c order (A, B, C, T).
pub fn group_index(group: FeatureGroup) -> usize {
    match group {
        FeatureGroup::HistoricalSystemMetrics => 0,
        FeatureGroup::ExecutionMetadata => 1,
        FeatureGroup::AllocatedResources => 2,
        FeatureGroup::JobTimestamp => 3,
    }
}

fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

fn rand_seed(seed: u64) -> impl rand::Rng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use byom_cost::{CostModel, CostRates};
    use byom_trace::{ClusterSpec, TraceGenerator};

    fn small_config(categories: usize) -> CategoryModelConfig {
        CategoryModelConfig {
            num_categories: categories,
            gbdt: GbdtParams {
                num_classes: categories,
                num_trees: 15,
                ..GbdtParams::default()
            },
            encoder: FeatureEncoder::default(),
            valid_fraction: 0.2,
        }
    }

    fn setup(seed: u64, hours: f64, categories: usize) -> (Trace, Vec<JobCost>, CategoryLabeler) {
        let trace = TraceGenerator::new(seed).generate(&ClusterSpec::balanced(0), hours * 3600.0);
        let costs = CostModel::new(CostRates::default()).cost_trace(&trace);
        let labeler = CategoryLabeler::fit(&costs, categories);
        (trace, costs, labeler)
    }

    #[test]
    fn trains_and_predicts_valid_categories() {
        let (trace, costs, labeler) = setup(41, 6.0, 5);
        let model = CategoryModel::train(&small_config(5), &trace, &costs, &labeler).unwrap();
        for job in trace.iter().take(100) {
            let c = model.predict_category(&job.features);
            assert!(c < 5);
            let p = model.predict_proba(&job.features);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        assert_eq!(model.num_categories(), 5);
        assert_eq!(model.training_size(), trace.len());
    }

    #[test]
    fn beats_random_guessing_on_held_out_data() {
        let (train, train_costs, labeler) = setup(42, 10.0, 5);
        let (test, test_costs, _) = setup(43, 4.0, 5);
        let model = CategoryModel::train(&small_config(5), &train, &train_costs, &labeler).unwrap();
        let eval = model.evaluate(&test, &test_costs, &labeler);
        assert!(eval.num_examples > 0);
        assert!(
            eval.top1_accuracy > 1.0 / 5.0,
            "top-1 accuracy {} not better than random",
            eval.top1_accuracy
        );
        assert!(eval.top3_accuracy >= eval.top1_accuracy);
    }

    #[test]
    fn group_importance_has_expected_shape_and_normalization() {
        let (trace, costs, labeler) = setup(44, 5.0, 3);
        let model = CategoryModel::train(&small_config(3), &trace, &costs, &labeler).unwrap();
        let (test, test_costs, _) = setup(45, 2.0, 3);
        let gi = model
            .feature_group_importance(&test, &test_costs, &labeler, 1)
            .unwrap();
        assert_eq!(gi.len(), 3);
        for row in &gi {
            assert_eq!(row.len(), 4);
            assert!(row.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn categorizer_trait_is_consistent_with_predict() {
        let (trace, costs, labeler) = setup(46, 4.0, 4);
        let model = CategoryModel::train(&small_config(4), &trace, &costs, &labeler).unwrap();
        for job in trace.iter().take(20) {
            assert_eq!(model.categorize(job), model.predict_category(&job.features));
        }
        assert_eq!(Categorizer::num_categories(&model), 4);
        assert_eq!(model.name(), "Ranking");
    }

    #[test]
    fn evaluate_on_empty_trace_is_zero() {
        let (trace, costs, labeler) = setup(47, 4.0, 3);
        let model = CategoryModel::train(&small_config(3), &trace, &costs, &labeler).unwrap();
        let empty = Trace::default();
        let eval = model.evaluate(&empty, &[], &labeler);
        assert_eq!(eval.num_examples, 0);
        assert_eq!(eval.top1_accuracy, 0.0);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_costs_panics() {
        let (trace, costs, labeler) = setup(48, 3.0, 3);
        let _ = CategoryModel::train(&small_config(3), &trace, &costs[..1], &labeler);
    }
}
