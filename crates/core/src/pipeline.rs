//! End-to-end BYOM pipeline: offline training → ready-to-run policies.
//!
//! Mirrors the paper's deployment flow (Figure 3, right): analyze a
//! historical window of production workloads offline, fit the category
//! labeler and the per-cluster category model, and hand the storage layer a
//! policy that combines the model's predictions with the adaptive category
//! selection algorithm.

use crate::adaptive::AdaptiveConfig;
use crate::categorize::{HashCategorizer, TrueCategoryOracle};
use crate::labels::CategoryLabeler;
use crate::ladder::{FallibleCategorizer, Infallible, LadderConfig, LadderPolicy};
use crate::model::{CategoryModel, CategoryModelConfig};
use crate::policy::AdaptivePolicy;
use byom_cost::CostModel;
use byom_gbdt::{GbdtError, GbdtParams, HistogramMode};
use byom_trace::Trace;
use serde::{Deserialize, Serialize};

/// Builder for a [`ByomPipeline`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ByomPipelineBuilder {
    num_categories: usize,
    gbdt_trees: usize,
    gbdt_max_depth: usize,
    valid_fraction: f64,
    adaptive: AdaptiveConfig,
    parallelism: usize,
    histogram_mode: HistogramMode,
}

impl Default for ByomPipelineBuilder {
    fn default() -> Self {
        ByomPipelineBuilder {
            num_categories: 15,
            gbdt_trees: 300,
            gbdt_max_depth: 6,
            valid_fraction: 0.2,
            adaptive: AdaptiveConfig::default(),
            parallelism: 0,
            histogram_mode: HistogramMode::default(),
        }
    }
}

impl ByomPipelineBuilder {
    /// Number of importance categories N (paper default: 15).
    pub fn num_categories(mut self, n: usize) -> Self {
        self.num_categories = n;
        self
    }

    /// Maximum number of boosting rounds (paper default: 300).
    pub fn gbdt_trees(mut self, trees: usize) -> Self {
        self.gbdt_trees = trees;
        self
    }

    /// Maximum tree depth (paper default: 6).
    pub fn gbdt_max_depth(mut self, depth: usize) -> Self {
        self.gbdt_max_depth = depth;
        self
    }

    /// Fraction of training data held out for early stopping.
    pub fn valid_fraction(mut self, fraction: f64) -> Self {
        self.valid_fraction = fraction;
        self
    }

    /// Adaptive-algorithm configuration (look-back window, tolerance range,
    /// decision interval).
    pub fn adaptive_config(mut self, config: AdaptiveConfig) -> Self {
        self.adaptive = config;
        self
    }

    /// Thread budget used while training the category model: the per-class
    /// trees of each boosting round are fitted concurrently on the shared
    /// executor pool, and the per-feature split search inside each tree
    /// shares the same budget via work-stealing. `0` (the default) inherits
    /// the ambient budget (`BYOM_THREADS` or all cores); `1` trains strictly
    /// sequentially at every nesting level. The trained model is
    /// bit-identical regardless of this setting.
    pub fn parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads;
        self
    }

    /// How per-node histograms are built while fitting trees (see
    /// [`HistogramMode`]). The default, `Subtraction`, derives each larger
    /// sibling as `parent − child` and is fully deterministic; `Rebuild` is
    /// the bit-exact pre-engine reference path.
    pub fn histogram_mode(mut self, mode: HistogramMode) -> Self {
        self.histogram_mode = mode;
        self
    }

    /// Finalize the configuration.
    pub fn build(self) -> ByomPipeline {
        ByomPipeline { builder: self }
    }
}

/// An untrained BYOM pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ByomPipeline {
    builder: ByomPipelineBuilder,
}

impl ByomPipeline {
    /// Start building a pipeline.
    pub fn builder() -> ByomPipelineBuilder {
        ByomPipelineBuilder::default()
    }

    /// The category-model configuration this pipeline will train with.
    pub fn model_config(&self) -> CategoryModelConfig {
        let b = &self.builder;
        CategoryModelConfig {
            num_categories: b.num_categories,
            gbdt: GbdtParams {
                num_classes: b.num_categories,
                num_trees: b.gbdt_trees,
                tree: byom_gbdt::TreeParams {
                    max_depth: b.gbdt_max_depth,
                    histogram_mode: b.histogram_mode,
                    ..byom_gbdt::TreeParams::default()
                },
                parallelism: b.parallelism,
                ..GbdtParams::default()
            },
            encoder: byom_trace::FeatureEncoder::default(),
            valid_fraction: b.valid_fraction,
        }
    }

    /// Train the labeler and category model on a historical trace, producing
    /// a [`TrainedByom`] that can mint policies.
    ///
    /// # Errors
    /// Returns an error if the trace is empty or model training fails.
    pub fn train(&self, train: &Trace, cost_model: &CostModel) -> Result<TrainedByom, GbdtError> {
        if train.is_empty() {
            return Err(GbdtError::EmptyDataset);
        }
        // Pin the pipeline's thread budget for the whole training flow, so
        // labeling and every nested level of model training share it.
        byom_exec::install(self.builder.parallelism, || {
            let costs = cost_model.cost_trace(train);
            let labeler = CategoryLabeler::fit(&costs, self.builder.num_categories);
            let model = CategoryModel::train(&self.model_config(), train, &costs, &labeler)?;
            Ok(TrainedByom {
                labeler,
                model,
                cost_model: *cost_model,
                adaptive: AdaptiveConfig {
                    num_categories: self.builder.num_categories,
                    ..self.builder.adaptive
                },
            })
        })
    }
}

/// A trained BYOM deployment: labeler, category model, and the adaptive
/// configuration, ready to mint placement policies.
#[derive(Debug, Clone)]
pub struct TrainedByom {
    labeler: CategoryLabeler,
    model: CategoryModel,
    cost_model: CostModel,
    adaptive: AdaptiveConfig,
}

impl TrainedByom {
    /// The paper's method: model predictions + adaptive category selection.
    pub fn adaptive_ranking_policy(&self) -> AdaptivePolicy<CategoryModel> {
        AdaptivePolicy::new(self.model.clone(), self.adaptive)
    }

    /// The non-ML ablation: hashed categories + adaptive category selection.
    pub fn adaptive_hash_policy(&self) -> AdaptivePolicy<HashCategorizer> {
        AdaptivePolicy::new(
            HashCategorizer::new(self.adaptive.num_categories),
            self.adaptive,
        )
    }

    /// The perfect-prediction upper bound: ground-truth categories + adaptive
    /// category selection (Figure 11's "True category").
    pub fn true_category_policy(&self) -> AdaptivePolicy<TrueCategoryOracle> {
        AdaptivePolicy::new(
            TrueCategoryOracle::new(self.labeler.clone(), self.cost_model),
            self.adaptive,
        )
    }

    /// The graceful-degradation ladder with the trained model as its top
    /// rung: model → hash → heuristic → first-fit, with default demotion and
    /// probing settings (see [`LadderConfig`]).
    pub fn ladder_policy(&self) -> LadderPolicy<Infallible<CategoryModel>> {
        self.ladder_policy_with(
            Infallible(self.model.clone()),
            LadderConfig {
                adaptive: self.adaptive,
                ..LadderConfig::default()
            },
        )
    }

    /// The graceful-degradation ladder with a caller-supplied (possibly
    /// fallible) model rung — fault-injection layers wrap the trained model
    /// and hand the wrapper in here.
    pub fn ladder_policy_with<M: FallibleCategorizer>(
        &self,
        model: M,
        config: LadderConfig,
    ) -> LadderPolicy<M> {
        LadderPolicy::new(model, config)
    }

    /// The fitted category labeler.
    pub fn labeler(&self) -> &CategoryLabeler {
        &self.labeler
    }

    /// The trained category model.
    pub fn model(&self) -> &CategoryModel {
        &self.model
    }

    /// The adaptive-algorithm configuration.
    pub fn adaptive_config(&self) -> &AdaptiveConfig {
        &self.adaptive
    }

    /// The cost model used for labeling.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byom_cost::CostRates;
    use byom_sim::{PlacementPolicy, SimConfig, Simulator};
    use byom_trace::{ClusterSpec, TraceGenerator};

    fn quick_pipeline() -> ByomPipeline {
        ByomPipeline::builder()
            .num_categories(5)
            .gbdt_trees(15)
            .build()
    }

    fn cost_model() -> CostModel {
        CostModel::new(CostRates::default())
    }

    #[test]
    fn builder_round_trips_configuration() {
        let p = ByomPipeline::builder()
            .num_categories(7)
            .gbdt_trees(50)
            .gbdt_max_depth(4)
            .valid_fraction(0.1)
            .histogram_mode(HistogramMode::Rebuild)
            .build();
        let cfg = p.model_config();
        assert_eq!(cfg.num_categories, 7);
        assert_eq!(cfg.gbdt.num_trees, 50);
        assert_eq!(cfg.gbdt.tree.max_depth, 4);
        assert_eq!(cfg.gbdt.tree.histogram_mode, HistogramMode::Rebuild);
        assert_eq!(cfg.valid_fraction, 0.1);
    }

    #[test]
    fn trains_and_mints_all_three_policies() {
        let train = TraceGenerator::new(61).generate(&ClusterSpec::balanced(0), 8.0 * 3600.0);
        let trained = quick_pipeline().train(&train, &cost_model()).unwrap();
        let ranking = trained.adaptive_ranking_policy();
        let hash = trained.adaptive_hash_policy();
        let truth = trained.true_category_policy();
        assert_eq!(ranking.name(), "Adaptive Ranking");
        assert_eq!(hash.name(), "Adaptive Hash");
        assert_eq!(truth.name(), "Adaptive TrueCategory");
        assert_eq!(trained.labeler().num_categories(), 5);
        assert_eq!(trained.model().num_categories(), 5);
        assert_eq!(trained.adaptive_config().num_categories, 5);
    }

    #[test]
    fn mints_a_ladder_policy_starting_at_the_model_rung() {
        let train = TraceGenerator::new(64).generate(&ClusterSpec::balanced(0), 8.0 * 3600.0);
        let trained = quick_pipeline().train(&train, &cost_model()).unwrap();
        let ladder = trained.ladder_policy();
        assert_eq!(ladder.name(), "Ladder Ranking");
        assert_eq!(ladder.health().active_rung(), 0);
        assert_eq!(ladder.rung_occupancy(), [0; crate::ladder::LADDER_RUNGS]);
    }

    #[test]
    fn empty_training_trace_is_an_error() {
        let err = quick_pipeline().train(&Trace::default(), &cost_model());
        assert!(err.is_err());
    }

    #[test]
    fn end_to_end_ranking_beats_hash_at_tight_quota() {
        // The headline qualitative claim: with a tight SSD quota, the learned
        // ranking categorizer saves more TCO than the non-ML hash ablation.
        let generator = TraceGenerator::new(62);
        let spec = ClusterSpec::balanced(0);
        let train = generator.generate(&spec, 16.0 * 3600.0);
        let test = TraceGenerator::new(63).generate(&spec, 8.0 * 3600.0);
        let cm = cost_model();
        let trained = ByomPipeline::builder()
            .num_categories(8)
            .gbdt_trees(40)
            .build()
            .train(&train, &cm)
            .unwrap();

        let sim = Simulator::new(
            SimConfig::try_from_quota_fraction(&test, 0.01).expect("valid quota fraction"),
            cm,
        );
        let ranking = sim.run(&test, &mut trained.adaptive_ranking_policy());
        let hash = sim.run(&test, &mut trained.adaptive_hash_policy());
        assert!(
            ranking.tco_savings_percent() >= hash.tco_savings_percent(),
            "ranking {:.3}% should be >= hash {:.3}%",
            ranking.tco_savings_percent(),
            hash.tco_savings_percent()
        );
    }
}
