//! The cross-layer placement policies built from a categorizer plus the
//! adaptive category selection algorithm.
//!
//! * **Adaptive Ranking** = [`CategoryModel`](crate::model::CategoryModel)
//!   + [`AdaptiveSelector`] — the paper's method.
//! * **Adaptive Hash** = [`HashCategorizer`](crate::categorize::HashCategorizer)
//!   + [`AdaptiveSelector`] — the non-ML ablation.
//! * **True Category** = [`TrueCategoryOracle`](crate::categorize::TrueCategoryOracle)
//!   + [`AdaptiveSelector`] — the perfect-prediction upper bound of Figure 11.

use crate::adaptive::{AdaptiveConfig, AdaptiveSelector};
use crate::categorize::Categorizer;
use byom_cost::JobCost;
use byom_sim::{Device, JobOutcome, PlacementPolicy, SystemState};
use byom_trace::ShuffleJob;

/// A placement policy pairing a categorizer (application layer) with the
/// adaptive category selection algorithm (storage layer).
#[derive(Debug, Clone)]
pub struct AdaptivePolicy<C: Categorizer> {
    name: String,
    categorizer: C,
    selector: AdaptiveSelector,
}

impl<C: Categorizer> AdaptivePolicy<C> {
    /// Build a policy from a categorizer and an adaptive-algorithm
    /// configuration. The configuration's category count is overridden by the
    /// categorizer's.
    pub fn new(categorizer: C, config: AdaptiveConfig) -> Self {
        let config = AdaptiveConfig {
            num_categories: categorizer.num_categories(),
            ..config
        };
        let name = format!("Adaptive {}", categorizer.name());
        AdaptivePolicy {
            name,
            selector: AdaptiveSelector::new(config),
            categorizer,
        }
    }

    /// The current admission category threshold.
    pub fn act(&self) -> usize {
        self.selector.act()
    }

    /// The recorded `(time, ACT, spillover_percent)` adaptation trace
    /// (Figure 16 of the paper).
    pub fn adaptation_trace(&self) -> &[(f64, usize, f64)] {
        self.selector.adaptation_trace()
    }

    /// The categorizer in use.
    pub fn categorizer(&self) -> &C {
        &self.categorizer
    }
}

impl<C: Categorizer> PlacementPolicy for AdaptivePolicy<C> {
    fn name(&self) -> &str {
        &self.name
    }

    fn place(&mut self, job: &ShuffleJob, _cost: &JobCost, _state: &SystemState) -> Device {
        let category = self.categorizer.categorize(job);
        if self.selector.admit(job.arrival, category) {
            Device::Ssd
        } else {
            Device::Hdd
        }
    }

    fn observe(&mut self, outcome: &JobOutcome) {
        self.selector.observe(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::categorize::HashCategorizer;
    use byom_cost::{CostModel, CostRates};
    use byom_sim::{SimConfig, Simulator};
    use byom_trace::{ClusterSpec, TraceGenerator};

    fn config() -> AdaptiveConfig {
        AdaptiveConfig {
            lookback_window_secs: 900.0,
            decision_interval_secs: 600.0,
            ..AdaptiveConfig::default()
        }
    }

    #[test]
    fn adaptive_hash_policy_runs_end_to_end() {
        let trace = TraceGenerator::new(51).generate(&ClusterSpec::balanced(0), 6.0 * 3600.0);
        let model = CostModel::new(CostRates::default());
        let sim = Simulator::new(
            SimConfig::try_from_quota_fraction(&trace, 0.05).expect("valid quota fraction"),
            model,
        );
        let mut policy = AdaptivePolicy::new(HashCategorizer::new(15), config());
        assert_eq!(policy.name(), "Adaptive Hash");
        let result = sim.run(&trace, &mut policy);
        assert_eq!(result.outcomes.len(), trace.len());
        // The policy adapts: its trace records at least a couple of updates.
        assert!(policy.adaptation_trace().len() >= 2);
        assert!(policy.act() >= 1 && policy.act() <= 14);
    }

    #[test]
    fn category_zero_jobs_are_never_admitted() {
        /// A categorizer that always returns category 0.
        #[derive(Debug)]
        struct AlwaysZero;
        impl Categorizer for AlwaysZero {
            fn name(&self) -> &str {
                "Zero"
            }
            fn categorize(&self, _: &ShuffleJob) -> usize {
                0
            }
            fn num_categories(&self) -> usize {
                5
            }
        }
        let trace = TraceGenerator::new(52).generate(&ClusterSpec::balanced(0), 3_600.0);
        let model = CostModel::new(CostRates::default());
        let sim = Simulator::new(
            SimConfig::try_from_quota_fraction(&trace, 0.5).expect("valid quota fraction"),
            model,
        );
        let mut policy = AdaptivePolicy::new(AlwaysZero, config());
        let result = sim.run(&trace, &mut policy);
        assert_eq!(result.jobs_scheduled_to_ssd(), 0);
        assert_eq!(result.savings.tco_savings_percent(), 0.0);
    }

    #[test]
    fn act_rises_under_a_tiny_quota() {
        let trace = TraceGenerator::new(53).generate(&ClusterSpec::balanced(0), 12.0 * 3600.0);
        let model = CostModel::new(CostRates::default());
        // Quota of 0.1% of peak: heavy spillover expected.
        let sim = Simulator::new(
            SimConfig::try_from_quota_fraction(&trace, 0.001).expect("valid quota fraction"),
            model,
        );
        let mut policy = AdaptivePolicy::new(HashCategorizer::new(15), config());
        let _ = sim.run(&trace, &mut policy);
        let max_act = policy
            .adaptation_trace()
            .iter()
            .map(|(_, act, _)| *act)
            .max()
            .unwrap_or(1);
        assert!(max_act > 1, "ACT should rise under a tiny quota");
    }

    #[test]
    fn plentiful_quota_keeps_act_low() {
        let trace = TraceGenerator::new(54).generate(&ClusterSpec::balanced(0), 6.0 * 3600.0);
        let model = CostModel::new(CostRates::default());
        let sim = Simulator::new(
            SimConfig {
                ssd_capacity_bytes: u64::MAX,
            },
            model,
        );
        let mut policy = AdaptivePolicy::new(HashCategorizer::new(15), config());
        let _ = sim.run(&trace, &mut policy);
        assert_eq!(
            policy.act(),
            1,
            "no spillover should keep the ACT at its floor"
        );
    }
}
