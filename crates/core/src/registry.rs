//! Model granularity: per-cluster vs per-workload models.
//!
//! Section 5.1 of the paper discusses the training-granularity trade-off: one
//! model per binary/workload captures workload-specific behaviour best, while
//! one joint model per cluster scales to many workloads and covers
//! rarely-seen pipelines. The paper evaluates the per-cluster granularity but
//! notes nothing precludes finer choices. [`ModelRegistry`] implements the
//! finer option: it trains one category model per pipeline (for pipelines
//! with enough history) plus a cluster-wide fallback model, and routes each
//! arriving job to its pipeline's model when one exists.

use crate::categorize::Categorizer;
use crate::labels::CategoryLabeler;
use crate::model::{CategoryModel, CategoryModelConfig};
use byom_cost::{CostModel, JobCost};
use byom_gbdt::GbdtError;
use byom_trace::{ShuffleJob, Trace};
use std::collections::BTreeMap;

/// Training granularity for the BYOM category models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelGranularity {
    /// One joint model per cluster (the paper's evaluated configuration).
    PerCluster,
    /// One model per pipeline, with a per-cluster fallback for pipelines with
    /// too little history. `min_jobs_per_pipeline` controls the cut-off.
    PerPipeline {
        /// Minimum number of historical jobs a pipeline needs before it gets
        /// its own model.
        min_jobs_per_pipeline: usize,
    },
}

/// A set of per-pipeline category models plus a cluster-wide fallback.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    fallback: CategoryModel,
    per_pipeline: BTreeMap<String, CategoryModel>,
    num_categories: usize,
}

impl ModelRegistry {
    /// Train a registry at the requested granularity.
    ///
    /// With [`ModelGranularity::PerCluster`] this is equivalent to training a
    /// single [`CategoryModel`]; with [`ModelGranularity::PerPipeline`] each
    /// pipeline with at least `min_jobs_per_pipeline` historical jobs gets a
    /// dedicated model.
    ///
    /// # Errors
    /// Returns an error if the fallback (cluster-wide) model cannot be
    /// trained. Per-pipeline models that fail to train are skipped (their
    /// pipelines fall back to the cluster model).
    pub fn train(
        config: &CategoryModelConfig,
        granularity: ModelGranularity,
        train: &Trace,
        cost_model: &CostModel,
        labeler: &CategoryLabeler,
    ) -> Result<Self, GbdtError> {
        let costs = cost_model.cost_trace(train);
        let fallback = CategoryModel::train(config, train, &costs, labeler)?;
        let mut per_pipeline = BTreeMap::new();

        if let ModelGranularity::PerPipeline {
            min_jobs_per_pipeline,
        } = granularity
        {
            // Group job indices by pipeline.
            let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
            for (i, job) in train.iter().enumerate() {
                groups
                    .entry(job.features.pipeline_name.clone())
                    .or_default()
                    .push(i);
            }
            for (pipeline, indices) in groups {
                if indices.len() < min_jobs_per_pipeline {
                    continue;
                }
                let jobs: Vec<ShuffleJob> =
                    indices.iter().map(|&i| train.jobs()[i].clone()).collect();
                let sub_trace = Trace::new(jobs);
                let sub_costs: Vec<JobCost> = indices.iter().map(|&i| costs[i]).collect();
                // Pipelines are homogeneous, so a smaller validation split (or
                // none) is appropriate; reuse the config as-is and skip
                // pipelines whose model fails to train.
                if let Ok(model) = CategoryModel::train(config, &sub_trace, &sub_costs, labeler) {
                    per_pipeline.insert(pipeline, model);
                }
            }
        }

        Ok(ModelRegistry {
            fallback,
            per_pipeline,
            num_categories: config.num_categories,
        })
    }

    /// Number of dedicated per-pipeline models (excluding the fallback).
    pub fn num_pipeline_models(&self) -> usize {
        self.per_pipeline.len()
    }

    /// The cluster-wide fallback model.
    pub fn fallback(&self) -> &CategoryModel {
        &self.fallback
    }

    /// Whether a dedicated model exists for the given pipeline name.
    pub fn has_pipeline_model(&self, pipeline: &str) -> bool {
        self.per_pipeline.contains_key(pipeline)
    }

    /// The model that will be used for a given job.
    pub fn model_for(&self, job: &ShuffleJob) -> &CategoryModel {
        self.per_pipeline
            .get(&job.features.pipeline_name)
            .unwrap_or(&self.fallback)
    }
}

impl Categorizer for ModelRegistry {
    fn name(&self) -> &str {
        "Ranking (per-pipeline)"
    }

    fn categorize(&self, job: &ShuffleJob) -> usize {
        self.model_for(job).predict_category(&job.features)
    }

    fn num_categories(&self) -> usize {
        self.num_categories
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byom_cost::CostRates;
    use byom_gbdt::GbdtParams;
    use byom_trace::{ClusterSpec, FeatureEncoder, TraceGenerator};

    fn setup() -> (Trace, CostModel, CategoryLabeler, CategoryModelConfig) {
        let trace = TraceGenerator::new(71).generate(&ClusterSpec::balanced(0), 8.0 * 3600.0);
        let cost_model = CostModel::new(CostRates::default());
        let costs = cost_model.cost_trace(&trace);
        let labeler = CategoryLabeler::fit(&costs, 5);
        let config = CategoryModelConfig {
            num_categories: 5,
            gbdt: GbdtParams {
                num_classes: 5,
                num_trees: 8,
                ..GbdtParams::default()
            },
            encoder: FeatureEncoder::default(),
            valid_fraction: 0.0,
        };
        (trace, cost_model, labeler, config)
    }

    #[test]
    fn per_cluster_granularity_has_no_pipeline_models() {
        let (trace, cost_model, labeler, config) = setup();
        let registry = ModelRegistry::train(
            &config,
            ModelGranularity::PerCluster,
            &trace,
            &cost_model,
            &labeler,
        )
        .unwrap();
        assert_eq!(registry.num_pipeline_models(), 0);
        // Every job routes to the fallback.
        let job = &trace.jobs()[0];
        assert!(!registry.has_pipeline_model(&job.features.pipeline_name));
        assert_eq!(
            registry.categorize(job),
            registry.fallback().predict_category(&job.features)
        );
    }

    #[test]
    fn per_pipeline_granularity_trains_dedicated_models() {
        let (trace, cost_model, labeler, config) = setup();
        let registry = ModelRegistry::train(
            &config,
            ModelGranularity::PerPipeline {
                min_jobs_per_pipeline: 50,
            },
            &trace,
            &cost_model,
            &labeler,
        )
        .unwrap();
        assert!(
            registry.num_pipeline_models() > 0,
            "expected at least one pipeline with enough history"
        );
        // Jobs from covered pipelines route to their dedicated model; others
        // fall back, and both paths return valid categories.
        for job in trace.iter().take(200) {
            let c = registry.categorize(job);
            assert!(c < 5);
        }
        assert_eq!(Categorizer::num_categories(&registry), 5);
        assert_eq!(registry.name(), "Ranking (per-pipeline)");
    }

    #[test]
    fn high_threshold_leaves_only_the_fallback() {
        let (trace, cost_model, labeler, config) = setup();
        let registry = ModelRegistry::train(
            &config,
            ModelGranularity::PerPipeline {
                min_jobs_per_pipeline: usize::MAX,
            },
            &trace,
            &cost_model,
            &labeler,
        )
        .unwrap();
        assert_eq!(registry.num_pipeline_models(), 0);
    }
}
