//! Precomputed per-job costs and the [`CostModel`] facade.

use crate::rates::CostRates;
use crate::tcio::tcio_on_hdd;
use crate::tco::{tco_hdd, tco_ssd, TcoBreakdown};
use byom_trace::{JobId, ShuffleJob, Trace};
use serde::{Deserialize, Serialize};

/// All cost quantities of one job, precomputed once so that placement
/// policies, the oracle solver and the simulator can share them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobCost {
    /// Job identifier.
    pub id: JobId,
    /// Arrival time in seconds (copied from the job for convenience).
    pub arrival: f64,
    /// Lifetime in seconds.
    pub lifetime: f64,
    /// Peak footprint in bytes.
    pub size_bytes: u64,
    /// TCIO if placed on HDD.
    pub tcio_hdd: f64,
    /// Full TCO if placed on HDD.
    pub tco_hdd: f64,
    /// Full TCO if placed on SSD.
    pub tco_ssd: f64,
    /// I/O density (total I/O bytes / footprint).
    pub io_density: f64,
}

impl JobCost {
    /// TCO saved by placing this job on SSD instead of HDD. Negative when
    /// SSD placement is more expensive.
    pub fn tco_savings(&self) -> f64 {
        self.tco_hdd - self.tco_ssd
    }

    /// TCIO-seconds the job consumes on HDD (`tcio * lifetime`): its total
    /// I/O budget in HDD-seconds. This is the quantity that SSD placement
    /// removes from the HDD fleet.
    pub fn tcio_seconds(&self) -> f64 {
        self.tcio_hdd * self.lifetime
    }

    /// SSD byte-seconds the job would occupy (`size * lifetime`), the
    /// resource the SSD capacity constraint is written over.
    pub fn ssd_byte_seconds(&self) -> f64 {
        self.size_bytes as f64 * self.lifetime
    }

    /// End time (`arrival + lifetime`).
    pub fn end(&self) -> f64 {
        self.arrival + self.lifetime
    }
}

/// The cost model: a set of [`CostRates`] plus the derived per-job
/// computations.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostModel {
    rates: CostRates,
}

impl CostModel {
    /// Create a cost model from validated rates.
    ///
    /// # Panics
    /// Panics if the rates fail [`CostRates::validate`]; construct rates from
    /// the provided presets or validate them first to avoid this.
    pub fn new(rates: CostRates) -> Self {
        if let Err(e) = rates.validate() {
            panic!("invalid cost rates: {e}");
        }
        CostModel { rates }
    }

    /// The rates this model was built from.
    pub fn rates(&self) -> &CostRates {
        &self.rates
    }

    /// Full HDD TCO breakdown for a job.
    pub fn tco_hdd_breakdown(&self, job: &ShuffleJob) -> TcoBreakdown {
        tco_hdd(job, &self.rates)
    }

    /// Full SSD TCO breakdown for a job.
    pub fn tco_ssd_breakdown(&self, job: &ShuffleJob) -> TcoBreakdown {
        tco_ssd(job, &self.rates)
    }

    /// Compute all cost quantities for one job.
    pub fn cost_job(&self, job: &ShuffleJob) -> JobCost {
        JobCost {
            id: job.id,
            arrival: job.arrival,
            lifetime: job.lifetime,
            size_bytes: job.size_bytes,
            tcio_hdd: tcio_on_hdd(job, &self.rates),
            tco_hdd: tco_hdd(job, &self.rates).total(),
            tco_ssd: tco_ssd(job, &self.rates).total(),
            io_density: job.io_density(),
        }
    }

    /// Compute costs for every job in a trace, in the trace's arrival order.
    pub fn cost_trace(&self, trace: &Trace) -> Vec<JobCost> {
        trace.iter().map(|j| self.cost_job(j)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byom_trace::{ClusterSpec, IoProfile, JobFeatures, TraceGenerator};

    fn sample_trace() -> Trace {
        TraceGenerator::new(11).generate(&ClusterSpec::balanced(0), 7_200.0)
    }

    #[test]
    fn cost_trace_preserves_order_and_ids() {
        let trace = sample_trace();
        let model = CostModel::default();
        let costs = model.cost_trace(&trace);
        assert_eq!(costs.len(), trace.len());
        for (c, j) in costs.iter().zip(trace.iter()) {
            assert_eq!(c.id, j.id);
            assert_eq!(c.size_bytes, j.size_bytes);
        }
    }

    #[test]
    fn savings_have_both_signs_across_a_diverse_trace() {
        // The placement problem is only interesting if some jobs save cost on
        // SSD and others do not; verify our synthetic fleet produces both.
        let trace = sample_trace();
        let model = CostModel::default();
        let costs = model.cost_trace(&trace);
        let positive = costs.iter().filter(|c| c.tco_savings() > 0.0).count();
        let negative = costs.iter().filter(|c| c.tco_savings() < 0.0).count();
        assert!(positive > 0, "no SSD-friendly jobs generated");
        assert!(negative > 0, "no HDD-friendly jobs generated");
    }

    #[test]
    fn tcio_seconds_and_byte_seconds() {
        let c = JobCost {
            id: JobId(0),
            arrival: 0.0,
            lifetime: 100.0,
            size_bytes: 10,
            tcio_hdd: 0.5,
            tco_hdd: 2.0,
            tco_ssd: 1.0,
            io_density: 1.0,
        };
        assert_eq!(c.tcio_seconds(), 50.0);
        assert_eq!(c.ssd_byte_seconds(), 1000.0);
        assert_eq!(c.tco_savings(), 1.0);
        assert_eq!(c.end(), 100.0);
    }

    #[test]
    #[should_panic(expected = "invalid cost rates")]
    fn constructor_rejects_invalid_rates() {
        let bad = CostRates {
            hdd_ops_per_sec: -1.0,
            ..CostRates::default()
        };
        let _ = CostModel::new(bad);
    }

    #[test]
    fn denser_job_has_higher_tcio() {
        let model = CostModel::default();
        let mk = |read_ops: u64| ShuffleJob {
            id: JobId(0),
            cluster: 0,
            arrival: 0.0,
            lifetime: 100.0,
            size_bytes: 1 << 30,
            io: IoProfile {
                read_ops,
                read_bytes: read_ops * 64 * 1024,
                written_bytes: 1 << 30,
                write_ops: 8192,
                dram_hit_fraction: 0.1,
                mean_read_size: 64 * 1024,
            },
            features: JobFeatures::default(),
            archetype: 0,
        };
        let sparse = model.cost_job(&mk(100));
        let dense = model.cost_job(&mk(100_000));
        assert!(dense.tcio_hdd > sparse.tcio_hdd);
        assert!(dense.tco_savings() > sparse.tco_savings());
    }
}
