//! Storage cost model: `TCIO` and `TCO` as defined in Section 3 of the BYOM
//! storage-placement paper.
//!
//! Two metrics drive every experiment in the paper:
//!
//! * **TCIO** (*Total Cost of I/O*): the disk pressure a job places on HDDs,
//!   expressed in units of "the I/O one standard HDD can sustain per second".
//!   A job running entirely on SSD has a TCIO of zero. The computation
//!   accounts for the server-side DRAM cache (cached reads never reach the
//!   disks) and for small writes being coalesced into 1 MiB chunks before
//!   they hit the disks.
//! * **TCO** (*storage Total Cost of Ownership*): the monetary cost of
//!   storing and serving a job on a device, decomposed into byte, network,
//!   server, and device-specific components. The SSD-specific component is
//!   wear-out (bytes written against the drive's P/E budget).
//!
//! The headline quantity of the paper — *TCO savings* — is, per job, the
//! difference `TCO_HDD − TCO_SSD`; savings are reported as a percentage of
//! the all-on-HDD total.
//!
//! ```
//! use byom_cost::{CostModel, CostRates};
//! use byom_trace::{ClusterSpec, TraceGenerator};
//!
//! let trace = TraceGenerator::new(1).generate(&ClusterSpec::balanced(0), 3_600.0);
//! let model = CostModel::new(CostRates::default());
//! let costs = model.cost_trace(&trace);
//! assert_eq!(costs.len(), trace.len());
//! // Every job has a non-negative HDD cost.
//! assert!(costs.iter().all(|c| c.tco_hdd >= 0.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod job_cost;
pub mod rates;
pub mod savings;
pub mod tcio;
pub mod tco;

pub use job_cost::{CostModel, JobCost};
pub use rates::CostRates;
pub use savings::{savings_summary, Placement, SavingsSummary};
pub use tcio::tcio_on_hdd;
pub use tco::{tco_hdd, tco_ssd, TcoBreakdown};
