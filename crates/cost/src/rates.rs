//! Conversion rates from physical quantities (bytes, I/O operations, time)
//! to dollar cost, plus the HDD performance constants that define the TCIO
//! unit.
//!
//! The absolute values are synthetic (the paper's rates are proprietary) but
//! are chosen from public hardware price points so that the *qualitative*
//! trade-off matches the paper: SSD bytes cost several times more than HDD
//! bytes, SSD writes incur wear-out cost, and I/O-dense jobs are cheaper on
//! SSD while large, sequential, long-lived jobs are cheaper on HDD.

use serde::{Deserialize, Serialize};

/// Dollar-conversion rates and device constants used by the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostRates {
    /// Cost of storing one byte on HDD for one second (`byte_cost^HDD`).
    pub hdd_byte_cost_per_sec: f64,
    /// Cost of storing one byte on SSD for one second (`byte_cost^SSD`).
    pub ssd_byte_cost_per_sec: f64,
    /// Network cost of transmitting one byte, device independent
    /// (`network_cost_rate`). Included so byte/server costs are not
    /// overweighted in the overall TCO, as in the paper.
    pub network_cost_per_byte: f64,
    /// Cost per second of one TCIO unit's worth of HDD *server* resources
    /// (`server_cost_rate^HDD`).
    pub hdd_server_cost_per_tcio_sec: f64,
    /// Cost per byte transmitted through SSD *servers*
    /// (`server_cost_rate^SSD`; the paper notes SSD server cost correlates
    /// with bytes transmitted).
    pub ssd_server_cost_per_byte: f64,
    /// Cost per second of one TCIO unit's worth of HDD devices
    /// (`device_cost_rate^HDD`).
    pub hdd_device_cost_per_tcio_sec: f64,
    /// SSD wear-out cost per byte written (`wearout_cost_rate^SSD`), derived
    /// from the drive's total-bytes-written rating.
    pub ssd_wearout_cost_per_byte: f64,
    /// Random operations per second one standard HDD sustains. Defines the
    /// seek/rotation component of the TCIO unit.
    pub hdd_ops_per_sec: f64,
    /// Sequential bandwidth (bytes/second) of one standard HDD. Defines the
    /// transfer component of the TCIO unit.
    pub hdd_bandwidth_bytes_per_sec: f64,
    /// Small writes are grouped into chunks of this many bytes before they
    /// reach the disks (1 MiB in the paper's system).
    pub write_coalesce_bytes: u64,
}

impl Default for CostRates {
    fn default() -> Self {
        CostRates {
            // ~ $0.03/GiB over a 5-year deployment.
            hdd_byte_cost_per_sec: 1.9e-16,
            // ~ $0.10/GiB over a 5-year deployment.
            ssd_byte_cost_per_sec: 4.5e-16,
            network_cost_per_byte: 2.0e-13,
            // ~ $600 of server amortized per HDD over 5 years.
            hdd_server_cost_per_tcio_sec: 4.0e-6,
            ssd_server_cost_per_byte: 0.7e-13,
            // ~ $300 HDD amortized over 5 years.
            hdd_device_cost_per_tcio_sec: 1.9e-6,
            // ~ $100 SSD with a 600 TBW endurance rating.
            ssd_wearout_cost_per_byte: 0.9e-13,
            hdd_ops_per_sec: 150.0,
            hdd_bandwidth_bytes_per_sec: 150.0 * 1024.0 * 1024.0,
            write_coalesce_bytes: 1024 * 1024,
        }
    }
}

impl CostRates {
    /// Validate that all rates are finite, non-negative, and the performance
    /// constants are positive.
    ///
    /// # Errors
    /// Returns a human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        let nonneg = [
            ("hdd_byte_cost_per_sec", self.hdd_byte_cost_per_sec),
            ("ssd_byte_cost_per_sec", self.ssd_byte_cost_per_sec),
            ("network_cost_per_byte", self.network_cost_per_byte),
            (
                "hdd_server_cost_per_tcio_sec",
                self.hdd_server_cost_per_tcio_sec,
            ),
            ("ssd_server_cost_per_byte", self.ssd_server_cost_per_byte),
            (
                "hdd_device_cost_per_tcio_sec",
                self.hdd_device_cost_per_tcio_sec,
            ),
            ("ssd_wearout_cost_per_byte", self.ssd_wearout_cost_per_byte),
        ];
        for (name, v) in nonneg {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be finite and non-negative, got {v}"));
            }
        }
        let positive = [
            ("hdd_ops_per_sec", self.hdd_ops_per_sec),
            (
                "hdd_bandwidth_bytes_per_sec",
                self.hdd_bandwidth_bytes_per_sec,
            ),
        ];
        for (name, v) in positive {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("{name} must be finite and positive, got {v}"));
            }
        }
        if self.write_coalesce_bytes == 0 {
            return Err("write_coalesce_bytes must be positive".to_string());
        }
        Ok(())
    }

    /// A rates preset with expensive SSDs (higher byte and wear-out cost),
    /// used in sensitivity experiments.
    pub fn expensive_ssd() -> Self {
        CostRates {
            ssd_byte_cost_per_sec: 1.0e-15,
            ssd_wearout_cost_per_byte: 2.0e-13,
            ..CostRates::default()
        }
    }

    /// A rates preset with cheap SSDs, used in sensitivity experiments.
    pub fn cheap_ssd() -> Self {
        CostRates {
            ssd_byte_cost_per_sec: 3.0e-16,
            ssd_wearout_cost_per_byte: 0.5e-13,
            ..CostRates::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rates_validate() {
        assert!(CostRates::default().validate().is_ok());
        assert!(CostRates::expensive_ssd().validate().is_ok());
        assert!(CostRates::cheap_ssd().validate().is_ok());
    }

    #[test]
    fn ssd_bytes_cost_more_than_hdd_bytes() {
        let r = CostRates::default();
        assert!(r.ssd_byte_cost_per_sec > r.hdd_byte_cost_per_sec);
    }

    #[test]
    fn validation_rejects_negative_rate() {
        let r = CostRates {
            hdd_byte_cost_per_sec: -1.0,
            ..CostRates::default()
        };
        assert!(r.validate().unwrap_err().contains("hdd_byte_cost_per_sec"));
    }

    #[test]
    fn validation_rejects_zero_hdd_ops() {
        let r = CostRates {
            hdd_ops_per_sec: 0.0,
            ..CostRates::default()
        };
        assert!(r.validate().is_err());
    }

    #[test]
    fn validation_rejects_nan_and_zero_coalesce() {
        let r = CostRates {
            network_cost_per_byte: f64::NAN,
            ..CostRates::default()
        };
        assert!(r.validate().is_err());
        let r2 = CostRates {
            write_coalesce_bytes: 0,
            ..CostRates::default()
        };
        assert!(r2.validate().is_err());
    }

    #[test]
    fn presets_differ_in_the_expected_direction() {
        let d = CostRates::default();
        assert!(CostRates::expensive_ssd().ssd_byte_cost_per_sec > d.ssd_byte_cost_per_sec);
        assert!(CostRates::cheap_ssd().ssd_byte_cost_per_sec < d.ssd_byte_cost_per_sec);
    }
}
