//! Savings accounting: turning a set of placement outcomes into the paper's
//! TCO-savings-percent and TCIO-savings-percent metrics.

use crate::job_cost::JobCost;
use serde::{Deserialize, Serialize};

/// The realized placement of one job after simulation.
///
/// `ssd_fraction` is the fraction of the job's footprint (and, pro rata, its
/// I/O) that was actually served from SSD. A job admitted to SSD that later
/// spilled over to HDD has a fraction strictly between 0 and 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Fraction of the job served from SSD, in `[0, 1]`.
    pub ssd_fraction: f64,
}

impl Placement {
    /// A job fully placed on HDD.
    pub fn hdd() -> Self {
        Placement { ssd_fraction: 0.0 }
    }

    /// A job fully placed on SSD.
    pub fn ssd() -> Self {
        Placement { ssd_fraction: 1.0 }
    }

    /// A job partially placed on SSD (e.g. after spillover).
    ///
    /// # Panics
    /// Panics if `fraction` is not within `[0, 1]` (NaN included).
    pub fn partial(fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "ssd fraction must be in [0,1], got {fraction}"
        );
        Placement {
            ssd_fraction: fraction,
        }
    }

    /// Whether any part of the job resides on SSD.
    pub fn uses_ssd(&self) -> bool {
        self.ssd_fraction > 0.0
    }
}

/// Aggregate savings of one placement run, relative to the all-on-HDD
/// baseline, matching the metrics reported throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SavingsSummary {
    /// Total TCO if every job were placed on HDD (the baseline denominator).
    pub baseline_tco: f64,
    /// Total TCO achieved by the evaluated placement.
    pub achieved_tco: f64,
    /// Total TCIO-seconds if every job were on HDD.
    pub baseline_tcio_seconds: f64,
    /// TCIO-seconds actually removed from HDDs by SSD placement.
    pub tcio_seconds_saved: f64,
    /// Number of jobs that used SSD at least partially.
    pub jobs_on_ssd: usize,
    /// Number of jobs evaluated.
    pub total_jobs: usize,
}

impl SavingsSummary {
    /// TCO savings as a percentage of the all-on-HDD baseline.
    pub fn tco_savings_percent(&self) -> f64 {
        if self.baseline_tco <= 0.0 {
            return 0.0;
        }
        (self.baseline_tco - self.achieved_tco) / self.baseline_tco * 100.0
    }

    /// TCIO savings as a percentage of the all-on-HDD baseline.
    pub fn tcio_savings_percent(&self) -> f64 {
        if self.baseline_tcio_seconds <= 0.0 {
            return 0.0;
        }
        self.tcio_seconds_saved / self.baseline_tcio_seconds * 100.0
    }
}

/// Aggregate a set of per-job costs and realized placements into a
/// [`SavingsSummary`].
///
/// Costs for partially-placed jobs are interpolated linearly between the HDD
/// and SSD costs by the realized SSD fraction, matching the simulator's
/// byte-proportional spillover model.
///
/// # Panics
/// Panics if `costs` and `placements` have different lengths.
pub fn savings_summary(costs: &[JobCost], placements: &[Placement]) -> SavingsSummary {
    assert_eq!(
        costs.len(),
        placements.len(),
        "costs and placements must be parallel arrays"
    );
    let mut summary = SavingsSummary {
        total_jobs: costs.len(),
        ..Default::default()
    };
    for (c, p) in costs.iter().zip(placements) {
        let f = p.ssd_fraction.clamp(0.0, 1.0);
        summary.baseline_tco += c.tco_hdd;
        summary.achieved_tco += f * c.tco_ssd + (1.0 - f) * c.tco_hdd;
        summary.baseline_tcio_seconds += c.tcio_seconds();
        summary.tcio_seconds_saved += f * c.tcio_seconds();
        if f > 0.0 {
            summary.jobs_on_ssd += 1;
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use byom_trace::JobId;

    fn cost(tco_hdd: f64, tco_ssd: f64, tcio: f64) -> JobCost {
        JobCost {
            id: JobId(0),
            arrival: 0.0,
            lifetime: 10.0,
            size_bytes: 100,
            tcio_hdd: tcio,
            tco_hdd,
            tco_ssd,
            io_density: 1.0,
        }
    }

    #[test]
    fn all_hdd_gives_zero_savings() {
        let costs = vec![cost(2.0, 1.0, 0.5); 4];
        let placements = vec![Placement::hdd(); 4];
        let s = savings_summary(&costs, &placements);
        assert_eq!(s.tco_savings_percent(), 0.0);
        assert_eq!(s.tcio_savings_percent(), 0.0);
        assert_eq!(s.jobs_on_ssd, 0);
        assert_eq!(s.total_jobs, 4);
    }

    #[test]
    fn all_ssd_with_positive_savings() {
        let costs = vec![cost(2.0, 1.0, 0.5); 4];
        let placements = vec![Placement::ssd(); 4];
        let s = savings_summary(&costs, &placements);
        assert!((s.tco_savings_percent() - 50.0).abs() < 1e-9);
        assert!((s.tcio_savings_percent() - 100.0).abs() < 1e-9);
        assert_eq!(s.jobs_on_ssd, 4);
    }

    #[test]
    fn ssd_placement_of_negative_savings_job_hurts_tco_but_helps_tcio() {
        let costs = vec![cost(1.0, 3.0, 0.5)];
        let s = savings_summary(&costs, &[Placement::ssd()]);
        assert!(s.tco_savings_percent() < 0.0);
        assert!(s.tcio_savings_percent() > 0.0);
    }

    #[test]
    fn partial_placement_interpolates() {
        let costs = vec![cost(2.0, 1.0, 1.0)];
        let s = savings_summary(&costs, &[Placement::partial(0.25)]);
        assert!((s.tco_savings_percent() - 12.5).abs() < 1e-9);
        assert!((s.tcio_savings_percent() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let s = savings_summary(&[], &[]);
        assert_eq!(s.tco_savings_percent(), 0.0);
        assert_eq!(s.tcio_savings_percent(), 0.0);
    }

    #[test]
    #[should_panic(expected = "parallel arrays")]
    fn mismatched_lengths_panic() {
        let _ = savings_summary(&[cost(1.0, 1.0, 1.0)], &[]);
    }

    #[test]
    #[should_panic(expected = "ssd fraction must be in")]
    fn partial_rejects_out_of_range() {
        let _ = Placement::partial(1.5);
    }

    #[test]
    fn placement_constructors() {
        assert!(!Placement::hdd().uses_ssd());
        assert!(Placement::ssd().uses_ssd());
        assert!(Placement::partial(0.5).uses_ssd());
    }
}
