//! TCIO: disk pressure a job exerts on HDDs, in units of one standard HDD's
//! sustainable I/O per second.
//!
//! Per the paper, the TCIO calculation reflects the *true* pressure on the
//! disks: reads served from the per-server DRAM cache never reach the disks,
//! and small writes are grouped into 1 MiB chunks before being written. We
//! model HDD service time with the classic two-term model
//! (positioning time per operation + transfer time per byte), so a job's
//! TCIO is its required disk-busy-time per second of lifetime.

use crate::rates::CostRates;
use byom_trace::ShuffleJob;

/// TCIO of a job if placed on HDD: average number of standard HDDs kept busy
/// over the job's lifetime. A TCIO of 2.0 means the job would need two HDDs.
///
/// Returns 0.0 for degenerate jobs with a non-positive lifetime.
pub fn tcio_on_hdd(job: &ShuffleJob, rates: &CostRates) -> f64 {
    if job.lifetime <= 0.0 {
        return 0.0;
    }
    let io = &job.io;

    // Reads that miss the DRAM cache reach the disks.
    let miss = (1.0 - io.dram_hit_fraction).clamp(0.0, 1.0);
    let disk_read_ops = io.read_ops as f64 * miss;
    let disk_read_bytes = io.read_bytes as f64 * miss;

    // Writes are coalesced into chunks before reaching the disks.
    let disk_write_ops = (io.written_bytes as f64 / rates.write_coalesce_bytes as f64).ceil();
    let disk_write_bytes = io.written_bytes as f64;

    // Disk busy time: positioning per operation + transfer per byte.
    let positioning_secs = (disk_read_ops + disk_write_ops) / rates.hdd_ops_per_sec;
    let transfer_secs = (disk_read_bytes + disk_write_bytes) / rates.hdd_bandwidth_bytes_per_sec;

    (positioning_secs + transfer_secs) / job.lifetime
}

#[cfg(test)]
mod tests {
    use super::*;
    use byom_trace::{IoProfile, JobFeatures, JobId};

    fn job(lifetime: f64, io: IoProfile) -> ShuffleJob {
        ShuffleJob {
            id: JobId(0),
            cluster: 0,
            arrival: 0.0,
            lifetime,
            size_bytes: 1 << 30,
            io,
            features: JobFeatures::default(),
            archetype: 0,
        }
    }

    fn rates() -> CostRates {
        CostRates::default()
    }

    #[test]
    fn zero_io_means_zero_tcio() {
        let j = job(100.0, IoProfile::default());
        assert_eq!(tcio_on_hdd(&j, &rates()), 0.0);
    }

    #[test]
    fn zero_lifetime_means_zero_tcio() {
        let j = job(
            0.0,
            IoProfile {
                read_ops: 1000,
                read_bytes: 1 << 30,
                ..Default::default()
            },
        );
        assert_eq!(tcio_on_hdd(&j, &rates()), 0.0);
    }

    #[test]
    fn dram_cache_hits_reduce_tcio() {
        let base = IoProfile {
            read_ops: 100_000,
            read_bytes: 10 << 30,
            dram_hit_fraction: 0.0,
            ..Default::default()
        };
        let cached = IoProfile {
            dram_hit_fraction: 0.5,
            ..base
        };
        let t_uncached = tcio_on_hdd(&job(1000.0, base), &rates());
        let t_cached = tcio_on_hdd(&job(1000.0, cached), &rates());
        assert!(t_cached < t_uncached);
        assert!((t_cached - t_uncached / 2.0).abs() / t_uncached < 0.05);
    }

    #[test]
    fn small_writes_are_coalesced() {
        // 1 GiB written as 1 million tiny ops should cost the same positioning
        // as 1 GiB written as 1024 x 1 MiB ops, because coalescing groups them.
        let many_small = IoProfile {
            written_bytes: 1 << 30,
            write_ops: 1_000_000,
            ..Default::default()
        };
        let few_large = IoProfile {
            written_bytes: 1 << 30,
            write_ops: 1024,
            ..Default::default()
        };
        let r = rates();
        let a = tcio_on_hdd(&job(100.0, many_small), &r);
        let b = tcio_on_hdd(&job(100.0, few_large), &r);
        assert!(
            (a - b).abs() < 1e-12,
            "coalescing should ignore raw write op count"
        );
    }

    #[test]
    fn tcio_scales_inversely_with_lifetime() {
        let io = IoProfile {
            read_ops: 10_000,
            read_bytes: 1 << 30,
            written_bytes: 1 << 30,
            ..Default::default()
        };
        let short = tcio_on_hdd(&job(100.0, io), &rates());
        let long = tcio_on_hdd(&job(1000.0, io), &rates());
        assert!((short / long - 10.0).abs() < 1e-9);
    }

    #[test]
    fn tcio_magnitude_is_sensible() {
        // 150 read ops/s of 64 KiB at zero cache hit should keep ~1 HDD busy
        // on positioning alone.
        let lifetime = 1000.0;
        let read_ops = 150_000u64;
        let io = IoProfile {
            read_ops,
            read_bytes: read_ops * 64 * 1024,
            mean_read_size: 64 * 1024,
            ..Default::default()
        };
        let t = tcio_on_hdd(&job(lifetime, io), &rates());
        assert!(t > 1.0 && t < 1.2, "tcio {t}");
    }
}
