//! TCO: the monetary cost of a job on HDD or SSD, decomposed per the paper
//! into byte, network, server, and device-specific components.

use crate::rates::CostRates;
use crate::tcio::tcio_on_hdd;
use byom_trace::ShuffleJob;
use serde::{Deserialize, Serialize};

/// A TCO value decomposed into the paper's four components.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TcoBreakdown {
    /// `cost_byte`: storing the job's footprint for its duration.
    pub byte: f64,
    /// `cost_network`: transmitting the job's bytes (device independent).
    pub network: f64,
    /// `cost_server`: server resources serving the job's I/O.
    pub server: f64,
    /// `cost_specific`: HDD devices consumed (HDD) or wear-out (SSD).
    pub device_specific: f64,
}

impl TcoBreakdown {
    /// Total TCO across the four components.
    pub fn total(&self) -> f64 {
        self.byte + self.network + self.server + self.device_specific
    }
}

/// TCO of running the job entirely on HDD.
pub fn tco_hdd(job: &ShuffleJob, rates: &CostRates) -> TcoBreakdown {
    let tcio = tcio_on_hdd(job, rates);
    let duration = job.lifetime.max(0.0);
    let total_bytes = job.io.total_bytes() as f64;
    TcoBreakdown {
        byte: rates.hdd_byte_cost_per_sec * job.size_bytes as f64 * duration,
        network: rates.network_cost_per_byte * total_bytes,
        server: rates.hdd_server_cost_per_tcio_sec * tcio * duration,
        device_specific: rates.hdd_device_cost_per_tcio_sec * tcio * duration,
    }
}

/// TCO of running the job entirely on SSD.
pub fn tco_ssd(job: &ShuffleJob, rates: &CostRates) -> TcoBreakdown {
    let duration = job.lifetime.max(0.0);
    let total_bytes = job.io.total_bytes() as f64;
    TcoBreakdown {
        byte: rates.ssd_byte_cost_per_sec * job.size_bytes as f64 * duration,
        network: rates.network_cost_per_byte * total_bytes,
        // The paper observes SSD server cost correlates with bytes transmitted.
        server: rates.ssd_server_cost_per_byte * total_bytes,
        // SSD-specific cost is wear-out, proportional to bytes written.
        device_specific: rates.ssd_wearout_cost_per_byte * job.io.written_bytes as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byom_trace::{IoProfile, JobFeatures, JobId};

    fn job(size: u64, lifetime: f64, read: u64, written: u64, read_ops: u64) -> ShuffleJob {
        ShuffleJob {
            id: JobId(0),
            cluster: 0,
            arrival: 0.0,
            lifetime,
            size_bytes: size,
            io: IoProfile {
                read_bytes: read,
                written_bytes: written,
                read_ops,
                write_ops: written / (128 * 1024),
                dram_hit_fraction: 0.1,
                mean_read_size: if read_ops > 0 {
                    read / read_ops.max(1)
                } else {
                    0
                },
            },
            features: JobFeatures::default(),
            archetype: 0,
        }
    }

    #[test]
    fn network_cost_is_device_independent() {
        let r = CostRates::default();
        let j = job(1 << 30, 1000.0, 5 << 30, 2 << 30, 80_000);
        assert!((tco_hdd(&j, &r).network - tco_ssd(&j, &r).network).abs() < 1e-18);
    }

    #[test]
    fn components_are_nonnegative_and_total_adds_up() {
        let r = CostRates::default();
        let j = job(1 << 30, 1000.0, 5 << 30, 2 << 30, 80_000);
        for b in [tco_hdd(&j, &r), tco_ssd(&j, &r)] {
            assert!(
                b.byte >= 0.0 && b.network >= 0.0 && b.server >= 0.0 && b.device_specific >= 0.0
            );
            assert!(
                (b.total() - (b.byte + b.network + b.server + b.device_specific)).abs() < 1e-18
            );
        }
    }

    #[test]
    fn io_dense_job_is_cheaper_on_ssd() {
        // Small footprint, many small reads over a modest lifetime.
        let r = CostRates::default();
        let size = 1u64 << 30; // 1 GiB
        let j = job(size, 600.0, 20 << 30, 2 << 30, 5_000_000);
        assert!(
            tco_hdd(&j, &r).total() > tco_ssd(&j, &r).total(),
            "hdd {} ssd {}",
            tco_hdd(&j, &r).total(),
            tco_ssd(&j, &r).total()
        );
    }

    #[test]
    fn large_sequential_long_lived_job_is_cheaper_on_hdd() {
        // 1 TiB footprint, read once sequentially, lives 8 hours.
        let r = CostRates::default();
        let size = 1u64 << 40;
        let j = job(size, 8.0 * 3600.0, size, size + size / 2, size / (4 << 20));
        assert!(
            tco_ssd(&j, &r).total() > tco_hdd(&j, &r).total(),
            "hdd {} ssd {}",
            tco_hdd(&j, &r).total(),
            tco_ssd(&j, &r).total()
        );
    }

    #[test]
    fn ssd_wearout_grows_with_written_bytes() {
        let r = CostRates::default();
        let a = job(1 << 30, 100.0, 0, 1 << 30, 0);
        let b = job(1 << 30, 100.0, 0, 4 << 30, 0);
        assert!(tco_ssd(&b, &r).device_specific > tco_ssd(&a, &r).device_specific);
    }

    #[test]
    fn zero_io_job_costs_only_bytes_and_nothing_on_network() {
        let r = CostRates::default();
        let j = job(1 << 30, 100.0, 0, 0, 0);
        let h = tco_hdd(&j, &r);
        assert_eq!(h.network, 0.0);
        assert_eq!(h.server, 0.0);
        assert_eq!(h.device_specific, 0.0);
        assert!(h.byte > 0.0);
    }
}
