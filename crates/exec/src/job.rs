//! The job layer: deterministic chunked map / join execution on the pool.
//!
//! A *job* is a borrow of the caller's stack (the closure, its environment,
//! and the result buffers live in the caller's frame). The pool only ever
//! sees `'static` tickets holding an `Arc<JobShared>`; the pointer back to
//! the stack frame is dereferenced only between a successful *enter* and
//! the matching *exit*, both of which happen under the job's state mutex.
//! The caller's close protocol — set `closed`, then wait until no helper is
//! active and no chunk is in flight — therefore guarantees the frame
//! outlives every dereference, even for tickets that run long after the
//! job finished (they observe `closed` and return without touching the
//! pointer).
//!
//! Determinism: chunks are claimed dynamically, but every chunk covers a
//! fixed index range and results are slotted by chunk index, so the output
//! is byte-identical to sequential execution for any pure closure — on any
//! worker count and any steal schedule.

use crate::pool;
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Upper bound on chunks per participating thread for large fan-outs, so
/// per-chunk bookkeeping stays cheap once items vastly outnumber workers.
const MAX_CHUNKS_PER_THREAD: usize = 16;

/// Adaptive chunk size for a fan-out of `len` items over `width` threads.
///
/// Small fan-outs (up to `width × MAX_CHUNKS_PER_THREAD` items) get one item
/// per chunk: a single expensive item — e.g. one huge cluster among many
/// small ones — can then never tail-block a chunk's worth of cheap siblings
/// behind it. Larger fan-outs cap the chunk count at that same bound so
/// claim-lock traffic stays proportional to the worker count, not the item
/// count. Chunk geometry is a pure function of `(len, width)` and results
/// are merged by chunk slot, so the output stays byte-identical to
/// sequential execution for any steal schedule.
fn chunk_size_for(len: usize, width: usize) -> usize {
    let max_chunks = width.saturating_mul(MAX_CHUNKS_PER_THREAD).max(1);
    len.div_ceil(max_chunks).max(1)
}

fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

struct JobState {
    /// Next unclaimed chunk; `>= chunks` means nothing left to claim.
    next_chunk: usize,
    /// Total chunks in this job.
    chunks: usize,
    /// Chunks claimed but not yet finished.
    in_flight: usize,
    /// Helpers currently inside the claim loop (may dereference the frame).
    active_helpers: usize,
    /// Set by the caller before its final wait: no helper may enter past
    /// this point, so late tickets become no-ops.
    closed: bool,
    /// First panic payload observed; claiming stops once this is set.
    panic: Option<Box<dyn Any + Send>>,
}

/// The `'static`, pool-visible half of a job.
pub(crate) struct JobShared {
    state: Mutex<JobState>,
    cv: Condvar,
    /// Address of the concrete job in the caller's frame, stored as an
    /// integer so `JobShared` stays automatically `Send + Sync`. Only
    /// dereferenced by `execute` between enter and exit (see module docs).
    frame: AtomicUsize,
    /// Monomorphized entry point that casts `frame` back to the concrete
    /// job type and runs its claim loop.
    execute: unsafe fn(usize),
}

impl JobShared {
    fn new(chunks: usize, execute: unsafe fn(usize)) -> JobShared {
        JobShared {
            state: Mutex::new(JobState {
                next_chunk: 0,
                chunks,
                in_flight: 0,
                active_helpers: 0,
                closed: false,
                panic: None,
            }),
            cv: Condvar::new(),
            frame: AtomicUsize::new(0),
            execute,
        }
    }

    /// Claim the next chunk, or `None` when the job is exhausted/cancelled.
    fn claim(&self) -> Option<usize> {
        let mut st = relock(self.state.lock());
        if st.panic.is_some() || st.next_chunk >= st.chunks {
            return None;
        }
        let chunk = st.next_chunk;
        st.next_chunk += 1;
        st.in_flight += 1;
        Some(chunk)
    }

    fn finish_chunk(&self) {
        let mut st = relock(self.state.lock());
        st.in_flight = st.in_flight.saturating_sub(1);
        drop(st);
        self.cv.notify_all();
    }

    /// Record a panic from inside a chunk and cancel all unclaimed chunks.
    fn abort(&self, payload: Box<dyn Any + Send>) {
        let mut st = relock(self.state.lock());
        if st.panic.is_none() {
            st.panic = Some(payload);
        }
        st.next_chunk = st.chunks;
        st.in_flight = st.in_flight.saturating_sub(1);
        drop(st);
        self.cv.notify_all();
    }

    /// Ticket entry point. Registers as an active helper (unless the job
    /// already closed) and only then dereferences the frame pointer.
    fn enter(&self) {
        {
            let mut st = relock(self.state.lock());
            if st.closed || st.panic.is_some() || st.next_chunk >= st.chunks {
                return;
            }
            st.active_helpers += 1;
        }
        let frame = self.frame.load(Ordering::Acquire);
        // The claim loop catches user panics per chunk; a panic escaping it
        // would be an executor bug. Catch it anyway so the exit bookkeeping
        // below always runs — a lost exit would deadlock the caller.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: we are registered as an active helper, so the caller's
            // close protocol blocks until we exit; the frame is alive.
            unsafe { (self.execute)(frame) }
        }));
        let mut st = relock(self.state.lock());
        st.active_helpers = st.active_helpers.saturating_sub(1);
        if let Err(payload) = outcome {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
            st.next_chunk = st.chunks;
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Caller-side: forbid new entries, then wait until every claimed chunk
    /// finished and every active helper left the frame.
    fn close_and_wait(&self) {
        let mut st = relock(self.state.lock());
        st.closed = true;
        while st.next_chunk < st.chunks || st.in_flight > 0 || st.active_helpers > 0 {
            st = relock(self.cv.wait(st));
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        relock(self.state.lock()).panic.take()
    }
}

/// A concrete job: claim chunks until the shared state runs dry.
trait ChunkJob: Sync {
    fn claim_loop(&self);
}

/// Monomorphized trampoline stored in [`JobShared::execute`].
///
/// # Safety
/// `frame` must be the address of a live `J` whose owner is blocked in
/// [`JobShared::close_and_wait`] until this call returns (enforced by the
/// enter/exit protocol).
unsafe fn execute_shim<J: ChunkJob>(frame: usize) {
    let job = unsafe { &*(frame as *const J) };
    job.claim_loop();
}

/// Run one helper claim-loop iteration set for `shared`, used by both the
/// caller (directly) and tickets (via [`JobShared::enter`]).
struct MapJob<'f, U, F> {
    shared: Arc<JobShared>,
    f: &'f F,
    len: usize,
    chunk_size: usize,
    /// Scope budget every participating thread inherits, so nested parallel
    /// calls inside `f` share the same configured thread budget.
    budget: usize,
    results: Mutex<Vec<(usize, Vec<U>)>>,
}

impl<U: Send, F: Fn(usize) -> U + Sync> ChunkJob for MapJob<'_, U, F> {
    fn claim_loop(&self) {
        crate::with_scope_budget(self.budget, || {
            while let Some(chunk) = self.shared.claim() {
                let start = chunk * self.chunk_size;
                let end = (start + self.chunk_size).min(self.len);
                let out = catch_unwind(AssertUnwindSafe(|| {
                    (start..end).map(self.f).collect::<Vec<U>>()
                }));
                match out {
                    Ok(values) => {
                        relock(self.results.lock()).push((chunk, values));
                        self.shared.finish_chunk();
                    }
                    Err(payload) => self.shared.abort(payload),
                }
            }
        });
    }
}

/// Execute `f(0..len)` with `width` participating threads (the caller plus
/// `width - 1` pool tickets), returning results in index order. Panics from
/// `f` are propagated to the caller after the job has fully quiesced.
pub(crate) fn run_chunked<U, F>(budget: usize, width: usize, len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    debug_assert!(width >= 2 && len >= 2);
    let chunk_size = chunk_size_for(len, width);
    let chunks = len.div_ceil(chunk_size);
    let shared = Arc::new(JobShared::new(
        chunks,
        execute_shim::<MapJob<'_, U, F>> as unsafe fn(usize),
    ));
    let job = MapJob {
        shared: Arc::clone(&shared),
        f: &f,
        len,
        chunk_size,
        budget,
        results: Mutex::new(Vec::with_capacity(chunks)),
    };
    shared
        .frame
        .store(&job as *const MapJob<'_, U, F> as usize, Ordering::Release);
    let tickets = (width - 1).min(chunks.saturating_sub(1));
    pool::global().push_tasks((0..tickets).map(|_| {
        let shared = Arc::clone(&shared);
        Box::new(move || shared.enter()) as pool::Task
    }));
    // The caller participates: it claims chunks like any helper, so a job
    // always makes progress even if every pool worker is busy elsewhere.
    job.claim_loop();
    shared.close_and_wait();
    if let Some(payload) = shared.take_panic() {
        resume_unwind(payload);
    }
    let mut slots = relock(job.results.lock());
    slots.sort_unstable_by_key(|&(chunk, _)| chunk);
    debug_assert_eq!(slots.iter().map(|(_, v)| v.len()).sum::<usize>(), len);
    let mut out = Vec::with_capacity(len);
    for (_, mut values) in slots.drain(..) {
        out.append(&mut values);
    }
    out
}

/// The `join` half-job: a single-chunk job owning closure `b`.
struct JoinJob<'s, B, RB> {
    shared: Arc<JobShared>,
    b: Mutex<Option<B>>,
    out: &'s Mutex<Option<RB>>,
    budget: usize,
}

impl<B, RB> ChunkJob for JoinJob<'_, B, RB>
where
    B: FnOnce() -> RB + Send,
    RB: Send,
{
    fn claim_loop(&self) {
        while let Some(_chunk) = self.shared.claim() {
            let Some(b) = relock(self.b.lock()).take() else {
                self.shared.finish_chunk();
                continue;
            };
            let out = catch_unwind(AssertUnwindSafe(|| {
                crate::with_scope_budget(self.budget, b)
            }));
            match out {
                Ok(value) => {
                    *relock(self.out.lock()) = Some(value);
                    self.shared.finish_chunk();
                }
                Err(payload) => self.shared.abort(payload),
            }
        }
    }
}

/// Run `a` and `b`, potentially in parallel, returning both results.
/// `b` is offered to the pool while the caller runs `a`; if no worker picks
/// it up in time, the caller runs `b` itself. Panics propagate after both
/// sides have quiesced (`a`'s panic wins if both panic).
pub(crate) fn run_join<A, B, RA, RB>(budget: usize, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let out_b: Mutex<Option<RB>> = Mutex::new(None);
    let shared = Arc::new(JobShared::new(
        1,
        execute_shim::<JoinJob<'_, B, RB>> as unsafe fn(usize),
    ));
    let job = JoinJob {
        shared: Arc::clone(&shared),
        b: Mutex::new(Some(b)),
        out: &out_b,
        budget,
    };
    shared.frame.store(
        &job as *const JoinJob<'_, B, RB> as usize,
        Ordering::Release,
    );
    pool::global().push_tasks(std::iter::once({
        let shared = Arc::clone(&shared);
        Box::new(move || shared.enter()) as pool::Task
    }));
    let result_a = catch_unwind(AssertUnwindSafe(|| crate::with_scope_budget(budget, a)));
    // If the ticket has not started, run `b` on this thread; otherwise this
    // loop claims nothing and we simply wait for the helper to finish.
    job.claim_loop();
    shared.close_and_wait();
    match (result_a, shared.take_panic()) {
        (Err(payload), _) => resume_unwind(payload),
        (_, Some(payload)) => resume_unwind(payload),
        (Ok(ra), None) => {
            let rb = relock(out_b.lock())
                .take()
                .unwrap_or_else(|| unreachable!("join quiesced without running `b`"));
            (ra, rb)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{chunk_size_for, MAX_CHUNKS_PER_THREAD};

    #[test]
    fn small_fanouts_get_one_item_per_chunk() {
        for width in 2..=8 {
            for len in 2..=width * MAX_CHUNKS_PER_THREAD {
                assert_eq!(chunk_size_for(len, width), 1, "len={len} width={width}");
            }
        }
    }

    #[test]
    fn large_fanouts_cap_the_chunk_count() {
        for &(len, width) in &[(10_000usize, 4usize), (65_537, 8), (1_000_000, 16)] {
            let size = chunk_size_for(len, width);
            let chunks = len.div_ceil(size);
            assert!(
                chunks <= width * MAX_CHUNKS_PER_THREAD,
                "len={len} width={width}"
            );
            // Still enough chunks for uneven item costs to rebalance.
            assert!(chunks > width, "len={len} width={width}");
        }
    }
}
