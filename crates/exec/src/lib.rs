//! Unified parallel executor for the BYOM workspace.
//!
//! Every parallel call site in the workspace — GBDT training, the
//! experiment harness fan-outs, the resilience sweeps, the fig binaries —
//! runs on **one** process-wide, lazily spawned work-stealing pool
//! ([`pool`]). Nested fan-outs (cluster sweep × per-class trees ×
//! feature-parallel split search) cooperate through the shared queues
//! instead of spawning `threads × threads` scoped threads.
//!
//! # Thread budget
//!
//! A single knob controls parallel width everywhere:
//!
//! * [`install`]`(n, f)` pins the budget to `n` for everything `f` does,
//!   including on pool workers executing `f`'s parallel chunks. Budgets
//!   only shrink when nested: `install(4, ..)` inside `install(2, ..)`
//!   still runs on 2.
//! * `.with_max_threads(n)` bounds one parallel call; it combines with the
//!   ambient budget the same way (`min`), and the resolved budget is
//!   inherited by everything the mapped closure runs.
//! * `BYOM_THREADS` (environment) overrides the default budget **and** the
//!   pool size for the whole process.
//! * Budget `1` means *strictly sequential at every nesting level*: the
//!   call runs inline on the caller and every nested parallel call —
//!   whatever it requests — resolves to 1 as well.
//!
//! # Determinism
//!
//! Work is split into fixed index ranges and results are slotted by chunk
//! index, so for any pure closure the output is **byte-identical** to
//! sequential execution — for any budget, worker count, or steal schedule.
//! Panics inside a closure cancel the remaining chunks and propagate to
//! the caller after the job has fully quiesced.
//!
//! # Safety
//!
//! This is the one workspace crate that is not `#![forbid(unsafe_code)]`:
//! scheduling borrowed (non-`'static`) jobs on a persistent pool requires
//! erasing the job's lifetime at the pool boundary. The two `unsafe`
//! blocks live in [`job`] and are guarded by a close protocol documented
//! there; everything above the job layer is safe code.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod job;
mod pool;

use std::cell::Cell;
use std::sync::OnceLock;

/// The traits to import to get `par_iter` / `into_par_iter`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice};
}

/// Parse the `BYOM_THREADS` override (ignored unless a positive integer).
pub(crate) fn env_thread_override() -> Option<usize> {
    std::env::var("BYOM_THREADS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
}

/// Hardware concurrency as reported by the OS.
pub(crate) fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// The default thread budget when nothing narrower is in scope:
/// `BYOM_THREADS` if set, otherwise all available cores.
fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| env_thread_override().unwrap_or_else(hardware_threads))
}

thread_local! {
    /// The thread budget pinned by the nearest enclosing [`install`] or
    /// parallel call on this thread; `0` means "no budget in scope".
    static SCOPE_BUDGET: Cell<usize> = const { Cell::new(0) };
}

/// Run `f` with `budget` pinned as this thread's scope budget, restoring
/// the previous budget afterwards (also on panic). `0` leaves the scope
/// untouched.
pub(crate) fn with_scope_budget<R>(budget: usize, f: impl FnOnce() -> R) -> R {
    if budget == 0 {
        return f();
    }
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            SCOPE_BUDGET.with(|b| b.set(self.0));
        }
    }
    let _restore = Restore(SCOPE_BUDGET.with(|b| b.get()));
    SCOPE_BUDGET.with(|b| b.set(budget));
    f()
}

/// Resolve a user-supplied parallelism knob against the ambient budget.
///
/// `0` means "inherit": the enclosing [`install`] budget if any, otherwise
/// the process default (`BYOM_THREADS` or all cores). A non-zero request
/// is capped by the enclosing budget, so budgets only shrink with nesting.
pub fn resolve_threads(requested: usize) -> usize {
    let scope = SCOPE_BUDGET.with(|b| b.get());
    match (requested, scope) {
        (0, 0) => default_threads(),
        (0, s) => s,
        (n, 0) => n,
        (n, s) => n.min(s),
    }
}

/// The thread budget in effect at this call site (see [`resolve_threads`]).
pub fn current_num_threads() -> usize {
    resolve_threads(0)
}

/// Run `f` with the thread budget pinned to `n` for everything it does —
/// direct parallel calls, nested ones, and work executed on pool workers
/// on its behalf. `n = 0` leaves the ambient budget unchanged; a non-zero
/// `n` is capped by any enclosing budget; `n = 1` forces strictly
/// sequential execution at every nesting level.
pub fn install<R>(n: usize, f: impl FnOnce() -> R) -> R {
    if n == 0 {
        return f();
    }
    with_scope_budget(resolve_threads(n), f)
}

/// Run `a` and `b`, potentially in parallel on the pool, and return both
/// results. `b` is offered to the pool while the caller runs `a`; if no
/// worker is free the caller runs `b` itself, so `join` never blocks on
/// pool availability. Under a budget of 1 both closures run sequentially
/// on the caller. Panics from either closure propagate after both sides
/// have finished.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let budget = resolve_threads(0);
    if budget <= 1 || pool_capacity() <= 1 {
        return with_scope_budget(budget.max(1), || {
            let ra = a();
            let rb = b();
            (ra, rb)
        });
    }
    job::run_join(budget, a, b)
}

/// Total execution slots in the process (pool workers + one caller). The
/// hard ceiling on any single parallel call's width.
pub fn pool_capacity() -> usize {
    pool::capacity()
}

/// Number of tasks the pool workers have executed since the pool started.
/// Telemetry for tests and benches; the value only grows.
pub fn pool_tasks_executed() -> usize {
    pool::tasks_executed()
}

/// Execute `f(0..len)` under the resolved budget for `requested`,
/// returning results in index order.
fn run_map<U, F>(requested: usize, len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let budget = resolve_threads(requested);
    let width = budget.min(len).min(pool_capacity());
    if width <= 1 || len < 2 {
        return with_scope_budget(budget.max(1), || (0..len).map(f).collect());
    }
    job::run_chunked(budget, width, len, f)
}

/// Borrowing parallel iterator over a slice (`par_iter`).
#[derive(Debug)]
pub struct ParIter<'a, T> {
    items: &'a [T],
    requested: usize,
}

/// Extension trait providing [`ParallelSlice::par_iter`] on slices and `Vec`s.
pub trait ParallelSlice<T: Sync> {
    /// A parallel iterator borrowing the elements.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter {
            items: self,
            requested: 0,
        }
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> ParIter<'_, T> {
        self.as_slice().par_iter()
    }
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Bound this call's thread budget (`1` = strictly sequential including
    /// nested calls, `0` = inherit the ambient budget).
    pub fn with_max_threads(mut self, n: usize) -> Self {
        self.requested = n;
        self
    }

    /// Map each element through `f` in parallel, preserving order.
    pub fn map<U: Send, F: Fn(&'a T) -> U + Sync>(self, f: F) -> ParMap<'a, T, F> {
        ParMap {
            items: self.items,
            requested: self.requested,
            f,
        }
    }

    /// Apply `f` to every element in parallel.
    pub fn for_each<F: Fn(&'a T) + Sync>(self, f: F) {
        let items = self.items;
        run_map(self.requested, items.len(), |i| {
            if let Some(item) = items.get(i) {
                f(item);
            }
        });
    }
}

/// The result of [`ParIter::map`], ready to collect.
#[derive(Debug)]
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    requested: usize,
    f: F,
}

impl<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync> ParMap<'a, T, F> {
    /// Execute the parallel map and collect results in input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        let items = self.items;
        let f = &self.f;
        run_map(self.requested, items.len(), |i| {
            items.get(i).map(f).unwrap_or_else(
                // Unreachable: `run_map` only produces indices `< len`.
                || unreachable!("parallel map index out of bounds"),
            )
        })
        .into_iter()
        .collect()
    }
}

/// Types convertible into an owning parallel iterator (`into_par_iter`).
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The concrete parallel iterator.
    type Iter;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange {
            start: self.start,
            end: self.end.max(self.start),
            requested: 0,
        }
    }
}

/// Owning parallel iterator over a `usize` range.
#[derive(Debug)]
pub struct ParRange {
    start: usize,
    end: usize,
    requested: usize,
}

impl ParRange {
    /// Bound this call's thread budget (`1` = strictly sequential including
    /// nested calls, `0` = inherit the ambient budget).
    pub fn with_max_threads(mut self, n: usize) -> Self {
        self.requested = n;
        self
    }

    /// Map each index through `f` in parallel, preserving order.
    pub fn map<U: Send, F: Fn(usize) -> U + Sync>(self, f: F) -> ParRangeMap<F> {
        ParRangeMap {
            start: self.start,
            end: self.end,
            requested: self.requested,
            f,
        }
    }

    /// Apply `f` to every index in parallel.
    pub fn for_each<F: Fn(usize) + Sync>(self, f: F) {
        let start = self.start;
        run_map(self.requested, self.end - start, |i| f(start + i));
    }
}

/// The result of [`ParRange::map`], ready to collect.
#[derive(Debug)]
pub struct ParRangeMap<F> {
    start: usize,
    end: usize,
    requested: usize,
    f: F,
}

impl<U: Send, F: Fn(usize) -> U + Sync> ParRangeMap<F> {
    /// Execute the parallel map and collect results in index order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        let start = self.start;
        let f = &self.f;
        run_map(self.requested, self.end - start, |i| f(start + i))
            .into_iter()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn map_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input
            .par_iter()
            .with_max_threads(4)
            .map(|&x| x * 2)
            .collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_map_matches_sequential() {
        let par: Vec<usize> = (3..97)
            .into_par_iter()
            .with_max_threads(3)
            .map(|i| i * i)
            .collect();
        let seq: Vec<usize> = (3..97).map(|i| i * i).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn one_thread_runs_inline() {
        let caller = std::thread::current().id();
        let out: Vec<bool> = (0..10)
            .into_par_iter()
            .with_max_threads(1)
            .map(|_| std::thread::current().id() == caller)
            .collect();
        assert_eq!(out, vec![true; 10]);
    }

    #[test]
    fn for_each_visits_every_element_once() {
        let count = AtomicUsize::new(0);
        let items: Vec<u8> = vec![1; 500];
        items.par_iter().with_max_threads(4).for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let out: Vec<usize> = (5..5).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn zero_means_inherited_budget() {
        let out: Vec<usize> = (0..64)
            .into_par_iter()
            .with_max_threads(0)
            .map(|i| i)
            .collect();
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn pool_workers_participate() {
        // MIN_POOL_SLOTS guarantees workers exist even on a 1-core machine;
        // the sleeps give parked workers ample time to claim chunks.
        let ids: Vec<std::thread::ThreadId> = (0..64)
            .into_par_iter()
            .with_max_threads(4)
            .map(|_| {
                std::thread::sleep(Duration::from_millis(2));
                std::thread::current().id()
            })
            .collect();
        let mut distinct: Vec<String> = ids.iter().map(|id| format!("{id:?}")).collect();
        distinct.sort();
        distinct.dedup();
        assert!(
            distinct.len() > 1,
            "expected pool workers to claim chunks alongside the caller"
        );
    }

    #[test]
    fn budget_one_is_sticky_across_nesting() {
        let caller = std::thread::current().id();
        install(1, || {
            let nested: Vec<Vec<std::thread::ThreadId>> = (0..16)
                .into_par_iter()
                .with_max_threads(4)
                .map(|_| {
                    (0..8)
                        .into_par_iter()
                        .with_max_threads(4)
                        .map(|_| std::thread::current().id())
                        .collect()
                })
                .collect();
            for inner in nested {
                for id in inner {
                    assert_eq!(id, caller, "budget 1 must be sequential at every level");
                }
            }
        });
    }

    #[test]
    fn install_caps_shrink_with_nesting() {
        assert_eq!(install(3, || resolve_threads(0)), 3);
        assert_eq!(install(3, || resolve_threads(2)), 2);
        assert_eq!(install(2, || resolve_threads(5)), 2);
        assert_eq!(install(2, || install(0, || resolve_threads(0))), 2);
        assert_eq!(install(2, || install(6, || resolve_threads(0))), 2);
        assert_eq!(install(2, || install(6, || resolve_threads(4))), 2);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn nested_maps_match_sequential() {
        let par: Vec<Vec<usize>> = (0..24)
            .into_par_iter()
            .with_max_threads(4)
            .map(|i| {
                (0..12)
                    .into_par_iter()
                    .with_max_threads(2)
                    .map(|j| i * 100 + j)
                    .collect()
            })
            .collect();
        let seq: Vec<Vec<usize>> = (0..24)
            .map(|i| (0..12).map(|j| i * 100 + j).collect())
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn panics_propagate_and_pool_survives() {
        let result = std::panic::catch_unwind(|| {
            (0..128)
                .into_par_iter()
                .with_max_threads(4)
                .map(|i| {
                    if i == 77 {
                        panic!("boom at {i}");
                    }
                    i
                })
                .collect::<Vec<usize>>()
        });
        let payload = result.expect_err("the mapped panic must reach the caller");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(message.contains("boom at 77"), "payload was: {message:?}");
        // The pool must stay fully usable after a propagated panic.
        let out: Vec<usize> = (0..100)
            .into_par_iter()
            .with_max_threads(4)
            .map(|i| i + 1)
            .collect();
        assert_eq!(out, (1..101).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = install(4, || join(|| 2 + 2, || "b".to_string()));
        assert_eq!(a, 4);
        assert_eq!(b, "b");
    }

    #[test]
    fn join_is_sequential_under_budget_one() {
        let caller = std::thread::current().id();
        let (a, b) = install(1, || {
            join(
                || std::thread::current().id(),
                || std::thread::current().id(),
            )
        });
        assert_eq!(a, caller);
        assert_eq!(b, caller);
    }

    #[test]
    fn join_propagates_panics_from_either_side() {
        let err = std::panic::catch_unwind(|| install(4, || join(|| panic!("left"), || 1)))
            .expect_err("left panic must propagate");
        assert!(err
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("left")));
        let err = std::panic::catch_unwind(|| install(4, || join(|| 1, || panic!("right"))))
            .expect_err("right panic must propagate");
        assert!(err
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("right")));
    }

    #[test]
    fn joins_nest_inside_parallel_maps() {
        let out: Vec<usize> = install(4, || {
            (0..16)
                .into_par_iter()
                .map(|i| {
                    let (a, b) = join(|| i * 2, || i * 3);
                    a + b
                })
                .collect()
        });
        assert_eq!(out, (0..16).map(|i| i * 5).collect::<Vec<_>>());
    }

    #[test]
    fn stress_many_small_maps_stay_deterministic() {
        for round in 0..50 {
            let len = 1 + (round * 7) % 40;
            let par: Vec<usize> = (0..len)
                .into_par_iter()
                .with_max_threads(1 + round % 5)
                .map(|i| i * round)
                .collect();
            let seq: Vec<usize> = (0..len).map(|i| i * round).collect();
            assert_eq!(par, seq, "round {round}");
        }
    }

    #[test]
    fn uneven_workloads_still_slot_in_order() {
        let par: Vec<usize> = (0..40)
            .into_par_iter()
            .with_max_threads(4)
            .map(|i| {
                if i % 7 == 0 {
                    std::thread::sleep(Duration::from_millis(3));
                }
                i
            })
            .collect();
        assert_eq!(par, (0..40).collect::<Vec<_>>());
    }
}
