//! The persistent work-stealing pool.
//!
//! One process-wide pool is spawned lazily on first parallel call. Each
//! worker owns a deque of tasks; tasks pushed by a worker go to its own
//! deque (back), tasks pushed by external threads go to a shared injector.
//! An idle worker pops its own deque LIFO, then the injector FIFO, then
//! steals **half** of the first non-empty victim deque it finds. Workers
//! with nothing to do park on a condvar and are woken by pushes.
//!
//! The pool schedules opaque tickets; it knows nothing about jobs, results,
//! or ordering. Determinism is the job layer's responsibility (results are
//! slotted by index there), so *any* steal schedule produces identical
//! output.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// An opaque unit of work. Tickets are always safe to run late or never —
/// the job layer's close protocol neutralizes tickets whose job has already
/// completed, so a ticket stranded in a deque is a cheap no-op.
pub(crate) type Task = Box<dyn FnOnce() + Send + 'static>;

/// Even on single-core machines the pool keeps this many execution slots
/// (workers + the calling thread), so explicit `with_max_threads(n)`
/// requests behave like real parallelism everywhere and the scheduling
/// machinery is exercised by tests on any hardware. Results never depend on
/// the worker count.
const MIN_POOL_SLOTS: usize = 4;

thread_local! {
    /// Index of the pool worker running on this thread, if any.
    static WORKER_INDEX: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
}

/// Recover a mutex guard even if a task panicked while holding the lock.
/// All pool state stays consistent under panics: the job layer records the
/// payload and the protocol counters are adjusted before unwinding.
fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

struct Shared {
    /// Per-worker deques. Owners pop the back; thieves drain the front.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Queue for tasks pushed by threads outside the pool.
    injector: Mutex<VecDeque<Task>>,
    /// Wake epoch: bumped (under the lock) on every push, so a worker that
    /// re-checked the queues under this lock can never miss a wake-up.
    sleep: Mutex<u64>,
    wake: Condvar,
    /// Tasks executed since the pool started (telemetry for tests/benches).
    executed: AtomicUsize,
}

/// The persistent pool: `workers` threads plus any number of calling
/// threads cooperating through the queues.
pub(crate) struct Pool {
    shared: Arc<Shared>,
    workers: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// The process-wide pool, spawned on first use.
pub(crate) fn global() -> &'static Pool {
    POOL.get_or_init(Pool::start)
}

/// Total execution slots: pool workers plus the calling thread. This is the
/// hard ceiling on any single job's parallel width.
pub(crate) fn capacity() -> usize {
    global().workers + 1
}

/// Number of tasks the pool has executed since start (test/bench telemetry).
pub(crate) fn tasks_executed() -> usize {
    global().shared.executed.load(Ordering::Relaxed)
}

impl Pool {
    fn start() -> Pool {
        let slots = crate::env_thread_override()
            .unwrap_or_else(|| crate::hardware_threads().max(MIN_POOL_SLOTS));
        let workers = slots.saturating_sub(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            sleep: Mutex::new(0),
            wake: Condvar::new(),
            executed: AtomicUsize::new(0),
        });
        let mut spawned = 0usize;
        for index in 0..workers {
            let shared = Arc::clone(&shared);
            let spawn = std::thread::Builder::new()
                .name(format!("byom-exec-{index}"))
                .spawn(move || worker_loop(&shared, index));
            if spawn.is_ok() {
                spawned += 1;
            } else {
                // Thread exhaustion: run with however many workers came up;
                // queued tickets are still drained by the survivors and the
                // calling threads, so jobs complete either way.
                break;
            }
        }
        Pool {
            shared,
            workers: spawned,
        }
    }

    /// Enqueue tasks and wake sleeping workers. Tasks pushed from a pool
    /// worker land on its own deque (depth-first locality); external pushes
    /// go through the injector.
    pub(crate) fn push_tasks(&self, tasks: impl IntoIterator<Item = Task>) {
        let own = WORKER_INDEX.with(|w| w.get());
        match own.and_then(|i| self.shared.queues.get(i)) {
            Some(queue) => {
                let mut q = relock(queue.lock());
                q.extend(tasks);
            }
            None => {
                let mut q = relock(self.shared.injector.lock());
                q.extend(tasks);
            }
        }
        let mut epoch = relock(self.shared.sleep.lock());
        *epoch = epoch.wrapping_add(1);
        drop(epoch);
        self.shared.wake.notify_all();
    }
}

/// One attempt to find a task: own deque (LIFO), injector (FIFO), then
/// steal half of the first non-empty victim deque.
fn find_task(shared: &Shared, index: usize) -> Option<Task> {
    if let Some(queue) = shared.queues.get(index) {
        if let Some(task) = relock(queue.lock()).pop_back() {
            return Some(task);
        }
    }
    if let Some(task) = relock(shared.injector.lock()).pop_front() {
        return Some(task);
    }
    steal_half(shared, index)
}

/// Steal the older half of the first non-empty victim deque, keeping one
/// task to run now and parking the rest on our own deque (where other
/// thieves can re-steal them).
fn steal_half(shared: &Shared, index: usize) -> Option<Task> {
    let n = shared.queues.len();
    for offset in 1..n.max(1) {
        let victim = (index + offset) % n.max(1);
        if victim == index {
            continue;
        }
        let Some(queue) = shared.queues.get(victim) else {
            continue;
        };
        let mut stolen: VecDeque<Task> = {
            let mut q = relock(queue.lock());
            if q.is_empty() {
                continue;
            }
            let take = q.len().div_ceil(2);
            q.drain(..take).collect()
        };
        let first = stolen.pop_front();
        if !stolen.is_empty() {
            if let Some(own) = shared.queues.get(index) {
                relock(own.lock()).extend(stolen);
            }
        }
        if first.is_some() {
            return first;
        }
    }
    None
}

fn has_work(shared: &Shared) -> bool {
    if !relock(shared.injector.lock()).is_empty() {
        return true;
    }
    shared.queues.iter().any(|q| !relock(q.lock()).is_empty())
}

fn worker_loop(shared: &Shared, index: usize) {
    WORKER_INDEX.with(|w| w.set(Some(index)));
    loop {
        if let Some(task) = find_task(shared, index) {
            // A ticket that panics is a bug in the job layer (user panics
            // are caught per-chunk there), but the worker must survive it:
            // a dead worker would strand queued tickets forever.
            let _ = catch_unwind(AssertUnwindSafe(task));
            shared.executed.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        // Sleep protocol: pushes bump the epoch under `sleep` *after*
        // enqueueing, so re-checking the queues while holding the lock and
        // then waiting for an epoch change can never miss a wake-up.
        let epoch_guard = relock(shared.sleep.lock());
        if has_work(shared) {
            continue;
        }
        let epoch = *epoch_guard;
        let _woken = relock(shared.wake.wait_while(epoch_guard, |e| *e == epoch));
    }
}
