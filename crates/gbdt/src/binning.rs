//! Quantile binning of feature values for histogram-based split finding.
//!
//! Each feature is discretized into at most `max_bins` bins whose edges are
//! (approximate) quantiles of the training distribution. Trees then find
//! splits by scanning bin histograms of gradient statistics instead of
//! sorting raw values, which is the standard approach in modern GBDT
//! implementations (LightGBM, XGBoost `hist`, YDF).

use crate::dataset::Dataset;
use crate::histogram::BinnedMatrix;
use serde::{Deserialize, Serialize};

/// Maps raw feature values to discrete bin indices per feature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinMapper {
    /// `edges[f]` holds the upper edges of feature `f`'s bins (sorted,
    /// exclusive of the last bin which is unbounded above).
    edges: Vec<Vec<f64>>,
    max_bins: usize,
}

impl BinMapper {
    /// Fit bin edges on a training dataset.
    ///
    /// # Panics
    /// Panics if `max_bins < 2`.
    pub fn fit(data: &Dataset, max_bins: usize) -> Self {
        assert!(max_bins >= 2, "need at least 2 bins");
        let n = data.len();
        let mut edges = Vec::with_capacity(data.num_features());
        // One sort scratch reused across features: `clear` keeps the
        // allocation, so fitting F features costs one buffer, not F.
        let mut col: Vec<f64> = Vec::with_capacity(n);
        for f in 0..data.num_features() {
            col.clear();
            col.extend((0..n).map(|i| data.value(i, f)));
            col.sort_by(|a, b| a.total_cmp(b));
            col.dedup();
            let feature_edges = if col.len() <= max_bins {
                // Each distinct value gets its own bin; edges are midpoints.
                col.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect()
            } else {
                // Quantile edges.
                let mut e = Vec::with_capacity(max_bins - 1);
                for k in 1..max_bins {
                    let idx = k * (col.len() - 1) / max_bins;
                    let v = (col[idx] + col[(idx + 1).min(col.len() - 1)]) / 2.0;
                    if e.last().is_none_or(|&last| v > last) {
                        e.push(v);
                    }
                }
                e
            };
            edges.push(feature_edges);
        }
        BinMapper { edges, max_bins }
    }

    /// Number of features this mapper was fitted on.
    pub fn num_features(&self) -> usize {
        self.edges.len()
    }

    /// Number of bins used for feature `f` (edges + 1).
    pub fn num_bins(&self, f: usize) -> usize {
        self.edges[f].len() + 1
    }

    /// The configured maximum number of bins per feature.
    pub fn max_bins(&self) -> usize {
        self.max_bins
    }

    /// The upper-edge value separating bin `b` from bin `b+1` of feature `f`.
    /// Used by trees to store real-valued thresholds.
    ///
    /// # Panics
    /// Panics if `b` is not a valid edge index for feature `f`.
    pub fn edge(&self, f: usize, b: usize) -> f64 {
        self.edges[f][b]
    }

    /// Bin index of value `v` for feature `f`.
    pub fn bin(&self, f: usize, v: f64) -> usize {
        let e = &self.edges[f];
        // partition_point returns the count of edges <= v ... we want first
        // edge >= v; values equal to an edge go left (bin of that edge).
        e.partition_point(|&edge| edge < v)
    }

    /// Pre-bin an entire dataset into a column-major [`BinnedMatrix`] of
    /// bin indices (`u16`, so up to 65k bins per feature). Per-feature
    /// histogram fills then walk one contiguous column instead of striding
    /// across every row.
    pub fn bin_dataset(&self, data: &Dataset) -> BinnedMatrix {
        BinnedMatrix::from_dataset(self, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(col: Vec<f64>) -> Dataset {
        let labels = vec![0; col.len()];
        Dataset::from_rows(col.into_iter().map(|v| vec![v]).collect(), labels).unwrap()
    }

    #[test]
    fn few_distinct_values_get_exact_bins() {
        let d = dataset(vec![1.0, 1.0, 2.0, 2.0, 3.0]);
        let m = BinMapper::fit(&d, 256);
        assert_eq!(m.num_bins(0), 3);
        assert_eq!(m.bin(0, 1.0), 0);
        assert_eq!(m.bin(0, 2.0), 1);
        assert_eq!(m.bin(0, 3.0), 2);
        assert_eq!(m.bin(0, 0.0), 0);
        assert_eq!(m.bin(0, 99.0), 2);
    }

    #[test]
    fn many_values_respect_max_bins() {
        let d = dataset((0..10_000).map(|i| i as f64).collect());
        let m = BinMapper::fit(&d, 16);
        assert!(m.num_bins(0) <= 16);
        assert!(m.num_bins(0) >= 8);
        // Bins are monotone in the value.
        let mut last = 0;
        for v in (0..10_000).step_by(97) {
            let b = m.bin(0, v as f64);
            assert!(b >= last);
            last = b;
        }
    }

    #[test]
    fn constant_feature_gets_single_bin() {
        let d = dataset(vec![5.0; 100]);
        let m = BinMapper::fit(&d, 32);
        assert_eq!(m.num_bins(0), 1);
        assert_eq!(m.bin(0, 5.0), 0);
        assert_eq!(m.bin(0, -1.0), 0);
    }

    #[test]
    fn bin_dataset_shape_and_bounds() {
        let d = Dataset::from_rows(
            (0..50)
                .map(|i| vec![i as f64, (i * 7 % 13) as f64])
                .collect(),
            vec![0; 50],
        )
        .unwrap();
        let m = BinMapper::fit(&d, 8);
        let binned = m.bin_dataset(&d);
        assert_eq!(binned.num_rows(), 50);
        assert_eq!(binned.num_features(), 2);
        for i in 0..50 {
            for f in 0..2 {
                assert!((binned.bin(i, f) as usize) < m.num_bins(f));
                assert_eq!(binned.bin(i, f) as usize, m.bin(f, d.value(i, f)));
            }
        }
    }

    #[test]
    fn edges_are_strictly_increasing() {
        let d = dataset((0..1000).map(|i| (i % 37) as f64).collect());
        let m = BinMapper::fit(&d, 16);
        for b in 1..m.num_bins(0) - 1 {
            assert!(m.edge(0, b) > m.edge(0, b - 1));
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 bins")]
    fn rejects_one_bin() {
        let d = dataset(vec![1.0, 2.0]);
        let _ = BinMapper::fit(&d, 1);
    }
}
