//! Dense in-memory dataset used for training and evaluation.

use crate::error::GbdtError;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense, row-major dataset of numeric features with integer class labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    values: Vec<f64>,
    labels: Vec<usize>,
    num_features: usize,
}

impl Dataset {
    /// Build a dataset from feature rows and labels.
    ///
    /// # Errors
    /// Returns an error if the dataset is empty, rows are ragged, lengths
    /// mismatch, or any feature value is non-finite.
    pub fn from_rows(rows: Vec<Vec<f64>>, labels: Vec<usize>) -> Result<Self, GbdtError> {
        if rows.is_empty() {
            return Err(GbdtError::EmptyDataset);
        }
        if rows.len() != labels.len() {
            return Err(GbdtError::LengthMismatch {
                rows: rows.len(),
                labels: labels.len(),
            });
        }
        let num_features = rows[0].len();
        if num_features == 0 {
            return Err(GbdtError::EmptyDataset);
        }
        let mut values = Vec::with_capacity(rows.len() * num_features);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != num_features {
                return Err(GbdtError::RaggedRows {
                    expected: num_features,
                    found: row.len(),
                });
            }
            for (j, &v) in row.iter().enumerate() {
                if !v.is_finite() {
                    return Err(GbdtError::NonFiniteFeature { row: i, column: j });
                }
                values.push(v);
            }
        }
        Ok(Dataset {
            values,
            labels,
            num_features,
        })
    }

    /// Number of rows (examples).
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features per row.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// The labels, one per row.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The feature row at index `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.values[i * self.num_features..(i + 1) * self.num_features]
    }

    /// Value of feature `j` for row `i`.
    ///
    /// # Panics
    /// Panics if indices are out of range.
    pub fn value(&self, i: usize, j: usize) -> f64 {
        assert!(j < self.num_features, "feature index out of range");
        self.values[i * self.num_features + j]
    }

    /// Largest label value plus one (a lower bound on the number of classes).
    pub fn max_label_plus_one(&self) -> usize {
        self.labels.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Validate that every label is below `num_classes`.
    ///
    /// # Errors
    /// Returns [`GbdtError::LabelOutOfRange`] for the first offending label.
    pub fn check_labels(&self, num_classes: usize) -> Result<(), GbdtError> {
        for &l in &self.labels {
            if l >= num_classes {
                return Err(GbdtError::LabelOutOfRange {
                    label: l,
                    num_classes,
                });
            }
        }
        Ok(())
    }

    /// Split the dataset into a training and validation set, shuffling rows
    /// with the provided RNG. `valid_fraction` of rows go to the second set.
    ///
    /// # Panics
    /// Panics if `valid_fraction` is not in `[0, 1)`.
    pub fn split<R: Rng + ?Sized>(&self, rng: &mut R, valid_fraction: f64) -> (Dataset, Dataset) {
        assert!(
            (0.0..1.0).contains(&valid_fraction),
            "valid_fraction must be in [0,1)"
        );
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        let n_valid = (self.len() as f64 * valid_fraction).round() as usize;
        let (valid_idx, train_idx) = idx.split_at(n_valid.min(self.len().saturating_sub(1)));
        (self.subset(train_idx), self.subset(valid_idx))
    }

    /// Extract the subset of rows at the given indices, in order.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut values = Vec::with_capacity(indices.len() * self.num_features);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            values.extend_from_slice(self.row(i));
            labels.push(self.labels[i]);
        }
        Dataset {
            values,
            labels,
            num_features: self.num_features,
        }
    }

    /// Iterate over `(row, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], usize)> + '_ {
        (0..self.len()).map(move |i| (self.row(i), self.labels[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small() -> Dataset {
        Dataset::from_rows(
            vec![
                vec![1.0, 2.0],
                vec![3.0, 4.0],
                vec![5.0, 6.0],
                vec![7.0, 8.0],
            ],
            vec![0, 1, 0, 1],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let d = small();
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert_eq!(d.num_features(), 2);
        assert_eq!(d.row(1), &[3.0, 4.0]);
        assert_eq!(d.value(2, 1), 6.0);
        assert_eq!(d.labels(), &[0, 1, 0, 1]);
        assert_eq!(d.max_label_plus_one(), 2);
        assert_eq!(d.iter().count(), 4);
    }

    #[test]
    fn rejects_empty_ragged_mismatched_nonfinite() {
        assert_eq!(
            Dataset::from_rows(vec![], vec![]).unwrap_err(),
            GbdtError::EmptyDataset
        );
        assert!(matches!(
            Dataset::from_rows(vec![vec![1.0], vec![1.0, 2.0]], vec![0, 0]).unwrap_err(),
            GbdtError::RaggedRows { .. }
        ));
        assert!(matches!(
            Dataset::from_rows(vec![vec![1.0]], vec![0, 1]).unwrap_err(),
            GbdtError::LengthMismatch { .. }
        ));
        assert!(matches!(
            Dataset::from_rows(vec![vec![f64::NAN]], vec![0]).unwrap_err(),
            GbdtError::NonFiniteFeature { row: 0, column: 0 }
        ));
        assert!(matches!(
            Dataset::from_rows(vec![vec![]], vec![0]).unwrap_err(),
            GbdtError::EmptyDataset
        ));
    }

    #[test]
    fn check_labels_bounds() {
        let d = small();
        assert!(d.check_labels(2).is_ok());
        assert!(matches!(
            d.check_labels(1).unwrap_err(),
            GbdtError::LabelOutOfRange {
                label: 1,
                num_classes: 1
            }
        ));
    }

    #[test]
    fn subset_preserves_rows() {
        let d = small();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0), &[5.0, 6.0]);
        assert_eq!(s.row(1), &[1.0, 2.0]);
        assert_eq!(s.labels(), &[0, 0]);
    }

    #[test]
    fn split_partitions_all_rows() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..100).map(|i| i % 3).collect();
        let d = Dataset::from_rows(rows, labels).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let (train, valid) = d.split(&mut rng, 0.2);
        assert_eq!(train.len() + valid.len(), 100);
        assert_eq!(valid.len(), 20);
    }

    #[test]
    #[should_panic(expected = "valid_fraction")]
    fn split_rejects_bad_fraction() {
        let d = small();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = d.split(&mut rng, 1.0);
    }

    #[test]
    fn serde_round_trip() {
        let d = small();
        let s = serde_json::to_string(&d).unwrap();
        let back: Dataset = serde_json::from_str(&s).unwrap();
        assert_eq!(d, back);
    }
}
