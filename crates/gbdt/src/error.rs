//! Error type for dataset construction and model training.

use std::error::Error;
use std::fmt;

/// Errors returned by dataset construction and GBDT training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GbdtError {
    /// The dataset is empty or otherwise unusable.
    EmptyDataset,
    /// Feature rows have inconsistent lengths.
    RaggedRows {
        /// Expected row length (from the first row).
        expected: usize,
        /// Offending row length.
        found: usize,
    },
    /// A label is outside `[0, num_classes)`.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// The number of classes.
        num_classes: usize,
    },
    /// Labels and feature rows have different lengths.
    LengthMismatch {
        /// Number of feature rows.
        rows: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A feature value is NaN or infinite.
    NonFiniteFeature {
        /// Row index of the offending value.
        row: usize,
        /// Column index of the offending value.
        column: usize,
    },
    /// Invalid hyperparameters.
    InvalidParams(String),
    /// A prediction row has fewer features than the model was trained on.
    FeatureCountMismatch {
        /// Features the model expects.
        expected: usize,
        /// Features the row provides.
        found: usize,
    },
}

impl fmt::Display for GbdtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GbdtError::EmptyDataset => write!(f, "dataset contains no rows"),
            GbdtError::RaggedRows { expected, found } => {
                write!(
                    f,
                    "feature rows have inconsistent lengths: expected {expected}, found {found}"
                )
            }
            GbdtError::LabelOutOfRange { label, num_classes } => {
                write!(f, "label {label} is outside [0, {num_classes})")
            }
            GbdtError::LengthMismatch { rows, labels } => {
                write!(f, "{rows} feature rows but {labels} labels")
            }
            GbdtError::NonFiniteFeature { row, column } => {
                write!(f, "non-finite feature value at row {row}, column {column}")
            }
            GbdtError::InvalidParams(msg) => write!(f, "invalid parameters: {msg}"),
            GbdtError::FeatureCountMismatch { expected, found } => {
                write!(f, "row has {found} features, model needs {expected}")
            }
        }
    }
}

impl Error for GbdtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(GbdtError::EmptyDataset.to_string().contains("no rows"));
        assert!(GbdtError::RaggedRows {
            expected: 3,
            found: 2
        }
        .to_string()
        .contains("inconsistent"));
        assert!(GbdtError::LabelOutOfRange {
            label: 9,
            num_classes: 5
        }
        .to_string()
        .contains('9'));
        assert!(GbdtError::LengthMismatch { rows: 1, labels: 2 }
            .to_string()
            .contains("labels"));
        assert!(GbdtError::NonFiniteFeature { row: 0, column: 1 }
            .to_string()
            .contains("non-finite"));
        assert!(GbdtError::InvalidParams("x".into())
            .to_string()
            .contains('x'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GbdtError>();
    }
}
