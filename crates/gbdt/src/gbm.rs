//! Gradient boosted trees with a softmax multiclass objective.

use crate::binning::BinMapper;
use crate::dataset::Dataset;
use crate::error::GbdtError;
use crate::metrics::log_loss;
use crate::tree::{Tree, TreeParams};
use byom_exec::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hyperparameters of the boosted ensemble.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbdtParams {
    /// Number of output classes (the paper's category count, e.g. 15).
    pub num_classes: usize,
    /// Maximum number of boosting rounds; each round fits one tree per class.
    /// The paper caps this at 300.
    pub num_trees: usize,
    /// Shrinkage applied to every tree's output.
    pub learning_rate: f64,
    /// Per-tree parameters (depth, regularization, ...).
    pub tree: TreeParams,
    /// Maximum number of histogram bins per feature.
    pub max_bins: usize,
    /// Fraction of rows sampled (without replacement) per boosting round.
    pub subsample: f64,
    /// Stop if the validation loss has not improved for this many rounds
    /// (requires a validation set to be passed to `train`).
    pub early_stopping_rounds: Option<usize>,
    /// RNG seed for row subsampling.
    pub seed: u64,
    /// Worker threads for training: the per-class trees of each boosting
    /// round are fitted concurrently, and large nodes search their split
    /// candidates feature-parallel. `0` means "all available cores" and `1`
    /// recovers the fully sequential behavior. Any value produces
    /// **bit-identical** models — parallelism never changes the result.
    pub parallelism: usize,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            num_classes: 2,
            num_trees: 100,
            learning_rate: 0.1,
            tree: TreeParams::default(),
            max_bins: 64,
            subsample: 0.8,
            early_stopping_rounds: Some(15),
            seed: 42,
            parallelism: 0,
        }
    }
}

impl GbdtParams {
    /// The configuration the paper uses for its category models: 15 classes,
    /// up to 300 trees, depth 6.
    pub fn paper_default(num_classes: usize) -> Self {
        GbdtParams {
            num_classes,
            num_trees: 300,
            learning_rate: 0.1,
            tree: TreeParams {
                max_depth: 6,
                ..TreeParams::default()
            },
            ..Default::default()
        }
    }

    fn validate(&self) -> Result<(), GbdtError> {
        if self.num_classes < 2 {
            return Err(GbdtError::InvalidParams(format!(
                "num_classes must be >= 2, got {}",
                self.num_classes
            )));
        }
        if self.num_trees == 0 {
            return Err(GbdtError::InvalidParams(
                "num_trees must be positive".into(),
            ));
        }
        if !(self.learning_rate > 0.0 && self.learning_rate <= 1.0) {
            return Err(GbdtError::InvalidParams(format!(
                "learning_rate must be in (0, 1], got {}",
                self.learning_rate
            )));
        }
        if !(self.subsample > 0.0 && self.subsample <= 1.0) {
            return Err(GbdtError::InvalidParams(format!(
                "subsample must be in (0, 1], got {}",
                self.subsample
            )));
        }
        if self.max_bins < 2 {
            return Err(GbdtError::InvalidParams("max_bins must be >= 2".into()));
        }
        Ok(())
    }
}

/// Summary of one training run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TrainReport {
    /// Number of boosting rounds actually kept in the model.
    pub rounds: usize,
    /// Training log loss after each round.
    pub train_loss: Vec<f64>,
    /// Validation log loss after each round (empty without a validation set).
    pub valid_loss: Vec<f64>,
    /// The round with the best validation loss (0-based), if validation was used.
    pub best_round: Option<usize>,
}

/// A trained gradient-boosted multiclass model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientBoostedTrees {
    num_classes: usize,
    num_features: usize,
    learning_rate: f64,
    /// Log-prior initial score per class.
    base_scores: Vec<f64>,
    /// `trees[round][class]`.
    trees: Vec<Vec<Tree>>,
    /// Training report retained for analysis.
    report: TrainReport,
}

impl GradientBoostedTrees {
    /// Train a model on `train`, optionally early-stopping on `valid`.
    ///
    /// # Errors
    /// Returns an error for invalid parameters, empty datasets, or labels
    /// outside `[0, num_classes)`.
    pub fn train(
        params: &GbdtParams,
        train: &Dataset,
        valid: Option<&Dataset>,
    ) -> Result<Self, GbdtError> {
        params.validate()?;
        if train.is_empty() {
            return Err(GbdtError::EmptyDataset);
        }
        train.check_labels(params.num_classes)?;
        if let Some(v) = valid {
            v.check_labels(params.num_classes)?;
        }

        let n = train.len();
        let k = params.num_classes;
        let mapper = BinMapper::fit(train, params.max_bins);
        let binned = mapper.bin_dataset(train);
        let mut rng = StdRng::seed_from_u64(params.seed);

        // Class priors -> initial log scores.
        let mut counts = vec![1.0f64; k]; // Laplace smoothing
        for &l in train.labels() {
            counts[l] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        let base_scores: Vec<f64> = counts.iter().map(|c| (c / total).ln()).collect();

        // Raw scores per row per class.
        let mut scores = vec![0.0f64; n * k];
        for row in scores.chunks_mut(k) {
            row.copy_from_slice(&base_scores);
        }
        let mut valid_scores: Vec<f64> = valid
            .map(|v| {
                let mut s = vec![0.0; v.len() * k];
                for row in s.chunks_mut(k) {
                    row.copy_from_slice(&base_scores);
                }
                s
            })
            .unwrap_or_default();

        let mut model = GradientBoostedTrees {
            num_classes: k,
            num_features: train.num_features(),
            learning_rate: params.learning_rate,
            base_scores,
            trees: Vec::new(),
            report: TrainReport::default(),
        };

        let mut best_valid = f64::INFINITY;
        let mut best_round = 0usize;
        let mut rounds_since_best = 0usize;

        let mut all_rows: Vec<usize> = (0..n).collect();
        let sample_size = ((n as f64 * params.subsample).round() as usize).clamp(1, n);

        for round in 0..params.num_trees {
            // Softmax probabilities and gradients.
            let probs = softmax_rows(&scores, k);

            all_rows.shuffle(&mut rng);
            let sample = &all_rows[..sample_size];

            // Fit one tree per class and pre-compute its score contributions.
            // The per-class trees of one round are independent (their
            // gradients all derive from the probabilities computed at the
            // start of the round, and their score updates touch disjoint
            // class columns), so classes fan out on the shared pool under
            // `params.parallelism`; the per-feature split search inside each
            // tree inherits the same budget and cooperates through
            // work-stealing instead of claiming its own thread quota. The
            // schedule is bit-identical to sequential because each class's
            // work is a pure function of the round-start probabilities.
            let fitted: Vec<(Tree, Vec<f64>, Vec<f64>)> = (0..k)
                .into_par_iter()
                .with_max_threads(params.parallelism)
                .map(|class| {
                    let mut grad = vec![0.0f64; n];
                    let mut hess = vec![0.0f64; n];
                    for i in 0..n {
                        let p = probs[i * k + class];
                        let y = if train.labels()[i] == class { 1.0 } else { 0.0 };
                        grad[i] = p - y;
                        hess[i] = (p * (1.0 - p)).max(1e-6);
                    }
                    // `fit_scored` also harvests every training row's leaf
                    // value from the partition the fit computes anyway, so
                    // the training-score update below is one add per row
                    // with no tree walk — bit-identical to re-traversing.
                    let fit = Tree::fit_scored(
                        &binned,
                        &mapper,
                        &grad,
                        &hess,
                        sample,
                        params.tree,
                        // Inherit this fan-out's budget (0 = ambient): nested
                        // histogram fills share the round's thread quota.
                        0,
                    );
                    let valid_preds: Vec<f64> = valid
                        .map(|v| {
                            (0..v.len())
                                .map(|i| fit.tree.predict_row(v.row(i)))
                                .collect()
                        })
                        .unwrap_or_default();
                    (fit.tree, fit.row_values, valid_preds)
                })
                .collect();

            let mut round_trees = Vec::with_capacity(k);
            for (class, (tree, train_preds, valid_preds)) in fitted.into_iter().enumerate() {
                // Update raw scores for all rows.
                for (i, p) in train_preds.into_iter().enumerate() {
                    scores[i * k + class] += params.learning_rate * p;
                }
                for (i, p) in valid_preds.into_iter().enumerate() {
                    valid_scores[i * k + class] += params.learning_rate * p;
                }
                round_trees.push(tree);
            }
            model.trees.push(round_trees);

            let train_probs = softmax_rows(&scores, k);
            model
                .report
                .train_loss
                .push(log_loss(&to_rows(&train_probs, k), train.labels()));

            if let Some(v) = valid {
                let vp = softmax_rows(&valid_scores, k);
                let vl = log_loss(&to_rows(&vp, k), v.labels());
                model.report.valid_loss.push(vl);
                if vl < best_valid - 1e-9 {
                    best_valid = vl;
                    best_round = round;
                    rounds_since_best = 0;
                } else {
                    rounds_since_best += 1;
                }
                if let Some(patience) = params.early_stopping_rounds {
                    if rounds_since_best >= patience {
                        break;
                    }
                }
            }
        }

        if valid.is_some() {
            // Keep only the trees up to the best validation round.
            model.trees.truncate(best_round + 1);
            model.report.best_round = Some(best_round);
        }
        model.report.rounds = model.trees.len();
        Ok(model)
    }

    /// Raw (pre-softmax) scores for one feature row.
    ///
    /// # Panics
    /// Panics if `row` has fewer features than the model was trained on; use
    /// [`GradientBoostedTrees::try_predict_raw`] to get an error instead.
    pub fn predict_raw(&self, row: &[f64]) -> Vec<f64> {
        assert!(
            row.len() >= self.num_features,
            "row has {} features, model needs {}",
            row.len(),
            self.num_features
        );
        self.raw_scores(row)
    }

    /// Raw (pre-softmax) scores for one feature row, checked.
    ///
    /// # Errors
    /// Returns [`GbdtError::FeatureCountMismatch`] if `row` is shorter than
    /// the model's feature dimension.
    pub fn try_predict_raw(&self, row: &[f64]) -> Result<Vec<f64>, GbdtError> {
        if row.len() < self.num_features {
            return Err(GbdtError::FeatureCountMismatch {
                expected: self.num_features,
                found: row.len(),
            });
        }
        Ok(self.raw_scores(row))
    }

    fn raw_scores(&self, row: &[f64]) -> Vec<f64> {
        let mut scores = self.base_scores.clone();
        for round in &self.trees {
            for (class, tree) in round.iter().enumerate() {
                scores[class] += self.learning_rate * tree.predict_row(row);
            }
        }
        scores
    }

    /// Class probability distribution for one feature row.
    pub fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
        let raw = self.predict_raw(row);
        softmax(&raw)
    }

    /// Class probability distribution for one feature row, checked.
    ///
    /// # Errors
    /// Returns [`GbdtError::FeatureCountMismatch`] on a short row.
    pub fn try_predict_proba(&self, row: &[f64]) -> Result<Vec<f64>, GbdtError> {
        Ok(softmax(&self.try_predict_raw(row)?))
    }

    /// Most likely class for one feature row.
    pub fn predict(&self, row: &[f64]) -> usize {
        let p = self.predict_raw(row);
        argmax(&p)
    }

    /// Most likely class for one feature row, checked.
    ///
    /// # Errors
    /// Returns [`GbdtError::FeatureCountMismatch`] on a short row.
    pub fn try_predict(&self, row: &[f64]) -> Result<usize, GbdtError> {
        Ok(argmax(&self.try_predict_raw(row)?))
    }

    /// Predicted classes for a whole dataset.
    pub fn predict_dataset(&self, data: &Dataset) -> Vec<usize> {
        (0..data.len()).map(|i| self.predict(data.row(i))).collect()
    }

    /// Predicted probability rows for a whole dataset.
    pub fn predict_proba_dataset(&self, data: &Dataset) -> Vec<Vec<f64>> {
        (0..data.len())
            .map(|i| self.predict_proba(data.row(i)))
            .collect()
    }

    /// Number of boosting rounds in the final model.
    pub fn num_rounds(&self) -> usize {
        self.trees.len()
    }

    /// Total number of trees (rounds × classes).
    pub fn num_trees(&self) -> usize {
        self.trees.iter().map(|r| r.len()).sum()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of input features.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// The training report (loss curves, rounds, best round).
    pub fn report(&self) -> &TrainReport {
        &self.report
    }

    /// The trees, indexed as `[round][class]`.
    pub fn trees(&self) -> &[Vec<Tree>] {
        &self.trees
    }
}

fn softmax(raw: &[f64]) -> Vec<f64> {
    let max = raw.iter().cloned().fold(f64::MIN, f64::max);
    let exps: Vec<f64> = raw.iter().map(|&x| (x - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

fn softmax_rows(scores: &[f64], k: usize) -> Vec<f64> {
    let mut out = vec![0.0; scores.len()];
    for (row_in, row_out) in scores.chunks(k).zip(out.chunks_mut(k)) {
        row_out.copy_from_slice(&softmax(row_in));
    }
    out
}

fn to_rows(flat: &[f64], k: usize) -> Vec<Vec<f64>> {
    flat.chunks(k).map(|c| c.to_vec()).collect()
}

fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use rand::Rng;

    /// Three-class problem separable on two features.
    fn three_class_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x: f64 = rng.gen_range(0.0..3.0);
            let y: f64 = rng.gen_range(0.0..1.0);
            let noise: f64 = rng.gen_range(-0.05..0.05);
            let label = ((x + noise).floor() as usize).min(2);
            rows.push(vec![x, y]);
            labels.push(label);
        }
        Dataset::from_rows(rows, labels).unwrap()
    }

    #[test]
    fn learns_a_separable_three_class_problem() {
        let train = three_class_data(600, 1);
        let test = three_class_data(200, 2);
        let params = GbdtParams {
            num_classes: 3,
            num_trees: 30,
            ..Default::default()
        };
        let model = GradientBoostedTrees::train(&params, &train, None).unwrap();
        let acc = accuracy(&model.predict_dataset(&test), test.labels());
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn probabilities_are_a_distribution() {
        let train = three_class_data(300, 3);
        let params = GbdtParams {
            num_classes: 3,
            num_trees: 10,
            ..Default::default()
        };
        let model = GradientBoostedTrees::train(&params, &train, None).unwrap();
        for i in 0..20 {
            let p = model.predict_proba(train.row(i));
            assert_eq!(p.len(), 3);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn early_stopping_truncates_trees() {
        let train = three_class_data(400, 4);
        let valid = three_class_data(150, 5);
        let params = GbdtParams {
            num_classes: 3,
            num_trees: 80,
            early_stopping_rounds: Some(5),
            ..Default::default()
        };
        let model = GradientBoostedTrees::train(&params, &train, Some(&valid)).unwrap();
        assert!(model.num_rounds() <= 80);
        assert_eq!(model.report().rounds, model.num_rounds());
        assert!(model.report().best_round.is_some());
        assert_eq!(model.num_trees(), model.num_rounds() * 3);
    }

    #[test]
    fn training_loss_decreases() {
        let train = three_class_data(500, 6);
        let params = GbdtParams {
            num_classes: 3,
            num_trees: 20,
            subsample: 1.0,
            ..Default::default()
        };
        let model = GradientBoostedTrees::train(&params, &train, None).unwrap();
        let losses = &model.report().train_loss;
        assert!(losses.first().unwrap() > losses.last().unwrap());
    }

    #[test]
    fn rejects_invalid_params_and_labels() {
        let train = three_class_data(50, 7);
        let bad = GbdtParams {
            num_classes: 1,
            ..Default::default()
        };
        assert!(matches!(
            GradientBoostedTrees::train(&bad, &train, None),
            Err(GbdtError::InvalidParams(_))
        ));
        // num_classes 2 but labels go up to 2.
        let params = GbdtParams {
            num_classes: 2,
            ..Default::default()
        };
        assert!(matches!(
            GradientBoostedTrees::train(&params, &train, None),
            Err(GbdtError::LabelOutOfRange { .. })
        ));
        let bad_lr = GbdtParams {
            learning_rate: 0.0,
            ..Default::default()
        };
        assert!(GradientBoostedTrees::train(&bad_lr, &train, None).is_err());
        let bad_sub = GbdtParams {
            subsample: 0.0,
            ..Default::default()
        };
        assert!(GradientBoostedTrees::train(&bad_sub, &train, None).is_err());
    }

    #[test]
    fn imbalanced_priors_influence_default_prediction() {
        // 95% of examples are class 0 and features are uninformative noise;
        // the model should predict class 0 nearly always.
        let mut rng = StdRng::seed_from_u64(8);
        let rows: Vec<Vec<f64>> = (0..400).map(|_| vec![rng.gen::<f64>()]).collect();
        let labels: Vec<usize> = (0..400).map(|i| usize::from(i % 20 == 0)).collect();
        let data = Dataset::from_rows(rows, labels).unwrap();
        let params = GbdtParams {
            num_classes: 2,
            num_trees: 5,
            ..Default::default()
        };
        let model = GradientBoostedTrees::train(&params, &data, None).unwrap();
        let preds = model.predict_dataset(&data);
        let zeros = preds.iter().filter(|&&p| p == 0).count();
        assert!(zeros as f64 / preds.len() as f64 > 0.9);
    }

    #[test]
    fn paper_default_matches_paper_configuration() {
        let p = GbdtParams::paper_default(15);
        assert_eq!(p.num_classes, 15);
        assert_eq!(p.num_trees, 300);
        assert_eq!(p.tree.max_depth, 6);
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let train = three_class_data(200, 9);
        let params = GbdtParams {
            num_classes: 3,
            num_trees: 8,
            ..Default::default()
        };
        let model = GradientBoostedTrees::train(&params, &train, None).unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: GradientBoostedTrees = serde_json::from_str(&json).unwrap();
        for i in 0..20 {
            assert_eq!(model.predict(train.row(i)), back.predict(train.row(i)));
        }
    }

    #[test]
    fn try_predict_reports_short_rows_as_errors() {
        let train = three_class_data(100, 11);
        let params = GbdtParams {
            num_classes: 3,
            num_trees: 2,
            ..Default::default()
        };
        let model = GradientBoostedTrees::train(&params, &train, None).unwrap();
        assert!(matches!(
            model.try_predict(&[1.0]),
            Err(GbdtError::FeatureCountMismatch {
                expected: 2,
                found: 1
            })
        ));
        assert!(model.try_predict_proba(&[1.0]).is_err());
        // Checked and panicking paths agree on valid rows.
        let row = train.row(0);
        assert_eq!(model.try_predict(row).unwrap(), model.predict(row));
        assert_eq!(model.try_predict_raw(row).unwrap(), model.predict_raw(row));
    }

    #[test]
    #[should_panic(expected = "features")]
    fn predict_with_short_row_panics() {
        let train = three_class_data(100, 10);
        let params = GbdtParams {
            num_classes: 3,
            num_trees: 2,
            ..Default::default()
        };
        let model = GradientBoostedTrees::train(&params, &train, None).unwrap();
        let _ = model.predict(&[1.0]);
    }
}
