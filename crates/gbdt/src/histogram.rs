//! The histogram engine: column-major binned features, pooled gradient
//! histograms, and the LightGBM-style sibling-subtraction trick.
//!
//! Histogram split finding spends nearly all of its time accumulating
//! per-bin gradient statistics. This module makes that hot loop fast three
//! ways:
//!
//! * **Column-major bins** ([`BinnedMatrix`]): each feature's bin indices
//!   for all rows are contiguous, so a per-feature fill walks one `u16`
//!   column instead of striding `row * num_features + f` across the whole
//!   row-major matrix.
//! * **Buffer pooling** ([`HistogramPool`]): per-node histograms are
//!   recycled across nodes, so a depth-6 tree allocates a handful of
//!   buffers instead of one per feature per node.
//! * **Sibling subtraction** ([`subtract_sibling`], [`HistogramMode`]):
//!   a node's histogram is the bin-wise sum of its children's, so after
//!   building the histogram of the *smaller* child the sibling comes from
//!   `parent − child` in `O(bins)` instead of `O(rows)` — roughly halving
//!   histogram work per tree level.
//!
//! # Determinism
//!
//! Every fill walks its rows in partition order and every feature column is
//! filled by exactly one task, so the accumulated floats are bit-identical
//! for any thread count ([`fill_histogram`] reduces per-feature results in
//! feature order). Subtraction is a fixed bin-order pass on the calling
//! thread. Both [`HistogramMode`]s are therefore fully deterministic; they
//! differ from *each other* (by float rounding only) because subtraction
//! legitimately changes the accumulation order.

use crate::binning::BinMapper;
use crate::dataset::Dataset;
use byom_exec::prelude::*;
use serde::{Deserialize, Serialize};

/// How per-node histograms are obtained while growing a tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum HistogramMode {
    /// Build the histogram of the smaller child from its rows and derive
    /// the sibling as `parent − child`. Roughly halves histogram work per
    /// level; bit-identical across runs and thread counts, but its float
    /// accumulation order (and therefore the last ULPs of gains and leaf
    /// values) legitimately differs from [`HistogramMode::Rebuild`].
    #[default]
    Subtraction,
    /// Rebuild every node's histogram from its rows. The bit-exact
    /// reference path: trees match the pre-engine row-major implementation
    /// bit for bit.
    Rebuild,
}

/// Column-major matrix of per-feature bin indices.
///
/// Produced by [`BinMapper::bin_dataset`]; feature `f`'s bins for all rows
/// are the contiguous slice [`BinnedMatrix::column`]`(f)`.
#[derive(Debug, Clone, PartialEq)]
pub struct BinnedMatrix {
    /// Column-major storage: row `i` of feature `f` is `bins[f * num_rows + i]`.
    bins: Vec<u16>,
    num_rows: usize,
    num_features: usize,
}

impl BinnedMatrix {
    /// Bin a whole dataset through `mapper` into column-major storage.
    pub fn from_dataset(mapper: &BinMapper, data: &Dataset) -> Self {
        let n = data.len();
        let mut bins = vec![0u16; n * data.num_features()];
        for (f, column) in bins.chunks_exact_mut(n.max(1)).enumerate() {
            for (i, slot) in column.iter_mut().enumerate() {
                *slot = mapper.bin(f, data.value(i, f)) as u16;
            }
        }
        BinnedMatrix {
            bins,
            num_rows: n,
            num_features: data.num_features(),
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of features (columns).
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Feature `f`'s bin indices for all rows, contiguous. Out-of-range
    /// features yield an empty slice.
    pub fn column(&self, f: usize) -> &[u16] {
        let start = f.saturating_mul(self.num_rows);
        self.bins
            .get(start..start.saturating_add(self.num_rows))
            .unwrap_or(&[])
    }

    /// Bin index of row `i`, feature `f` (`0` when out of range).
    pub fn bin(&self, i: usize, f: usize) -> u16 {
        self.column(f).get(i).copied().unwrap_or(0)
    }
}

/// One histogram bin: first/second-order gradient sums and a row count.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistBin {
    /// Sum of first-order gradients of the rows in this bin.
    pub grad: f64,
    /// Sum of second-order gradients (hessians) of the rows in this bin.
    pub hess: f64,
    /// Number of rows in this bin.
    pub count: u32,
}

/// Per-feature offsets into a flat all-features histogram buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureLayout {
    /// `offsets[f]..offsets[f + 1]` is feature `f`'s bin range; the final
    /// entry is the total bin count.
    offsets: Vec<usize>,
}

impl FeatureLayout {
    /// Derive the layout from a fitted [`BinMapper`].
    pub fn from_mapper(mapper: &BinMapper) -> Self {
        let mut offsets = Vec::with_capacity(mapper.num_features() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for f in 0..mapper.num_features() {
            total += mapper.num_bins(f);
            offsets.push(total);
        }
        FeatureLayout { offsets }
    }

    /// Number of features covered by the layout.
    pub fn num_features(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total bin count across all features (the flat buffer length).
    pub fn total_bins(&self) -> usize {
        self.offsets.last().copied().unwrap_or(0)
    }

    /// Feature `f`'s range within the flat buffer (empty when out of range).
    pub fn feature_range(&self, f: usize) -> std::ops::Range<usize> {
        let start = self.offsets.get(f).copied().unwrap_or(0);
        let end = self.offsets.get(f + 1).copied().unwrap_or(start);
        start..end
    }

    /// Number of bins of feature `f`.
    pub fn num_bins(&self, f: usize) -> usize {
        self.feature_range(f).len()
    }
}

/// A reuse pool of flat per-node histogram buffers.
///
/// Growing a tree depth-first holds at most one histogram per level on the
/// recursion path (plus the one being built), so the pool keeps the number
/// of live buffers proportional to `max_depth` instead of the node count.
#[derive(Debug)]
pub struct HistogramPool {
    layout: FeatureLayout,
    free: Vec<Vec<HistBin>>,
    allocated: usize,
}

impl HistogramPool {
    /// A pool producing buffers shaped for `layout`.
    pub fn new(layout: FeatureLayout) -> Self {
        HistogramPool {
            layout,
            free: Vec::new(),
            allocated: 0,
        }
    }

    /// The bin layout buffers from this pool follow.
    pub fn layout(&self) -> &FeatureLayout {
        &self.layout
    }

    /// A zeroed buffer of `layout.total_bins()` bins, recycled when possible.
    pub fn acquire(&mut self) -> Vec<HistBin> {
        match self.free.pop() {
            Some(mut buf) => {
                buf.iter_mut().for_each(|b| *b = HistBin::default());
                buf
            }
            None => {
                self.allocated += 1;
                vec![HistBin::default(); self.layout.total_bins()]
            }
        }
    }

    /// Return a buffer for reuse by a later [`HistogramPool::acquire`].
    pub fn release(&mut self, buf: Vec<HistBin>) {
        if buf.len() == self.layout.total_bins() {
            self.free.push(buf);
        }
    }

    /// Total buffers ever allocated (telemetry: tests pin that a depth-`d`
    /// tree allocates `O(d)` buffers, not one per node).
    pub fn buffers_allocated(&self) -> usize {
        self.allocated
    }
}

/// Accumulate `rows` of one feature column into `out` (one slot per bin),
/// walking rows in the order given so the float accumulation order is fixed.
fn fill_column(out: &mut [HistBin], column: &[u16], grad: &[f64], hess: &[f64], rows: &[usize]) {
    for &i in rows {
        let b = column.get(i).copied().unwrap_or(0) as usize;
        if let (Some(slot), Some(&g), Some(&h)) = (out.get_mut(b), grad.get(i), hess.get(i)) {
            slot.grad += g;
            slot.hess += h;
            slot.count += 1;
        }
    }
}

/// Below this many rows the per-feature fill runs sequentially even when
/// parallelism is enabled: the histogram work is too small to amortize the
/// cost of fanning out across threads (deep nodes dominate the node count
/// but not the runtime).
pub const PARALLEL_FILL_MIN_ROWS: usize = 512;

/// Fill the flat histogram `hist` (shaped by `layout`) with the gradient
/// statistics of `rows`, one contiguous [`BinnedMatrix`] column per feature.
///
/// With `parallelism > 1` and enough rows, feature columns fan out on the
/// shared `byom_exec` pool; each column is still filled in row order by
/// exactly one task and the per-feature results are written back in feature
/// order, so the result is **bit-identical** to the sequential fill.
pub fn fill_histogram(
    hist: &mut [HistBin],
    layout: &FeatureLayout,
    binned: &BinnedMatrix,
    grad: &[f64],
    hess: &[f64],
    rows: &[usize],
    parallelism: usize,
) {
    let num_features = layout.num_features();
    if parallelism > 1 && rows.len() >= PARALLEL_FILL_MIN_ROWS && num_features > 1 {
        let columns: Vec<Vec<HistBin>> = (0..num_features)
            .into_par_iter()
            .with_max_threads(parallelism)
            .map(|f| {
                let mut out = vec![HistBin::default(); layout.num_bins(f)];
                fill_column(&mut out, binned.column(f), grad, hess, rows);
                out
            })
            .collect();
        // Reduce in feature order: copying preserves every bit, so the
        // buffer contents match the sequential branch exactly.
        for (f, column) in columns.into_iter().enumerate() {
            if let Some(slice) = hist.get_mut(layout.feature_range(f)) {
                slice.copy_from_slice(&column);
            }
        }
    } else {
        for f in 0..num_features {
            if let Some(slice) = hist.get_mut(layout.feature_range(f)) {
                fill_column(slice, binned.column(f), grad, hess, rows);
            }
        }
    }
}

/// Derive the sibling histogram in place: `parent` becomes `parent − child`
/// bin by bin (the histogram the sibling's rows would produce, up to float
/// rounding). A fixed-order single-threaded pass, so the result is
/// deterministic for deterministic inputs.
pub fn subtract_sibling(parent: &mut [HistBin], child: &[HistBin]) {
    for (p, c) in parent.iter_mut().zip(child) {
        p.grad -= c.grad;
        p.hess -= c.hess;
        p.count = p.count.saturating_sub(c.count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![i as f64, (i * 7 % 13) as f64, 3.0])
            .collect();
        Dataset::from_rows(rows, vec![0; 40]).unwrap()
    }

    #[test]
    fn binned_matrix_is_column_major_and_matches_mapper() {
        let d = dataset();
        let m = BinMapper::fit(&d, 8);
        let binned = m.bin_dataset(&d);
        assert_eq!(binned.num_rows(), 40);
        assert_eq!(binned.num_features(), 3);
        for f in 0..3 {
            let col = binned.column(f);
            assert_eq!(col.len(), 40);
            for (i, &b) in col.iter().enumerate() {
                assert_eq!(b as usize, m.bin(f, d.value(i, f)));
                assert_eq!(binned.bin(i, f), b);
            }
        }
        // Out-of-range accesses are graceful.
        assert!(binned.column(3).is_empty());
        assert_eq!(binned.bin(99, 0), 0);
    }

    #[test]
    fn layout_covers_every_feature_without_overlap() {
        let d = dataset();
        let m = BinMapper::fit(&d, 8);
        let layout = FeatureLayout::from_mapper(&m);
        assert_eq!(layout.num_features(), 3);
        let mut covered = 0usize;
        for f in 0..3 {
            let r = layout.feature_range(f);
            assert_eq!(r.start, covered);
            assert_eq!(r.len(), m.num_bins(f));
            assert_eq!(layout.num_bins(f), m.num_bins(f));
            covered = r.end;
        }
        assert_eq!(covered, layout.total_bins());
        assert!(layout.feature_range(7).is_empty());
    }

    #[test]
    fn pool_recycles_buffers() {
        let d = dataset();
        let m = BinMapper::fit(&d, 8);
        let mut pool = HistogramPool::new(FeatureLayout::from_mapper(&m));
        let a = pool.acquire();
        let b = pool.acquire();
        assert_eq!(pool.buffers_allocated(), 2);
        pool.release(a);
        pool.release(b);
        let c = pool.acquire();
        assert_eq!(pool.buffers_allocated(), 2, "reuse, not allocate");
        assert!(c.iter().all(|b| b == &HistBin::default()), "zeroed");
    }

    #[test]
    fn parallel_fill_is_bit_identical_to_sequential() {
        let d = dataset();
        let m = BinMapper::fit(&d, 8);
        let binned = m.bin_dataset(&d);
        let layout = FeatureLayout::from_mapper(&m);
        let grad: Vec<f64> = (0..40).map(|i| (i as f64).sin()).collect();
        let hess: Vec<f64> = (0..40).map(|i| 1.0 + (i as f64).cos().abs()).collect();
        let rows: Vec<usize> = (0..40).rev().collect();
        let mut seq = vec![HistBin::default(); layout.total_bins()];
        fill_histogram(&mut seq, &layout, &binned, &grad, &hess, &rows, 1);
        // Force the parallel branch by dropping the row gate via many rows?
        // The gate needs >= PARALLEL_FILL_MIN_ROWS rows; replicate rows.
        let big_rows: Vec<usize> = rows.iter().cycle().take(1024).copied().collect();
        let mut seq_big = vec![HistBin::default(); layout.total_bins()];
        fill_histogram(&mut seq_big, &layout, &binned, &grad, &hess, &big_rows, 1);
        let mut par_big = vec![HistBin::default(); layout.total_bins()];
        fill_histogram(&mut par_big, &layout, &binned, &grad, &hess, &big_rows, 4);
        assert_eq!(seq_big, par_big);
    }

    #[test]
    fn subtraction_recovers_the_sibling_counts_exactly() {
        let d = dataset();
        let m = BinMapper::fit(&d, 8);
        let binned = m.bin_dataset(&d);
        let layout = FeatureLayout::from_mapper(&m);
        let grad: Vec<f64> = (0..40).map(|i| i as f64 * 0.25 - 3.0).collect();
        let hess = vec![1.0f64; 40];
        let all: Vec<usize> = (0..40).collect();
        let (left, right) = all.split_at(17);
        let mut parent = vec![HistBin::default(); layout.total_bins()];
        fill_histogram(&mut parent, &layout, &binned, &grad, &hess, &all, 1);
        let mut left_hist = vec![HistBin::default(); layout.total_bins()];
        fill_histogram(&mut left_hist, &layout, &binned, &grad, &hess, left, 1);
        let mut right_hist = vec![HistBin::default(); layout.total_bins()];
        fill_histogram(&mut right_hist, &layout, &binned, &grad, &hess, right, 1);
        subtract_sibling(&mut parent, &left_hist);
        for (derived, rebuilt) in parent.iter().zip(&right_hist) {
            assert_eq!(derived.count, rebuilt.count);
            assert!((derived.grad - rebuilt.grad).abs() < 1e-9);
            assert!((derived.hess - rebuilt.hess).abs() < 1e-9);
        }
    }
}
