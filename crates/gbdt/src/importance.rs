//! Feature importance analyses.
//!
//! Two complementary importance measures are provided:
//!
//! * **Split-gain importance**: total loss reduction contributed by splits on
//!   each feature, summed over every tree in the ensemble. Cheap and
//!   model-intrinsic.
//! * **AUC-drop importance** (the paper's Figure 9c methodology): for each
//!   category, treat "belongs to the category" as a binary prediction task
//!   and measure how much the ROC AUC decreases when a feature's information
//!   is removed. We remove a feature's information by permuting its column
//!   (a standard, retraining-free approximation of the paper's
//!   leave-one-feature-out analysis). Scores are normalized per category.

use crate::dataset::Dataset;
use crate::gbm::GradientBoostedTrees;
use crate::metrics::binary_auc;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Split-gain importance per feature, normalized to sum to 1 (all zeros if
/// the model contains no splits).
pub fn split_gain_importance(model: &GradientBoostedTrees) -> Vec<f64> {
    let mut gains = vec![0.0f64; model.num_features()];
    for round in model.trees() {
        for tree in round {
            tree.accumulate_gains(&mut gains);
        }
    }
    let total: f64 = gains.iter().sum();
    if total > 0.0 {
        for g in &mut gains {
            *g /= total;
        }
    }
    gains
}

/// AUC-drop importance: `result[class][feature]` is the decrease in one-vs-
/// rest ROC AUC for `class` when `feature` is permuted, normalized within the
/// class so the scores of all features sum to 1 (0 for classes absent from
/// `data` or with no positive drop).
///
/// # Panics
/// Panics if `data` has a different feature count than the model.
pub fn auc_drop_importance(
    model: &GradientBoostedTrees,
    data: &Dataset,
    seed: u64,
) -> Vec<Vec<f64>> {
    assert_eq!(
        data.num_features(),
        model.num_features(),
        "dataset and model feature counts differ"
    );
    let k = model.num_classes();
    let n = data.len();
    let probs = model.predict_proba_dataset(data);

    // Baseline AUC per class.
    let mut baseline = vec![0.5f64; k];
    for class in 0..k {
        let scores: Vec<f64> = probs.iter().map(|p| p[class]).collect();
        let labels: Vec<bool> = data.labels().iter().map(|&l| l == class).collect();
        baseline[class] = binary_auc(&scores, &labels);
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut result = vec![vec![0.0f64; data.num_features()]; k];

    for feature in 0..data.num_features() {
        // Build a permuted copy of the feature column.
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut rng);
        // Score all rows with the permuted feature value substituted in.
        let mut permuted_probs = Vec::with_capacity(n);
        let mut row_buf = vec![0.0f64; data.num_features()];
        for (i, &p) in perm.iter().enumerate() {
            row_buf.copy_from_slice(data.row(i));
            row_buf[feature] = data.value(p, feature);
            permuted_probs.push(model.predict_proba(&row_buf));
        }
        for class in 0..k {
            let scores: Vec<f64> = permuted_probs.iter().map(|p| p[class]).collect();
            let labels: Vec<bool> = data.labels().iter().map(|&l| l == class).collect();
            let auc = binary_auc(&scores, &labels);
            result[class][feature] = (baseline[class] - auc).max(0.0);
        }
    }

    // Normalize within each class.
    for class_scores in &mut result {
        let total: f64 = class_scores.iter().sum();
        if total > 0.0 {
            for s in class_scores.iter_mut() {
                *s /= total;
            }
        }
    }
    result
}

/// Average a per-class, per-feature importance matrix into per-class,
/// per-group scores given a feature→group assignment with `num_groups`
/// groups. Used to produce the paper's Figure 9c (groups A/B/C/T).
///
/// # Panics
/// Panics if `feature_groups` is shorter than the feature dimension of
/// `importance` or contains a group index `>= num_groups`.
pub fn group_importance(
    importance: &[Vec<f64>],
    feature_groups: &[usize],
    num_groups: usize,
) -> Vec<Vec<f64>> {
    importance
        .iter()
        .map(|per_feature| {
            let mut group_sum = vec![0.0f64; num_groups];
            let mut group_count = vec![0usize; num_groups];
            for (f, &score) in per_feature.iter().enumerate() {
                let g = feature_groups[f];
                assert!(g < num_groups, "group index {g} out of range");
                group_sum[g] += score;
                group_count[g] += 1;
            }
            group_sum
                .iter()
                .zip(&group_count)
                .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbm::GbdtParams;
    use rand::Rng;

    /// Two-class data where only feature 0 is informative.
    fn data_with_noise_feature(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let informative: f64 = rng.gen_range(0.0..1.0);
            let noise: f64 = rng.gen_range(0.0..1.0);
            rows.push(vec![informative, noise]);
            labels.push(usize::from(informative > 0.5));
        }
        Dataset::from_rows(rows, labels).unwrap()
    }

    fn trained_model(data: &Dataset) -> GradientBoostedTrees {
        let params = GbdtParams {
            num_classes: 2,
            num_trees: 15,
            ..Default::default()
        };
        GradientBoostedTrees::train(&params, data, None).unwrap()
    }

    #[test]
    fn split_gain_favours_informative_feature() {
        let data = data_with_noise_feature(500, 1);
        let model = trained_model(&data);
        let imp = split_gain_importance(&model);
        assert_eq!(imp.len(), 2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.8, "informative feature importance {imp:?}");
    }

    #[test]
    fn auc_drop_favours_informative_feature() {
        let data = data_with_noise_feature(400, 2);
        let model = trained_model(&data);
        let imp = auc_drop_importance(&model, &data, 7);
        assert_eq!(imp.len(), 2);
        for class_scores in &imp {
            assert_eq!(class_scores.len(), 2);
            assert!(class_scores[0] > class_scores[1]);
        }
    }

    #[test]
    fn auc_drop_rows_are_normalized_or_zero() {
        let data = data_with_noise_feature(300, 3);
        let model = trained_model(&data);
        let imp = auc_drop_importance(&model, &data, 9);
        for class_scores in &imp {
            let sum: f64 = class_scores.iter().sum();
            assert!(sum.abs() < 1e-9 || (sum - 1.0).abs() < 1e-9, "sum {sum}");
        }
    }

    #[test]
    fn group_importance_averages_within_groups() {
        let importance = vec![vec![0.6, 0.2, 0.2]];
        let groups = vec![0, 1, 1];
        let g = group_importance(&importance, &groups, 2);
        assert_eq!(g.len(), 1);
        assert!((g[0][0] - 0.6).abs() < 1e-12);
        assert!((g[0][1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn group_importance_empty_group_is_zero() {
        let importance = vec![vec![1.0]];
        let groups = vec![0];
        let g = group_importance(&importance, &groups, 3);
        assert_eq!(g[0], vec![1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "feature counts differ")]
    fn auc_drop_rejects_mismatched_dataset() {
        let data = data_with_noise_feature(100, 4);
        let model = trained_model(&data);
        let other = Dataset::from_rows(vec![vec![1.0]; 10], vec![0; 10]).unwrap();
        let _ = auc_drop_importance(&model, &other, 0);
    }
}
