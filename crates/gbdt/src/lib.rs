//! A small, self-contained gradient-boosted decision trees (GBDT) library.
//!
//! The BYOM paper trains lightweight, interpretable category models with
//! gradient boosted trees (using Yggdrasil Decision Forests in the original
//! system): 15-class models with at most 300 trees of depth 6. This crate
//! provides an equivalent from-scratch implementation with the properties the
//! paper relies on:
//!
//! * **cheap inference** — a few microseconds per example, well under the
//!   paper's 4 ms/job budget;
//! * **multiclass pointwise ranking** — softmax objective over N importance
//!   categories;
//! * **interpretability** — split-gain and permutation/AUC-drop feature
//!   importance, including per-category binary analyses (Figure 9c);
//! * **small models** — serializable with serde, no external runtime.
//!
//! # Example
//!
//! ```
//! use byom_gbdt::{Dataset, GbdtParams, GradientBoostedTrees};
//!
//! // A toy 2-class problem: class is determined by the first feature.
//! let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64, (i % 7) as f64]).collect();
//! let labels: Vec<usize> = (0..200).map(|i| usize::from(i >= 100)).collect();
//! let data = Dataset::from_rows(rows, labels).unwrap();
//! let params = GbdtParams { num_classes: 2, num_trees: 10, ..Default::default() };
//! let model = GradientBoostedTrees::train(&params, &data, None).unwrap();
//! assert_eq!(model.predict(&[150.0, 3.0]), 1);
//! assert_eq!(model.predict(&[10.0, 3.0]), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod binning;
pub mod dataset;
pub mod error;
pub mod gbm;
pub mod histogram;
pub mod importance;
pub mod metrics;
pub mod tree;

pub use binning::BinMapper;
pub use dataset::Dataset;
pub use error::GbdtError;
pub use gbm::{GbdtParams, GradientBoostedTrees, TrainReport};
pub use histogram::{BinnedMatrix, FeatureLayout, HistBin, HistogramMode, HistogramPool};
pub use importance::{auc_drop_importance, split_gain_importance};
pub use metrics::{accuracy, binary_auc, confusion_matrix, log_loss, top_k_accuracy};
pub use tree::{Node, ScoredFit, Tree, TreeParams};
