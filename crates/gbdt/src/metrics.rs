//! Classification metrics: accuracy, top-k accuracy, binary ROC AUC, log
//! loss, and confusion matrices.

/// Top-1 accuracy of predicted class labels against true labels.
///
/// # Panics
/// Panics if the slices differ in length. Returns 0.0 for empty inputs.
pub fn accuracy(predicted: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let correct = predicted.iter().zip(truth).filter(|(p, t)| p == t).count();
    correct as f64 / truth.len() as f64
}

/// Top-k accuracy: the true label is among the k highest-probability classes.
///
/// # Panics
/// Panics if shapes are inconsistent or `k == 0`.
pub fn top_k_accuracy(probabilities: &[Vec<f64>], truth: &[usize], k: usize) -> f64 {
    assert_eq!(probabilities.len(), truth.len(), "length mismatch");
    assert!(k > 0, "k must be positive");
    if truth.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for (probs, &t) in probabilities.iter().zip(truth) {
        let mut idx: Vec<usize> = (0..probs.len()).collect();
        idx.sort_by(|&a, &b| probs[b].total_cmp(&probs[a]));
        if idx.iter().take(k).any(|&i| i == t) {
            correct += 1;
        }
    }
    correct as f64 / truth.len() as f64
}

/// Area under the ROC curve for binary classification, computed via the
/// Mann–Whitney U statistic (rank-based, handles ties by midranks).
///
/// `scores[i]` is the predicted score for example `i`; `labels[i]` is true
/// (positive) or false (negative). Returns 0.5 when either class is absent.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn binary_auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Rank scores (average ranks for ties).
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        i = j + 1;
    }
    let pos_rank_sum: f64 = labels
        .iter()
        .zip(&ranks)
        .filter(|(&l, _)| l)
        .map(|(_, &r)| r)
        .sum();
    let u = pos_rank_sum - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Multiclass logarithmic loss. Probabilities are clipped to `[1e-12, 1]`.
///
/// # Panics
/// Panics if shapes are inconsistent or a true label indexes outside its
/// probability row. Returns 0.0 for empty inputs.
pub fn log_loss(probabilities: &[Vec<f64>], truth: &[usize]) -> f64 {
    assert_eq!(probabilities.len(), truth.len(), "length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (probs, &t) in probabilities.iter().zip(truth) {
        assert!(t < probs.len(), "label {t} outside probability row");
        total -= probs[t].max(1e-12).ln();
    }
    total / truth.len() as f64
}

/// Confusion matrix: `matrix[true][predicted]` counts.
///
/// # Panics
/// Panics if the slices differ in length or a label is `>= num_classes`.
pub fn confusion_matrix(
    predicted: &[usize],
    truth: &[usize],
    num_classes: usize,
) -> Vec<Vec<usize>> {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    let mut m = vec![vec![0usize; num_classes]; num_classes];
    for (&p, &t) in predicted.iter().zip(truth) {
        assert!(p < num_classes && t < num_classes, "label out of range");
        m[t][p] += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 2, 1], &[0, 1, 1, 1]), 0.75);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn top_k_includes_lower_ranked_classes() {
        let probs = vec![vec![0.5, 0.3, 0.2], vec![0.1, 0.2, 0.7]];
        let truth = vec![1, 0];
        assert_eq!(top_k_accuracy(&probs, &truth, 1), 0.0);
        assert_eq!(top_k_accuracy(&probs, &truth, 2), 0.5);
        assert_eq!(top_k_accuracy(&probs, &truth, 3), 1.0);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [false, false, true, true];
        assert!((binary_auc(&scores, &labels) - 1.0).abs() < 1e-12);
        let inverted = [true, true, false, false];
        assert!((binary_auc(&scores, &inverted)).abs() < 1e-12);
    }

    #[test]
    fn auc_random_scores_is_half() {
        // Constant scores: every pairing is a tie -> AUC 0.5.
        let scores = [0.5; 10];
        let labels = [
            true, false, true, false, true, false, true, false, true, false,
        ];
        assert!((binary_auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_degenerate_single_class() {
        assert_eq!(binary_auc(&[0.1, 0.9], &[true, true]), 0.5);
        assert_eq!(binary_auc(&[0.1, 0.9], &[false, false]), 0.5);
    }

    #[test]
    fn auc_handles_ties_with_midranks() {
        let scores = [0.5, 0.5, 0.9, 0.1];
        let labels = [true, false, true, false];
        // Pairs: (pos 0.5 vs neg 0.5) = 0.5, (0.5 vs 0.1) = 1, (0.9 vs 0.5) = 1,
        // (0.9 vs 0.1) = 1 -> AUC = 3.5/4.
        assert!((binary_auc(&scores, &labels) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn log_loss_confident_correct_is_small() {
        let good = vec![vec![0.99, 0.01], vec![0.01, 0.99]];
        let bad = vec![vec![0.01, 0.99], vec![0.99, 0.01]];
        let truth = vec![0, 1];
        assert!(log_loss(&good, &truth) < 0.05);
        assert!(log_loss(&bad, &truth) > 2.0);
        assert_eq!(log_loss(&[], &[]), 0.0);
    }

    #[test]
    fn confusion_matrix_counts() {
        let m = confusion_matrix(&[0, 1, 1, 2], &[0, 1, 2, 2], 3);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[2][1], 1);
        assert_eq!(m[2][2], 1);
        assert_eq!(m.iter().flatten().sum::<usize>(), 4);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_mismatch_panics() {
        let _ = accuracy(&[0], &[]);
    }
}
