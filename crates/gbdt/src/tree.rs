//! Single regression trees fit to gradient/hessian statistics.
//!
//! Trees are grown greedily and depth-first using per-feature histograms of
//! first- and second-order gradient sums ("histogram split finding"). Leaf
//! values use the standard second-order (Newton) estimate `-G / (H + λ)`.

use crate::binning::BinMapper;
use byom_exec::prelude::*;
use serde::{Deserialize, Serialize};

/// Below this many rows a node's split search runs sequentially even when
/// parallelism is enabled: the histogram work is too small to amortize the
/// cost of fanning out across threads (deep nodes dominate the node count but
/// not the runtime).
const PARALLEL_SPLIT_MIN_ROWS: usize = 512;

/// Hyperparameters of a single tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0). The paper uses 6.
    pub max_depth: usize,
    /// Minimum number of training rows in each child of a split.
    pub min_samples_leaf: usize,
    /// L2 regularization on leaf values (λ).
    pub l2_lambda: f64,
    /// Minimum split gain required to split a node (γ).
    pub min_split_gain: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 6,
            min_samples_leaf: 5,
            l2_lambda: 1.0,
            min_split_gain: 1e-6,
        }
    }
}

/// One node of a fitted tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Feature index this node splits on (unused for leaves).
    pub feature: u32,
    /// Real-valued threshold: rows with `value <= threshold` go left.
    pub threshold: f64,
    /// Index of the left child in the node array, or -1 for leaves.
    pub left: i32,
    /// Index of the right child in the node array, or -1 for leaves.
    pub right: i32,
    /// Prediction value (only meaningful for leaves).
    pub value: f64,
    /// Gain achieved by this node's split (0 for leaves).
    pub gain: f64,
}

impl Node {
    /// Whether this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.left < 0
    }
}

/// A fitted regression tree.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
}

struct FitContext<'a> {
    binned: &'a [u16],
    num_features: usize,
    mapper: &'a BinMapper,
    grad: &'a [f64],
    hess: &'a [f64],
    params: TreeParams,
    /// Worker threads for the per-feature split search (1 = sequential).
    parallelism: usize,
}

struct BestSplit {
    feature: usize,
    bin: usize,
    gain: f64,
}

impl Tree {
    /// Fit a tree to the gradient/hessian statistics of the rows listed in
    /// `rows`.
    ///
    /// * `binned` is the row-major matrix of bin indices produced by
    ///   [`BinMapper::bin_dataset`].
    /// * `grad`/`hess` are per-row first/second order derivatives of the loss.
    ///
    /// # Panics
    /// Panics if `rows` is empty or the inputs disagree on the number of rows.
    pub fn fit(
        binned: &[u16],
        num_features: usize,
        mapper: &BinMapper,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        params: TreeParams,
    ) -> Tree {
        Self::fit_with_parallelism(binned, num_features, mapper, grad, hess, rows, params, 1)
    }

    /// Like [`Tree::fit`], but searching split candidates across features on
    /// up to `parallelism` threads of the shared executor pool (`0` =
    /// inherit the ambient thread budget, `1` = strictly sequential —
    /// including any parallelism nested below this call).
    ///
    /// The result is **bit-identical** to the sequential fit: each feature's
    /// candidate is computed by the same scan, and candidates are reduced in
    /// feature order with a strict `>` comparison, so ties break toward the
    /// lowest feature index exactly as the sequential loop does.
    ///
    /// # Panics
    /// Panics if `rows` is empty or the inputs disagree on the number of rows.
    #[allow(clippy::too_many_arguments)]
    pub fn fit_with_parallelism(
        binned: &[u16],
        num_features: usize,
        mapper: &BinMapper,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        params: TreeParams,
        parallelism: usize,
    ) -> Tree {
        assert!(!rows.is_empty(), "cannot fit a tree on zero rows");
        assert_eq!(grad.len(), hess.len(), "grad and hess must be parallel");
        assert_eq!(
            binned.len(),
            grad.len() * num_features,
            "binned matrix shape mismatch"
        );
        let ctx = FitContext {
            binned,
            num_features,
            mapper,
            grad,
            hess,
            params,
            parallelism: byom_exec::resolve_threads(parallelism),
        };
        let mut tree = Tree { nodes: Vec::new() };
        let mut rows_owned: Vec<usize> = rows.to_vec();
        tree.build_node(&ctx, &mut rows_owned, 0);
        tree
    }

    /// Recursively build the subtree for `rows`, returning the node index.
    fn build_node(&mut self, ctx: &FitContext<'_>, rows: &mut [usize], depth: usize) -> usize {
        let (g_sum, h_sum) = rows.iter().fold((0.0, 0.0), |(g, h), &i| {
            (
                g + ctx.grad.get(i).copied().unwrap_or(0.0),
                h + ctx.hess.get(i).copied().unwrap_or(0.0),
            )
        });
        let leaf_value = -g_sum / (h_sum + ctx.params.l2_lambda);

        let node_idx = self.nodes.len();
        self.nodes.push(Node {
            feature: 0,
            threshold: 0.0,
            left: -1,
            right: -1,
            value: leaf_value,
            gain: 0.0,
        });

        if depth >= ctx.params.max_depth || rows.len() < 2 * ctx.params.min_samples_leaf {
            return node_idx;
        }

        let Some(best) = Self::find_best_split(ctx, rows, g_sum, h_sum) else {
            return node_idx;
        };

        // Partition rows in place: left = bin <= best.bin. The exact swap
        // permutation is part of the determinism contract (row order feeds
        // the children's float accumulations), so this stays a swap loop.
        let threshold = ctx.mapper.edge(best.feature, best.bin);
        let mut split_point = 0;
        for i in 0..rows.len() {
            let row = rows.get(i).copied().unwrap_or(0);
            let bin = ctx
                .binned
                .get(row * ctx.num_features + best.feature)
                .copied()
                .unwrap_or(0) as usize;
            if bin <= best.bin {
                rows.swap(i, split_point);
                split_point += 1;
            }
        }
        if split_point == 0
            || split_point == rows.len()
            || split_point < ctx.params.min_samples_leaf
            || rows.len() - split_point < ctx.params.min_samples_leaf
        {
            return node_idx;
        }

        let (left_rows, right_rows) = rows.split_at_mut(split_point);
        let left_idx = self.build_node(ctx, left_rows, depth + 1);
        let right_idx = self.build_node(ctx, right_rows, depth + 1);

        if let Some(node) = self.nodes.get_mut(node_idx) {
            node.feature = best.feature as u32;
            node.threshold = threshold;
            node.left = left_idx as i32;
            node.right = right_idx as i32;
            node.gain = best.gain;
        }
        node_idx
    }

    fn find_best_split(
        ctx: &FitContext<'_>,
        rows: &[usize],
        g_total: f64,
        h_total: f64,
    ) -> Option<BestSplit> {
        if ctx.parallelism > 1 && rows.len() >= PARALLEL_SPLIT_MIN_ROWS && ctx.num_features > 1 {
            // Each feature's candidate is independent; reduce in feature order
            // with a strict `>` so the winner matches the sequential loop
            // bit-for-bit (ties break toward the lowest feature index).
            let candidates: Vec<Option<BestSplit>> = (0..ctx.num_features)
                .into_par_iter()
                .with_max_threads(ctx.parallelism)
                .map(|f| Self::feature_best_split(ctx, rows, f, g_total, h_total))
                .collect();
            let mut best: Option<BestSplit> = None;
            for candidate in candidates.into_iter().flatten() {
                if best.as_ref().is_none_or(|s| candidate.gain > s.gain) {
                    best = Some(candidate);
                }
            }
            best
        } else {
            let mut best: Option<BestSplit> = None;
            for f in 0..ctx.num_features {
                let Some(candidate) = Self::feature_best_split(ctx, rows, f, g_total, h_total)
                else {
                    continue;
                };
                if best.as_ref().is_none_or(|s| candidate.gain > s.gain) {
                    best = Some(candidate);
                }
            }
            best
        }
    }

    /// The best split candidate considering only feature `f`, or `None` if no
    /// split on `f` clears `min_split_gain` and the leaf-size constraints.
    fn feature_best_split(
        ctx: &FitContext<'_>,
        rows: &[usize],
        f: usize,
        g_total: f64,
        h_total: f64,
    ) -> Option<BestSplit> {
        let lambda = ctx.params.l2_lambda;
        let parent_score = g_total * g_total / (h_total + lambda);
        let num_bins = ctx.mapper.num_bins(f);
        if num_bins < 2 {
            return None;
        }
        // Histogram of gradient statistics per bin: one `(grad, hess, count)`
        // slot per bin, filled in row order so the float accumulation order —
        // and therefore the fitted tree — is bit-identical to the original
        // three-array fill. Bins come from `BinMapper` and are `< num_bins`
        // by construction; rows are validated against `grad`/`hess` at fit
        // entry, so the `get` lookups never actually miss.
        let mut hist = vec![(0.0f64, 0.0f64, 0usize); num_bins];
        for &i in rows {
            let b = ctx
                .binned
                .get(i * ctx.num_features + f)
                .copied()
                .unwrap_or(0) as usize;
            if let (Some(slot), Some(&g), Some(&h)) =
                (hist.get_mut(b), ctx.grad.get(i), ctx.hess.get(i))
            {
                slot.0 += g;
                slot.1 += h;
                slot.2 += 1;
            }
        }
        // Scan split points (split after bin b: left = bins 0..=b).
        let mut best: Option<BestSplit> = None;
        let mut g_left = 0.0;
        let mut h_left = 0.0;
        let mut c_left = 0usize;
        for (b, &(g_bin, h_bin, c_bin)) in hist.iter().enumerate().take(num_bins - 1) {
            g_left += g_bin;
            h_left += h_bin;
            c_left += c_bin;
            let c_right = rows.len() - c_left;
            if c_left < ctx.params.min_samples_leaf || c_right < ctx.params.min_samples_leaf {
                continue;
            }
            let g_right = g_total - g_left;
            let h_right = h_total - h_left;
            let gain = 0.5
                * (g_left * g_left / (h_left + lambda) + g_right * g_right / (h_right + lambda)
                    - parent_score);
            if gain > ctx.params.min_split_gain && best.as_ref().is_none_or(|s| gain > s.gain) {
                best = Some(BestSplit {
                    feature: f,
                    bin: b,
                    gain,
                });
            }
        }
        best
    }

    /// Predict the tree's output for one raw (unbinned) feature row.
    ///
    /// # Panics
    /// Panics if the tree is empty (never fitted) or the row is shorter than
    /// a feature index used by the tree.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        assert!(!self.nodes.is_empty(), "tree has no nodes");
        let mut idx = 0usize;
        loop {
            let node = &self.nodes[idx];
            if node.is_leaf() {
                return node.value;
            }
            idx = if row[node.feature as usize] <= node.threshold {
                node.left as usize
            } else {
                node.right as usize
            };
        }
    }

    /// Number of nodes in the tree.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves in the tree.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Maximum depth of the fitted tree (root = 0; empty tree = 0).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], idx: usize) -> usize {
            match nodes.get(idx) {
                None => 0,
                Some(n) if n.is_leaf() => 0,
                Some(n) => {
                    1 + depth_of(nodes, n.left as usize).max(depth_of(nodes, n.right as usize))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }

    /// The nodes of the tree (root first).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Accumulate this tree's split gains into `out[feature]`. Features
    /// beyond `out.len()` are ignored; size `out` to the model's feature
    /// count to capture every gain.
    pub fn accumulate_gains(&self, out: &mut [f64]) {
        for n in &self.nodes {
            if !n.is_leaf() {
                if let Some(slot) = out.get_mut(n.feature as usize) {
                    *slot += n.gain;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    /// Fit a tree to a regression target using squared loss (hess = 1).
    fn fit_regression(xs: Vec<Vec<f64>>, ys: Vec<f64>, params: TreeParams) -> (Tree, Dataset) {
        let labels = vec![0usize; ys.len()];
        let data = Dataset::from_rows(xs, labels).unwrap();
        let mapper = BinMapper::fit(&data, 64);
        let binned = mapper.bin_dataset(&data);
        // Squared loss: grad = pred - y with pred = 0.
        let grad: Vec<f64> = ys.iter().map(|y| -y).collect();
        let hess = vec![1.0; ys.len()];
        let rows: Vec<usize> = (0..ys.len()).collect();
        let tree = Tree::fit(
            &binned,
            data.num_features(),
            &mapper,
            &grad,
            &hess,
            &rows,
            params,
        );
        (tree, data)
    }

    #[test]
    fn fits_a_simple_step_function() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..100).map(|i| if i < 50 { 0.0 } else { 10.0 }).collect();
        let params = TreeParams {
            l2_lambda: 0.0,
            ..Default::default()
        };
        let (tree, _) = fit_regression(xs, ys, params);
        assert!(tree.predict_row(&[10.0]) < 1.0);
        assert!(tree.predict_row(&[90.0]) > 9.0);
        assert!(tree.num_leaves() >= 2);
    }

    #[test]
    fn respects_max_depth() {
        let xs: Vec<Vec<f64>> = (0..256).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..256).map(|i| (i % 17) as f64).collect();
        let params = TreeParams {
            max_depth: 3,
            min_samples_leaf: 1,
            ..Default::default()
        };
        let (tree, _) = fit_regression(xs, ys, params);
        assert!(tree.depth() <= 3, "depth {}", tree.depth());
        assert!(tree.num_leaves() <= 8);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let ys = vec![3.0; 50];
        let (tree, _) = fit_regression(xs, ys, TreeParams::default());
        assert_eq!(tree.num_leaves(), 1);
        // Leaf value shrunk slightly by lambda but close to 3.
        assert!((tree.predict_row(&[25.0]) - 3.0).abs() < 0.2);
    }

    #[test]
    fn min_samples_leaf_prevents_tiny_leaves() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        // Single outlier target value.
        let ys: Vec<f64> = (0..20).map(|i| if i == 0 { 100.0 } else { 0.0 }).collect();
        let params = TreeParams {
            min_samples_leaf: 5,
            l2_lambda: 0.0,
            ..Default::default()
        };
        let (tree, _) = fit_regression(xs, ys, params);
        // The outlier cannot be isolated because that leaf would have 1 row.
        for n in tree.nodes() {
            if n.is_leaf() {
                assert!(n.value < 100.0);
            }
        }
    }

    #[test]
    fn uses_the_informative_feature() {
        // Feature 1 is pure noise (constant); feature 0 is informative.
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, 1.0]).collect();
        let ys: Vec<f64> = (0..100).map(|i| if i < 30 { -5.0 } else { 5.0 }).collect();
        let (tree, data) = fit_regression(xs, ys, TreeParams::default());
        let mut gains = vec![0.0; data.num_features()];
        tree.accumulate_gains(&mut gains);
        assert!(gains[0] > 0.0);
        assert_eq!(gains[1], 0.0);
    }

    #[test]
    fn two_feature_interaction() {
        // y = 1 if x0 > 50 XOR x1 > 50 — needs depth 2.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for a in 0..20 {
            for b in 0..20 {
                let x0 = a as f64 * 5.0;
                let x1 = b as f64 * 5.0;
                xs.push(vec![x0, x1]);
                ys.push(if (x0 > 50.0) ^ (x1 > 50.0) { 1.0 } else { 0.0 });
            }
        }
        let params = TreeParams {
            max_depth: 4,
            min_samples_leaf: 2,
            l2_lambda: 0.0,
            ..Default::default()
        };
        let (tree, _) = fit_regression(xs, ys, params);
        assert!(tree.predict_row(&[80.0, 10.0]) > 0.8);
        assert!(tree.predict_row(&[10.0, 80.0]) > 0.8);
        assert!(tree.predict_row(&[10.0, 10.0]) < 0.2);
        assert!(tree.predict_row(&[80.0, 80.0]) < 0.2);
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn empty_rows_panics() {
        let data = Dataset::from_rows(vec![vec![1.0]], vec![0]).unwrap();
        let mapper = BinMapper::fit(&data, 8);
        let binned = mapper.bin_dataset(&data);
        let _ = Tree::fit(
            &binned,
            1,
            &mapper,
            &[0.0],
            &[1.0],
            &[],
            TreeParams::default(),
        );
    }

    #[test]
    fn serde_round_trip() {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let (tree, _) = fit_regression(xs, ys, TreeParams::default());
        let s = serde_json::to_string(&tree).unwrap();
        let back: Tree = serde_json::from_str(&s).unwrap();
        assert_eq!(tree.num_nodes(), back.num_nodes());
        // serde_json's default float parsing may lose the last ULP, so compare
        // predictions approximately rather than node-by-node equality.
        for x in [0.0, 5.0, 17.0, 33.0, 39.0] {
            assert!((tree.predict_row(&[x]) - back.predict_row(&[x])).abs() < 1e-9);
        }
    }
}
