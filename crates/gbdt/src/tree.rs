//! Single regression trees fit to gradient/hessian statistics.
//!
//! Trees are grown greedily and depth-first using per-feature histograms of
//! first- and second-order gradient sums ("histogram split finding"). Leaf
//! values use the standard second-order (Newton) estimate `-G / (H + λ)`.
//!
//! The histogram hot path runs on the engine in [`crate::histogram`]:
//! column-major bins, pooled buffers, and (by default) the sibling
//! subtraction trick — see [`HistogramMode`] for the two build strategies
//! and their determinism contract.

use crate::binning::BinMapper;
use crate::histogram::{
    fill_histogram, subtract_sibling, BinnedMatrix, FeatureLayout, HistBin, HistogramMode,
    HistogramPool,
};
use serde::{Deserialize, Serialize};

/// Hyperparameters of a single tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0). The paper uses 6.
    pub max_depth: usize,
    /// Minimum number of training rows in each child of a split.
    pub min_samples_leaf: usize,
    /// L2 regularization on leaf values (λ).
    pub l2_lambda: f64,
    /// Minimum split gain required to split a node (γ).
    pub min_split_gain: f64,
    /// How per-node histograms are built (see [`HistogramMode`]). The
    /// default, [`HistogramMode::Subtraction`], halves histogram work per
    /// level; [`HistogramMode::Rebuild`] is the bit-exact reference path.
    pub histogram_mode: HistogramMode,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 6,
            min_samples_leaf: 5,
            l2_lambda: 1.0,
            min_split_gain: 1e-6,
            histogram_mode: HistogramMode::default(),
        }
    }
}

/// One node of a fitted tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Feature index this node splits on (unused for leaves).
    pub feature: u32,
    /// Real-valued threshold: rows with `value <= threshold` go left.
    pub threshold: f64,
    /// Index of the left child in the node array, or -1 for leaves.
    pub left: i32,
    /// Index of the right child in the node array, or -1 for leaves.
    pub right: i32,
    /// Prediction value (only meaningful for leaves).
    pub value: f64,
    /// Gain achieved by this node's split (0 for leaves).
    pub gain: f64,
}

impl Node {
    /// Whether this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.left < 0
    }
}

/// A fitted regression tree.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
}

/// A fitted tree plus the leaf value assigned to every row of the binned
/// matrix, harvested from the row partition the fit computes anyway.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredFit {
    /// The fitted tree.
    pub tree: Tree,
    /// `row_values[i]` is the value of the leaf row `i` lands in — for
    /// **all** rows of the binned matrix, not just the fitted subsample.
    /// Boosting score updates become one add per row with no tree walk;
    /// the values are bit-identical to walking the fitted tree with
    /// [`Tree::predict_row`] on the raw features.
    pub row_values: Vec<f64>,
}

struct FitContext<'a> {
    binned: &'a BinnedMatrix,
    mapper: &'a BinMapper,
    layout: FeatureLayout,
    grad: &'a [f64],
    hess: &'a [f64],
    params: TreeParams,
    /// Worker threads for the per-node column-parallel histogram fill
    /// (1 = sequential).
    parallelism: usize,
}

struct BestSplit {
    feature: usize,
    bin: usize,
    gain: f64,
}

impl Tree {
    /// Fit a tree to the gradient/hessian statistics of the rows listed in
    /// `rows`.
    ///
    /// * `binned` is the column-major bin matrix produced by
    ///   [`BinMapper::bin_dataset`].
    /// * `grad`/`hess` are per-row first/second order derivatives of the loss.
    ///
    /// # Panics
    /// Panics if `rows` is empty or the inputs disagree on the number of rows.
    pub fn fit(
        binned: &BinnedMatrix,
        mapper: &BinMapper,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        params: TreeParams,
    ) -> Tree {
        Self::fit_with_parallelism(binned, mapper, grad, hess, rows, params, 1)
    }

    /// Like [`Tree::fit`], but filling each node's per-feature histograms
    /// column-parallel on up to `parallelism` threads of the shared executor
    /// pool (`0` = inherit the ambient thread budget, `1` = strictly
    /// sequential — including any parallelism nested below this call).
    ///
    /// The result is **bit-identical** to the sequential fit: each feature
    /// column is filled in row order by exactly one task and the per-feature
    /// histograms are reduced in feature order, so no float accumulation
    /// order depends on the thread count or steal schedule.
    ///
    /// # Panics
    /// Panics if `rows` is empty or the inputs disagree on the number of rows.
    pub fn fit_with_parallelism(
        binned: &BinnedMatrix,
        mapper: &BinMapper,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        params: TreeParams,
        parallelism: usize,
    ) -> Tree {
        Self::fit_impl(binned, mapper, grad, hess, rows, params, parallelism, false).tree
    }

    /// Like [`Tree::fit_with_parallelism`], but additionally returning the
    /// fitted leaf value of **every** row of `binned` (not just `rows`),
    /// harvested by threading a second index partition through the same
    /// splits the fit performs. See [`ScoredFit`].
    ///
    /// # Panics
    /// Panics if `rows` is empty or the inputs disagree on the number of rows.
    pub fn fit_scored(
        binned: &BinnedMatrix,
        mapper: &BinMapper,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        params: TreeParams,
        parallelism: usize,
    ) -> ScoredFit {
        Self::fit_impl(binned, mapper, grad, hess, rows, params, parallelism, true)
    }

    #[allow(clippy::too_many_arguments)]
    fn fit_impl(
        binned: &BinnedMatrix,
        mapper: &BinMapper,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        params: TreeParams,
        parallelism: usize,
        track_all_rows: bool,
    ) -> ScoredFit {
        assert!(!rows.is_empty(), "cannot fit a tree on zero rows");
        assert_eq!(grad.len(), hess.len(), "grad and hess must be parallel");
        assert_eq!(
            binned.num_rows(),
            grad.len(),
            "binned matrix shape mismatch"
        );
        let layout = FeatureLayout::from_mapper(mapper);
        let mut pool = HistogramPool::new(layout.clone());
        let ctx = FitContext {
            binned,
            mapper,
            layout,
            grad,
            hess,
            params,
            parallelism: byom_exec::resolve_threads(parallelism),
        };
        let mut tree = Tree { nodes: Vec::new() };
        let mut rows_owned: Vec<usize> = rows.to_vec();
        let (mut tracked, mut row_values) = if track_all_rows {
            (
                (0..binned.num_rows()).collect(),
                vec![0.0; binned.num_rows()],
            )
        } else {
            (Vec::new(), Vec::new())
        };
        tree.build_node(
            &ctx,
            &mut pool,
            &mut rows_owned,
            &mut tracked,
            None,
            0,
            &mut row_values,
        );
        ScoredFit { tree, row_values }
    }

    /// Recursively build the subtree for `rows`, returning the node index.
    ///
    /// `hist` is this node's histogram when the parent already produced it
    /// (subtraction mode); `None` means "build from `rows` if a split will
    /// actually be searched". `tracked` carries the full-training-set row
    /// partition for [`Tree::fit_scored`] (empty when not tracking).
    #[allow(clippy::too_many_arguments)]
    fn build_node(
        &mut self,
        ctx: &FitContext<'_>,
        pool: &mut HistogramPool,
        rows: &mut [usize],
        tracked: &mut [usize],
        hist: Option<Vec<HistBin>>,
        depth: usize,
        row_values: &mut [f64],
    ) -> usize {
        let (g_sum, h_sum) = rows.iter().fold((0.0, 0.0), |(g, h), &i| {
            (
                g + ctx.grad.get(i).copied().unwrap_or(0.0),
                h + ctx.hess.get(i).copied().unwrap_or(0.0),
            )
        });
        let leaf_value = -g_sum / (h_sum + ctx.params.l2_lambda);

        let node_idx = self.nodes.len();
        self.nodes.push(Node {
            feature: 0,
            threshold: 0.0,
            left: -1,
            right: -1,
            value: leaf_value,
            gain: 0.0,
        });

        if depth >= ctx.params.max_depth || rows.len() < 2 * ctx.params.min_samples_leaf {
            Self::record_leaf(tracked, leaf_value, row_values);
            if let Some(h) = hist {
                pool.release(h);
            }
            return node_idx;
        }

        // This node's histogram: handed down by the parent in subtraction
        // mode, otherwise built from this node's rows (column-parallel for
        // large nodes).
        let mut hist = match hist {
            Some(h) => h,
            None => {
                let mut h = pool.acquire();
                fill_histogram(
                    &mut h,
                    &ctx.layout,
                    ctx.binned,
                    ctx.grad,
                    ctx.hess,
                    rows,
                    ctx.parallelism,
                );
                h
            }
        };

        let Some(best) = Self::best_split(ctx, &hist, rows.len(), g_sum, h_sum) else {
            Self::record_leaf(tracked, leaf_value, row_values);
            pool.release(hist);
            return node_idx;
        };

        // Partition rows in place: left = bin <= best.bin. The exact swap
        // permutation is part of the determinism contract (row order feeds
        // the children's float accumulations), so this stays a swap loop.
        let threshold = ctx.mapper.edge(best.feature, best.bin);
        let column = ctx.binned.column(best.feature);
        let split_point = Self::partition(rows, column, best.bin);
        if split_point == 0
            || split_point == rows.len()
            || split_point < ctx.params.min_samples_leaf
            || rows.len() - split_point < ctx.params.min_samples_leaf
        {
            Self::record_leaf(tracked, leaf_value, row_values);
            pool.release(hist);
            return node_idx;
        }
        let tracked_split = Self::partition(tracked, column, best.bin);

        let (left_rows, right_rows) = rows.split_at_mut(split_point);
        let (left_tracked, right_tracked) = tracked.split_at_mut(tracked_split);

        // Child histograms. Rebuild mode: children refill from their own
        // rows. Subtraction mode: fill only the smaller child and derive
        // the sibling as `parent − child` in the parent's buffer — unless
        // neither child can split, in which case no histogram is needed.
        let (left_hist, right_hist) = match ctx.params.histogram_mode {
            HistogramMode::Rebuild => {
                pool.release(hist);
                (None, None)
            }
            HistogramMode::Subtraction => {
                let left_splits = Self::may_split(ctx, left_rows.len(), depth + 1);
                let right_splits = Self::may_split(ctx, right_rows.len(), depth + 1);
                if !left_splits && !right_splits {
                    pool.release(hist);
                    (None, None)
                } else {
                    let (small_rows, small_is_left) = if left_rows.len() <= right_rows.len() {
                        (&*left_rows, true)
                    } else {
                        (&*right_rows, false)
                    };
                    let mut small = pool.acquire();
                    fill_histogram(
                        &mut small,
                        &ctx.layout,
                        ctx.binned,
                        ctx.grad,
                        ctx.hess,
                        small_rows,
                        ctx.parallelism,
                    );
                    subtract_sibling(&mut hist, &small);
                    let (mut lh, mut rh) = if small_is_left {
                        (Some(small), Some(hist))
                    } else {
                        (Some(hist), Some(small))
                    };
                    if !left_splits {
                        if let Some(h) = lh.take() {
                            pool.release(h);
                        }
                    }
                    if !right_splits {
                        if let Some(h) = rh.take() {
                            pool.release(h);
                        }
                    }
                    (lh, rh)
                }
            }
        };

        let left_idx = self.build_node(
            ctx,
            pool,
            left_rows,
            left_tracked,
            left_hist,
            depth + 1,
            row_values,
        );
        let right_idx = self.build_node(
            ctx,
            pool,
            right_rows,
            right_tracked,
            right_hist,
            depth + 1,
            row_values,
        );

        if let Some(node) = self.nodes.get_mut(node_idx) {
            node.feature = best.feature as u32;
            node.threshold = threshold;
            node.left = left_idx as i32;
            node.right = right_idx as i32;
            node.gain = best.gain;
        }
        node_idx
    }

    /// Whether a child with `num_rows` rows at `depth` will search a split
    /// (the exact complement of the leaf early-outs at node entry) — and
    /// therefore whether it needs a histogram at all.
    fn may_split(ctx: &FitContext<'_>, num_rows: usize, depth: usize) -> bool {
        depth < ctx.params.max_depth && num_rows >= 2 * ctx.params.min_samples_leaf
    }

    /// Swap-partition `rows` so indices whose bin in `column` is
    /// `<= split_bin` come first; returns the split point. The swap
    /// permutation is deterministic and shared by the sample and tracked
    /// partitions.
    fn partition(rows: &mut [usize], column: &[u16], split_bin: usize) -> usize {
        let mut split_point = 0;
        for i in 0..rows.len() {
            let row = rows.get(i).copied().unwrap_or(0);
            let bin = column.get(row).copied().unwrap_or(0) as usize;
            if bin <= split_bin {
                rows.swap(i, split_point);
                split_point += 1;
            }
        }
        split_point
    }

    /// Record `value` as the fitted leaf value of every tracked row.
    fn record_leaf(tracked: &[usize], value: f64, row_values: &mut [f64]) {
        for &i in tracked {
            if let Some(slot) = row_values.get_mut(i) {
                *slot = value;
            }
        }
    }

    /// The best split across all features, scanning the node's histogram.
    /// Features and bins are visited in order with a strict `>` comparison,
    /// so ties break toward the lowest feature index then the lowest bin —
    /// exactly as the pre-engine per-feature loop did.
    fn best_split(
        ctx: &FitContext<'_>,
        hist: &[HistBin],
        num_rows: usize,
        g_total: f64,
        h_total: f64,
    ) -> Option<BestSplit> {
        let lambda = ctx.params.l2_lambda;
        let parent_score = g_total * g_total / (h_total + lambda);
        let mut best: Option<BestSplit> = None;
        for f in 0..ctx.layout.num_features() {
            let Some(bins) = hist.get(ctx.layout.feature_range(f)) else {
                continue;
            };
            if bins.len() < 2 {
                continue;
            }
            // Scan split points (split after bin b: left = bins 0..=b).
            let mut g_left = 0.0;
            let mut h_left = 0.0;
            let mut c_left = 0usize;
            let last = bins.len() - 1;
            for (b, bin) in bins.iter().enumerate().take(last) {
                g_left += bin.grad;
                h_left += bin.hess;
                c_left += bin.count as usize;
                let c_right = num_rows.saturating_sub(c_left);
                if c_left < ctx.params.min_samples_leaf || c_right < ctx.params.min_samples_leaf {
                    continue;
                }
                let g_right = g_total - g_left;
                let h_right = h_total - h_left;
                let gain = 0.5
                    * (g_left * g_left / (h_left + lambda)
                        + g_right * g_right / (h_right + lambda)
                        - parent_score);
                if gain > ctx.params.min_split_gain && best.as_ref().is_none_or(|s| gain > s.gain) {
                    best = Some(BestSplit {
                        feature: f,
                        bin: b,
                        gain,
                    });
                }
            }
        }
        best
    }

    /// Predict the tree's output for one raw (unbinned) feature row.
    ///
    /// Features the row is too short to provide compare as missing and
    /// follow the right branch; callers that want an error instead should
    /// validate the row length first (the GBDT layer's `try_predict*` APIs
    /// do).
    ///
    /// # Panics
    /// Panics if the tree is empty (never fitted).
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        assert!(!self.nodes.is_empty(), "tree has no nodes");
        let mut idx = 0usize;
        loop {
            let Some(node) = self.nodes.get(idx) else {
                // Child indices are produced by `build_node` and always
                // point into `nodes`; a malformed hand-built tree is the
                // only way here.
                unreachable!("tree walk reached node index {idx} out of bounds");
            };
            if node.is_leaf() {
                return node.value;
            }
            let value = row.get(node.feature as usize).copied().unwrap_or(f64::NAN);
            idx = if value <= node.threshold {
                node.left as usize
            } else {
                node.right as usize
            };
        }
    }

    /// Number of nodes in the tree.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves in the tree.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Maximum depth of the fitted tree (root = 0; empty tree = 0).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], idx: usize) -> usize {
            match nodes.get(idx) {
                None => 0,
                Some(n) if n.is_leaf() => 0,
                Some(n) => {
                    1 + depth_of(nodes, n.left as usize).max(depth_of(nodes, n.right as usize))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }

    /// The nodes of the tree (root first).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Accumulate this tree's split gains into `out[feature]`. Features
    /// beyond `out.len()` are ignored; size `out` to the model's feature
    /// count to capture every gain.
    pub fn accumulate_gains(&self, out: &mut [f64]) {
        for n in &self.nodes {
            if !n.is_leaf() {
                if let Some(slot) = out.get_mut(n.feature as usize) {
                    *slot += n.gain;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    /// Fit a tree to a regression target using squared loss (hess = 1).
    fn fit_regression(xs: Vec<Vec<f64>>, ys: Vec<f64>, params: TreeParams) -> (Tree, Dataset) {
        let labels = vec![0usize; ys.len()];
        let data = Dataset::from_rows(xs, labels).unwrap();
        let mapper = BinMapper::fit(&data, 64);
        let binned = mapper.bin_dataset(&data);
        // Squared loss: grad = pred - y with pred = 0.
        let grad: Vec<f64> = ys.iter().map(|y| -y).collect();
        let hess = vec![1.0; ys.len()];
        let rows: Vec<usize> = (0..ys.len()).collect();
        let tree = Tree::fit(&binned, &mapper, &grad, &hess, &rows, params);
        (tree, data)
    }

    #[test]
    fn fits_a_simple_step_function() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..100).map(|i| if i < 50 { 0.0 } else { 10.0 }).collect();
        let params = TreeParams {
            l2_lambda: 0.0,
            ..Default::default()
        };
        let (tree, _) = fit_regression(xs, ys, params);
        assert!(tree.predict_row(&[10.0]) < 1.0);
        assert!(tree.predict_row(&[90.0]) > 9.0);
        assert!(tree.num_leaves() >= 2);
    }

    #[test]
    fn respects_max_depth() {
        let xs: Vec<Vec<f64>> = (0..256).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..256).map(|i| (i % 17) as f64).collect();
        let params = TreeParams {
            max_depth: 3,
            min_samples_leaf: 1,
            ..Default::default()
        };
        let (tree, _) = fit_regression(xs, ys, params);
        assert!(tree.depth() <= 3, "depth {}", tree.depth());
        assert!(tree.num_leaves() <= 8);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let ys = vec![3.0; 50];
        let (tree, _) = fit_regression(xs, ys, TreeParams::default());
        assert_eq!(tree.num_leaves(), 1);
        // Leaf value shrunk slightly by lambda but close to 3.
        assert!((tree.predict_row(&[25.0]) - 3.0).abs() < 0.2);
    }

    #[test]
    fn min_samples_leaf_prevents_tiny_leaves() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        // Single outlier target value.
        let ys: Vec<f64> = (0..20).map(|i| if i == 0 { 100.0 } else { 0.0 }).collect();
        let params = TreeParams {
            min_samples_leaf: 5,
            l2_lambda: 0.0,
            ..Default::default()
        };
        let (tree, _) = fit_regression(xs, ys, params);
        // The outlier cannot be isolated because that leaf would have 1 row.
        for n in tree.nodes() {
            if n.is_leaf() {
                assert!(n.value < 100.0);
            }
        }
    }

    #[test]
    fn uses_the_informative_feature() {
        // Feature 1 is pure noise (constant); feature 0 is informative.
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, 1.0]).collect();
        let ys: Vec<f64> = (0..100).map(|i| if i < 30 { -5.0 } else { 5.0 }).collect();
        let (tree, data) = fit_regression(xs, ys, TreeParams::default());
        let mut gains = vec![0.0; data.num_features()];
        tree.accumulate_gains(&mut gains);
        assert!(gains[0] > 0.0);
        assert_eq!(gains[1], 0.0);
    }

    #[test]
    fn two_feature_interaction() {
        // y = 1 if x0 > 50 XOR x1 > 50 — needs depth 2.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for a in 0..20 {
            for b in 0..20 {
                let x0 = a as f64 * 5.0;
                let x1 = b as f64 * 5.0;
                xs.push(vec![x0, x1]);
                ys.push(if (x0 > 50.0) ^ (x1 > 50.0) { 1.0 } else { 0.0 });
            }
        }
        let params = TreeParams {
            max_depth: 4,
            min_samples_leaf: 2,
            l2_lambda: 0.0,
            ..Default::default()
        };
        let (tree, _) = fit_regression(xs, ys, params);
        assert!(tree.predict_row(&[80.0, 10.0]) > 0.8);
        assert!(tree.predict_row(&[10.0, 80.0]) > 0.8);
        assert!(tree.predict_row(&[10.0, 10.0]) < 0.2);
        assert!(tree.predict_row(&[80.0, 80.0]) < 0.2);
    }

    #[test]
    fn both_modes_learn_the_same_structure() {
        let xs: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![(i % 37) as f64, (i % 11) as f64])
            .collect();
        let ys: Vec<f64> = (0..300)
            .map(|i| ((i % 37) as f64 * 0.3 - (i % 11) as f64).tanh())
            .collect();
        let sub = TreeParams {
            histogram_mode: HistogramMode::Subtraction,
            ..Default::default()
        };
        let reb = TreeParams {
            histogram_mode: HistogramMode::Rebuild,
            ..Default::default()
        };
        let (t_sub, _) = fit_regression(xs.clone(), ys.clone(), sub);
        let (t_reb, _) = fit_regression(xs, ys, reb);
        assert_eq!(t_sub.num_nodes(), t_reb.num_nodes());
        for (a, b) in t_sub.nodes().iter().zip(t_reb.nodes()) {
            assert_eq!(a.feature, b.feature);
            assert_eq!(a.left, b.left);
            assert_eq!(a.right, b.right);
            assert_eq!(a.threshold, b.threshold);
            assert!((a.value - b.value).abs() < 1e-9);
        }
    }

    #[test]
    fn scored_fit_matches_tree_walk_for_every_row() {
        let xs: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 23) as f64, (i % 7) as f64])
            .collect();
        let ys: Vec<f64> = (0..200).map(|i| ((i % 23) as f64).sin()).collect();
        let labels = vec![0usize; ys.len()];
        let data = Dataset::from_rows(xs, labels).unwrap();
        let mapper = BinMapper::fit(&data, 32);
        let binned = mapper.bin_dataset(&data);
        let grad: Vec<f64> = ys.iter().map(|y| -y).collect();
        let hess = vec![1.0; ys.len()];
        // Fit on a strict subsample; scores must still cover every row.
        let sample: Vec<usize> = (0..200).filter(|i| i % 3 != 0).collect();
        let fit = Tree::fit_scored(
            &binned,
            &mapper,
            &grad,
            &hess,
            &sample,
            TreeParams::default(),
            1,
        );
        assert_eq!(fit.row_values.len(), 200);
        for i in 0..200 {
            assert_eq!(
                fit.row_values[i],
                fit.tree.predict_row(data.row(i)),
                "row {i} diverged from the tree walk"
            );
        }
    }

    #[test]
    fn short_rows_follow_the_missing_branch() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![1.0, i as f64]).collect();
        let ys: Vec<f64> = (0..100).map(|i| if i < 50 { 0.0 } else { 10.0 }).collect();
        let (tree, _) = fit_regression(xs, ys, TreeParams::default());
        // The tree splits on feature 1; a 1-feature row treats it as missing
        // (NaN compares false) and follows the right branch instead of
        // panicking.
        let v = tree.predict_row(&[1.0]);
        assert!(v.is_finite());
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn empty_rows_panics() {
        let data = Dataset::from_rows(vec![vec![1.0]], vec![0]).unwrap();
        let mapper = BinMapper::fit(&data, 8);
        let binned = mapper.bin_dataset(&data);
        let _ = Tree::fit(&binned, &mapper, &[0.0], &[1.0], &[], TreeParams::default());
    }

    #[test]
    fn serde_round_trip() {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let (tree, _) = fit_regression(xs, ys, TreeParams::default());
        let s = serde_json::to_string(&tree).unwrap();
        let back: Tree = serde_json::from_str(&s).unwrap();
        assert_eq!(tree.num_nodes(), back.num_nodes());
        // serde_json's default float parsing may lose the last ULP, so compare
        // predictions approximately rather than node-by-node equality.
        for x in [0.0, 5.0, 17.0, 33.0, 39.0] {
            assert!((tree.predict_row(&[x]) - back.predict_row(&[x])).abs() < 1e-9);
        }
    }
}
