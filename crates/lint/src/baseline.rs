//! The committed violations baseline.
//!
//! `check` fails only on findings *beyond* the baseline (and beyond any
//! `[[allow]]` budget), so a rule can be introduced without first fixing
//! every historical violation; `bless` rewrites the baseline to the current
//! state. The format is deliberately diff-friendly: one line per
//! `(rule, path)` pair, tab-separated, sorted.

use std::collections::BTreeMap;
use std::path::Path;

/// Findings-per-(rule, path) counts.
pub type Counts = BTreeMap<(String, String), usize>;

const HEADER: &str = "\
# byom_lint baseline — accepted historical violations, one `rule<TAB>path<TAB>count`
# per line. Regenerate with `cargo run -p byom_lint -- bless`. An empty
# baseline means the tree is clean modulo the justified [[allow]] entries in
# lint.toml.
";

/// Parse a baseline file's contents. Unknown or malformed lines are errors —
/// a corrupted baseline must not silently accept violations.
pub fn parse(source: &str) -> Result<Counts, String> {
    let mut counts = Counts::new();
    for (idx, raw) in source.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let (Some(rule), Some(path), Some(count)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "baseline line {}: expected `rule<TAB>path<TAB>count`, got `{raw}`",
                idx + 1
            ));
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("baseline line {}: bad count `{count}`", idx + 1))?;
        counts.insert((rule.to_string(), path.to_string()), count);
    }
    Ok(counts)
}

/// Load the baseline at `path`; a missing file is an empty baseline.
pub fn load(path: &Path) -> Result<Counts, String> {
    match std::fs::read_to_string(path) {
        Ok(s) => parse(&s),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Counts::new()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

/// Serialize counts back into the committed format.
pub fn render(counts: &Counts) -> String {
    let mut out = String::from(HEADER);
    for ((rule, path), count) in counts {
        out.push_str(&format!("{rule}\t{path}\t{count}\n"));
    }
    out
}

/// Write the baseline to `path`.
pub fn store(path: &Path, counts: &Counts) -> Result<(), String> {
    std::fs::write(path, render(counts))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut counts = Counts::new();
        counts.insert(("panic-surface".into(), "crates/x/src/a.rs".into()), 4);
        counts.insert(("no-wall-clock".into(), "crates/y/src/b.rs".into()), 1);
        let rendered = render(&counts);
        assert_eq!(parse(&rendered).unwrap(), counts);
    }

    #[test]
    fn empty_and_comment_lines_are_skipped() {
        assert!(parse("# header\n\n").unwrap().is_empty());
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(parse("just-one-field\n").is_err());
        assert!(parse("rule\tpath\tnot-a-number\n").is_err());
    }
}
