//! `lint.toml` — the analyzer's configuration.
//!
//! The format is a deliberately small TOML subset (the workspace vendors no
//! TOML parser and the offline policy forbids adding one): comments with
//! `#`, `[section]` and `[[array-of-tables]]` headers, and `key = value`
//! pairs where a value is a quoted string, an integer, a boolean, or an
//! array of quoted strings on one line.
//!
//! Recognised structure:
//!
//! ```toml
//! roots = ["crates", "src"]          # directories scanned for .rs files
//! exclude = ["vendor", "crates/lint"]
//!
//! [rules.no-wall-clock]              # per-rule path scoping
//! paths = ["crates"]                 # only these prefixes (default: all roots)
//! exclude = ["crates/bench"]         # minus these prefixes
//!
//! [[allow]]                          # a justified suppression
//! rule = "panic-surface"
//! path = "crates/gbdt/src/gbm.rs"
//! max = 14                           # omitted => unlimited
//! reason = "hot-path flat-array indexing"
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Scoping for one rule: which repo-relative path prefixes it applies to.
#[derive(Debug, Clone, Default)]
pub struct RuleScope {
    /// Path prefixes the rule is restricted to; empty means "everywhere".
    pub paths: Vec<String>,
    /// Path prefixes the rule skips.
    pub exclude: Vec<String>,
}

impl RuleScope {
    /// Whether the rule applies to a repo-relative file path.
    pub fn applies_to(&self, rel_path: &str) -> bool {
        let included =
            self.paths.is_empty() || self.paths.iter().any(|p| path_has_prefix(rel_path, p));
        included && !self.exclude.iter().any(|p| path_has_prefix(rel_path, p))
    }
}

/// One `[[allow]]` entry: a justified suppression of findings.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub rule: String,
    /// Repo-relative path prefix (a file or a directory).
    pub path: String,
    /// Maximum number of findings tolerated; `None` means unlimited.
    pub max: Option<usize>,
    /// Human justification — required, so every suppression is documented.
    pub reason: String,
}

/// The parsed configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    pub roots: Vec<String>,
    pub exclude: Vec<String>,
    pub rules: BTreeMap<String, RuleScope>,
    pub allow: Vec<AllowEntry>,
}

/// A configuration parse error with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Scope for a rule name: the configured scope, or an everywhere-scope
    /// for rules without a `[rules.<name>]` section.
    pub fn scope(&self, rule: &str) -> RuleScope {
        self.rules.get(rule).cloned().unwrap_or_default()
    }

    /// The allow entry (if any) covering findings of `rule` in `rel_path`.
    pub fn allow_for(&self, rule: &str, rel_path: &str) -> Option<&AllowEntry> {
        self.allow
            .iter()
            .find(|a| a.rule == rule && path_has_prefix(rel_path, &a.path))
    }

    /// Whether a repo-relative path is excluded from scanning entirely.
    pub fn is_excluded(&self, rel_path: &str) -> bool {
        self.exclude.iter().any(|p| path_has_prefix(rel_path, p))
    }
}

/// Prefix match on path components: `crates/gbdt` matches
/// `crates/gbdt/src/gbm.rs` but not `crates/gbdt2/...`.
pub fn path_has_prefix(rel_path: &str, prefix: &str) -> bool {
    rel_path == prefix
        || rel_path
            .strip_prefix(prefix)
            .is_some_and(|rest| rest.starts_with('/'))
}

/// Parse a configuration file's contents.
pub fn parse(source: &str) -> Result<Config, ConfigError> {
    let mut config = Config::default();
    // Which table `key = value` lines currently land in.
    enum Section {
        Top,
        Rule(String),
        Allow,
    }
    let mut section = Section::Top;
    // Pending allow entry being accumulated.
    let mut pending: Option<(String, String, Option<usize>, String)> = None;

    let flush = |pending: &mut Option<(String, String, Option<usize>, String)>,
                 out: &mut Vec<AllowEntry>,
                 line: u32|
     -> Result<(), ConfigError> {
        if let Some((rule, path, max, reason)) = pending.take() {
            if rule.is_empty() || path.is_empty() {
                return Err(ConfigError {
                    line,
                    message: "[[allow]] entry needs both `rule` and `path`".into(),
                });
            }
            if reason.is_empty() {
                return Err(ConfigError {
                    line,
                    message: format!("[[allow]] entry for {rule} at {path} needs a `reason`"),
                });
            }
            out.push(AllowEntry {
                rule,
                path,
                max,
                reason,
            });
        }
        Ok(())
    };

    let raw_lines: Vec<&str> = source.lines().collect();
    let mut idx = 0usize;
    while idx < raw_lines.len() {
        let lineno = idx as u32 + 1;
        let mut line = strip_comment(raw_lines[idx]).trim().to_string();
        // Multi-line arrays: keep consuming lines until the bracket closes.
        while line.contains('[')
            && !line.starts_with('[')
            && !line.contains(']')
            && idx + 1 < raw_lines.len()
        {
            idx += 1;
            line.push(' ');
            line.push_str(strip_comment(raw_lines[idx]).trim());
        }
        idx += 1;
        let line = line.as_str();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            flush(&mut pending, &mut config.allow, lineno)?;
            if header.trim() != "allow" {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("unknown array section [[{header}]]"),
                });
            }
            section = Section::Allow;
            pending = Some((String::new(), String::new(), None, String::new()));
            continue;
        }
        if let Some(header) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            flush(&mut pending, &mut config.allow, lineno)?;
            let header = header.trim();
            match header.strip_prefix("rules.") {
                Some(rule) if !rule.is_empty() => {
                    section = Section::Rule(rule.to_string());
                    config.rules.entry(rule.to_string()).or_default();
                }
                _ => {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unknown section [{header}]"),
                    })
                }
            }
            continue;
        }
        let (key, value) = split_kv(line, lineno)?;
        match &mut section {
            Section::Top => match key {
                "roots" => config.roots = parse_string_array(value, lineno)?,
                "exclude" => config.exclude = parse_string_array(value, lineno)?,
                _ => {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unknown top-level key `{key}`"),
                    })
                }
            },
            Section::Rule(name) => {
                let scope = config.rules.entry(name.clone()).or_default();
                match key {
                    "paths" => scope.paths = parse_string_array(value, lineno)?,
                    "exclude" => scope.exclude = parse_string_array(value, lineno)?,
                    _ => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unknown rule key `{key}`"),
                        })
                    }
                }
            }
            Section::Allow => {
                let entry = pending.as_mut().expect("allow section implies pending");
                match key {
                    "rule" => entry.0 = parse_string(value, lineno)?,
                    "path" => entry.1 = parse_string(value, lineno)?,
                    "max" => {
                        entry.2 = Some(value.parse::<usize>().map_err(|_| ConfigError {
                            line: lineno,
                            message: format!("`max` must be an integer, got `{value}`"),
                        })?)
                    }
                    "reason" => entry.3 = parse_string(value, lineno)?,
                    _ => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unknown allow key `{key}`"),
                        })
                    }
                }
            }
        }
    }
    let last = source.lines().count() as u32;
    flush(&mut pending, &mut config.allow, last)?;
    if config.roots.is_empty() {
        return Err(ConfigError {
            line: 0,
            message: "configuration must set `roots`".into(),
        });
    }
    Ok(config)
}

/// Parse the configuration file at `path`.
pub fn load(path: &Path) -> Result<Config, ConfigError> {
    let source = std::fs::read_to_string(path).map_err(|e| ConfigError {
        line: 0,
        message: format!("cannot read {}: {e}", path.display()),
    })?;
    parse(&source)
}

/// Remove a trailing `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn split_kv(line: &str, lineno: u32) -> Result<(&str, &str), ConfigError> {
    let (key, value) = line.split_once('=').ok_or_else(|| ConfigError {
        line: lineno,
        message: format!("expected `key = value`, got `{line}`"),
    })?;
    Ok((key.trim(), value.trim()))
}

fn parse_string(value: &str, lineno: u32) -> Result<String, ConfigError> {
    value
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| ConfigError {
            line: lineno,
            message: format!("expected a quoted string, got `{value}`"),
        })
}

fn parse_string_array(value: &str, lineno: u32) -> Result<Vec<String>, ConfigError> {
    let inner = value
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| ConfigError {
            line: lineno,
            message: format!("expected an array of strings, got `{value}`"),
        })?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        out.push(parse_string(item, lineno)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# byom_lint configuration
roots = ["crates", "src"]
exclude = ["vendor", "crates/lint"]

[rules.no-wall-clock]
exclude = ["crates/bench"]

[rules.no-unordered-iteration]
paths = ["crates/core", "crates/trace"]

[[allow]]
rule = "panic-surface"
path = "crates/gbdt/src/gbm.rs"
max = 3
reason = "hot-path indexing"
"#;

    #[test]
    fn parses_sections_and_scoping() {
        let c = parse(SAMPLE).unwrap();
        assert_eq!(c.roots, vec!["crates", "src"]);
        assert!(c.is_excluded("vendor/rand/src/lib.rs"));
        assert!(c.is_excluded("crates/lint/src/main.rs"));
        assert!(!c.is_excluded("crates/linty/src/main.rs"));

        let wc = c.scope("no-wall-clock");
        assert!(wc.applies_to("crates/sim/src/runtime.rs"));
        assert!(!wc.applies_to("crates/bench/src/harness.rs"));

        let it = c.scope("no-unordered-iteration");
        assert!(it.applies_to("crates/core/src/registry.rs"));
        assert!(!it.applies_to("crates/gbdt/src/gbm.rs"));

        // Unconfigured rules apply everywhere.
        assert!(c.scope("no-unseeded-rng").applies_to("src/lib.rs"));
    }

    #[test]
    fn allow_entries_carry_max_and_reason() {
        let c = parse(SAMPLE).unwrap();
        let a = c
            .allow_for("panic-surface", "crates/gbdt/src/gbm.rs")
            .unwrap();
        assert_eq!(a.max, Some(3));
        assert_eq!(a.reason, "hot-path indexing");
        assert!(c
            .allow_for("panic-surface", "crates/gbdt/src/tree.rs")
            .is_none());
        assert!(c
            .allow_for("no-wall-clock", "crates/gbdt/src/gbm.rs")
            .is_none());
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let bad = "roots = [\"crates\"]\n[[allow]]\nrule = \"x\"\npath = \"y\"\n";
        assert!(parse(bad).is_err());
    }

    #[test]
    fn unknown_keys_are_rejected() {
        assert!(parse("roots = [\"a\"]\nbogus = 1\n").is_err());
        assert!(parse("roots = [\"a\"]\n[weird]\n").is_err());
    }
}
