//! File walking, rule dispatch, and baseline/allowlist accounting.

use crate::baseline::{self, Counts};
use crate::config::Config;
use crate::lexer;
use crate::rules::{self, Finding};
use std::path::{Path, PathBuf};

/// The result of a `check` run.
#[derive(Debug, Clone, Default)]
pub struct CheckOutcome {
    pub files_scanned: usize,
    /// Every finding, before any suppression.
    pub total_findings: usize,
    /// Findings covered by `[[allow]]` budgets.
    pub allowed_findings: usize,
    /// Number of `[[allow]]` entries that matched at least one finding.
    pub allow_entries_used: usize,
    /// Findings covered by the committed baseline.
    pub baselined_findings: usize,
    /// Findings beyond all budgets. Non-empty means the check fails. When a
    /// `(rule, path)` group exceeds its budget, *all* of the group's findings
    /// are listed (a token-level analyzer cannot tell which one is new).
    pub new_findings: Vec<Finding>,
    /// Staleness and budget-slack diagnostics (never affect the exit code).
    pub notes: Vec<String>,
}

/// Recursively collect the repo-relative paths of every `.rs` file under the
/// configured roots, in sorted order (so runs are deterministic).
pub fn collect_files(root: &Path, config: &Config) -> Result<Vec<String>, String> {
    let mut files = Vec::new();
    for top in &config.roots {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(root, &dir, config, &mut files)?;
        } else if dir.is_file() && top.ends_with(".rs") && !config.is_excluded(top) {
            files.push(top.clone());
        }
    }
    files.sort();
    files.dedup();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, config: &Config, out: &mut Vec<String>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => continue,
        };
        if config.is_excluded(&rel) {
            continue;
        }
        if path.is_dir() {
            // Never descend into build output.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk(root, &path, config, out)?;
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Lex every file and run each rule that is in scope for it. Returns the
/// number of files scanned and all findings, sorted.
pub fn scan(root: &Path, config: &Config) -> Result<(usize, Vec<Finding>), String> {
    let files = collect_files(root, config)?;
    let mut findings = Vec::new();
    for rel in &files {
        let source = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("cannot read {rel}: {e}"))?;
        let lexed = lexer::lex(&source);
        for &rule in rules::ALL_RULES {
            if !config.scope(rule).applies_to(rel) {
                continue;
            }
            for mut f in rules::run_rule(rule, &lexed) {
                f.path = rel.clone();
                findings.push(f);
            }
        }
    }
    findings.sort();
    Ok((files.len(), findings))
}

/// Aggregate findings into per-`(rule, path)` counts.
pub fn count(findings: &[Finding]) -> Counts {
    let mut counts = Counts::new();
    for f in findings {
        *counts
            .entry((f.rule.to_string(), f.path.clone()))
            .or_insert(0) += 1;
    }
    counts
}

/// Run a full check: scan, then charge each `(rule, path)` group first
/// against its `[[allow]]` budget, then against the baseline; whatever is
/// left is a new violation.
pub fn check(root: &Path, config: &Config, baseline_path: &Path) -> Result<CheckOutcome, String> {
    let (files_scanned, findings) = scan(root, config)?;
    let base = baseline::load(baseline_path)?;
    let counts = count(&findings);

    let mut outcome = CheckOutcome {
        files_scanned,
        total_findings: findings.len(),
        ..CheckOutcome::default()
    };

    let mut used_allow_entries = std::collections::BTreeSet::new();
    for ((rule, path), &n) in &counts {
        let allow = config.allow_for(rule, path);
        let allow_budget = allow.map_or(0, |a| a.max.unwrap_or(usize::MAX));
        let covered_by_allow = n.min(allow_budget);
        if let Some(a) = allow {
            if covered_by_allow > 0 {
                used_allow_entries.insert((a.rule.clone(), a.path.clone()));
            }
            if let Some(max) = a.max {
                if n < max {
                    outcome.notes.push(format!(
                        "allow budget slack: {rule} in {path} permits {max} but only {n} \
                         remain — tighten `max` in lint.toml"
                    ));
                }
            }
        }
        let rest = n - covered_by_allow;
        let base_budget = base
            .get(&(rule.clone(), path.clone()))
            .copied()
            .unwrap_or(0);
        let covered_by_base = rest.min(base_budget);
        if base_budget > rest {
            outcome.notes.push(format!(
                "stale baseline: {rule} in {path} baselines {base_budget} but only {rest} \
                 remain — run `cargo run -p byom_lint -- bless`"
            ));
        }
        outcome.allowed_findings += covered_by_allow;
        outcome.baselined_findings += covered_by_base;
        if rest > covered_by_base {
            outcome.new_findings.extend(
                findings
                    .iter()
                    .filter(|f| f.rule == rule && &f.path == path)
                    .cloned(),
            );
        }
    }
    // Baseline entries whose files are clean (or gone) are also stale.
    for (rule, path) in base.keys() {
        if !counts.contains_key(&(rule.clone(), path.clone())) {
            outcome.notes.push(format!(
                "stale baseline: {rule} in {path} has no findings anymore — run \
                 `cargo run -p byom_lint -- bless`"
            ));
        }
    }
    outcome.allow_entries_used = used_allow_entries.len();
    outcome.new_findings.sort();
    Ok(outcome)
}

/// Rewrite the baseline to the current tree state: everything beyond the
/// `[[allow]]` budgets gets baselined. Returns the new counts.
pub fn bless(root: &Path, config: &Config, baseline_path: &Path) -> Result<Counts, String> {
    let (_, findings) = scan(root, config)?;
    let mut counts = count(&findings);
    counts.retain(|(rule, path), n| {
        let allow_budget = config
            .allow_for(rule, path)
            .map_or(0, |a| a.max.unwrap_or(usize::MAX));
        if *n > allow_budget {
            *n -= allow_budget;
            true
        } else {
            false
        }
    });
    baseline::store(baseline_path, &counts)?;
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config;

    fn write(dir: &Path, rel: &str, contents: &str) {
        let path = dir.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, contents).unwrap();
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("byom_lint_engine_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const CONFIG: &str = r#"
roots = ["src"]
exclude = []
[[allow]]
rule = "panic-surface"
path = "src/allowed.rs"
max = 1
reason = "test fixture"
"#;

    #[test]
    fn check_charges_allow_then_baseline_then_fails() {
        let root = temp_root("charge");
        write(&root, "src/allowed.rs", "fn f() { g().unwrap(); }\n");
        write(
            &root,
            "src/hot.rs",
            "fn f() { g().unwrap(); h().unwrap(); }\n",
        );
        let cfg = config::parse(CONFIG).unwrap();
        let baseline_path = root.join("lint.baseline");

        // No baseline: allowed.rs is covered by [[allow]], hot.rs is new.
        let out = check(&root, &cfg, &baseline_path).unwrap();
        assert_eq!(out.total_findings, 3);
        assert_eq!(out.allowed_findings, 1);
        assert_eq!(out.new_findings.len(), 2);
        assert!(out.new_findings.iter().all(|f| f.path == "src/hot.rs"));

        // Bless, then the same tree checks clean.
        let blessed = bless(&root, &cfg, &baseline_path).unwrap();
        assert_eq!(
            blessed
                .get(&("panic-surface".into(), "src/hot.rs".into()))
                .copied(),
            Some(2)
        );
        assert!(!blessed.contains_key(&("panic-surface".into(), "src/allowed.rs".into())));
        let out = check(&root, &cfg, &baseline_path).unwrap();
        assert!(out.new_findings.is_empty(), "{out:#?}");
        assert_eq!(out.baselined_findings, 2);

        // A new violation beyond the baseline fails again.
        write(
            &root,
            "src/hot.rs",
            "fn f() { g().unwrap(); h().unwrap(); i().unwrap(); }\n",
        );
        let out = check(&root, &cfg, &baseline_path).unwrap();
        assert_eq!(out.new_findings.len(), 3, "whole group is reported");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn fixed_violations_surface_as_stale_baseline_notes() {
        let root = temp_root("stale");
        write(&root, "src/a.rs", "fn f() { g().unwrap(); }\n");
        let cfg = config::parse("roots = [\"src\"]\n").unwrap();
        let baseline_path = root.join("lint.baseline");
        bless(&root, &cfg, &baseline_path).unwrap();

        write(&root, "src/a.rs", "fn f() -> R { g() }\n");
        let out = check(&root, &cfg, &baseline_path).unwrap();
        assert!(out.new_findings.is_empty());
        assert!(out.notes.iter().any(|n| n.contains("stale baseline")));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn files_are_collected_sorted_and_exclusions_hold() {
        let root = temp_root("walk");
        write(&root, "src/b.rs", "");
        write(&root, "src/a.rs", "");
        write(&root, "src/skip/c.rs", "");
        let cfg = config::parse("roots = [\"src\"]\nexclude = [\"src/skip\"]\n").unwrap();
        let files = collect_files(&root, &cfg).unwrap();
        assert_eq!(files, vec!["src/a.rs".to_string(), "src/b.rs".to_string()]);
        let _ = std::fs::remove_dir_all(&root);
    }
}
