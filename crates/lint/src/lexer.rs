//! A hand-rolled token-level lexer for Rust source.
//!
//! The analyzer does not need a full parse tree: every rule it enforces is
//! expressible over a flat token stream with line numbers, provided the
//! stream correctly skips comments and string/char literals (so an
//! `.unwrap()` inside a doc-comment example or a `"HashMap"` string never
//! triggers a finding). Comments are not discarded entirely — their text and
//! line are kept on the side so suppression directives like
//! `// lint: ordered-reduction` can be honoured.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// The token classes the rules care about. Literal *contents* are dropped —
/// only their presence matters for brace/paren tracking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`let`, `for`, `HashMap`, ...).
    Ident(String),
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// Any single punctuation character (`.`, `:`, `[`, `!`, ...).
    Punct(char),
    /// A numeric literal.
    Number,
    /// A string, raw-string, byte-string, or char literal.
    Literal,
}

/// A comment with its location, preserved for suppression directives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// A lexed source file: the token stream plus the comment side-channel.
#[derive(Debug, Clone, Default)]
pub struct LexedFile {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl LexedFile {
    /// Whether any comment on `line` (or the line directly above it)
    /// contains the given suppression directive text.
    pub fn has_directive_near(&self, line: u32, directive: &str) -> bool {
        self.comments
            .iter()
            .any(|c| (c.line == line || c.line + 1 == line) && c.text.contains(directive))
    }
}

/// Lex `source` into tokens and comments. Never fails: unterminated literals
/// simply consume the rest of the input (the analyzer runs on code that
/// rustc already accepted, so this is a non-issue in practice).
pub fn lex(source: &str) -> LexedFile {
    let bytes = source.as_bytes();
    let mut out = LexedFile::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                let start_line = line;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: source[start..i].to_string(),
                    line: start_line,
                });
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: source[start..i.min(source.len())].to_string(),
                    line: start_line,
                });
            }
            '"' => {
                i = skip_string(bytes, i, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
            }
            'r' | 'b' if starts_string_prefix(bytes, i) => {
                let start_line = line;
                i = skip_prefixed_string(bytes, i, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line: start_line,
                });
            }
            '\'' => {
                // Disambiguate char literal from lifetime: a lifetime is `'`
                // followed by ident chars *not* closed by a matching `'`.
                if is_char_literal(bytes, i) {
                    i = skip_char_literal(bytes, i);
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        line,
                    });
                } else {
                    i += 1;
                    while i < bytes.len() && is_ident_char(bytes[i] as char) {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                while i < bytes.len() && is_number_char(bytes[i] as char) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    line,
                });
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < bytes.len() && is_ident_char(bytes[i] as char) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident(source[start..i].to_string()),
                    line,
                });
            }
            c => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn is_number_char(c: char) -> bool {
    // Good enough for counting purposes: digits, underscores, radix letters,
    // exponents, and type suffixes all collapse into one Number token.
    // A trailing range like `0..n` is not consumed because `.` is handled
    // only when followed by a digit-compatible continuation; keep it simple
    // and exclude `.` entirely (so `1.5` lexes as Number Punct Number, which
    // no rule cares about).
    c.is_ascii_alphanumeric() || c == '_'
}

/// Does `r...` / `b...` at `i` begin a raw/byte string (as opposed to a
/// plain identifier like `result`)?
fn starts_string_prefix(bytes: &[u8], i: usize) -> bool {
    // Must not be in the middle of an identifier.
    if i > 0 && is_ident_char(bytes[i - 1] as char) {
        return false;
    }
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'r' {
        j += 1;
        while j < bytes.len() && bytes[j] == b'#' {
            j += 1;
        }
    }
    j < bytes.len() && bytes[j] == b'"' && j > i
}

fn skip_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

fn skip_prefixed_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    if bytes[i] == b'b' {
        i += 1;
    }
    if i < bytes.len() && bytes[i] == b'r' {
        i += 1;
        let mut hashes = 0usize;
        while i < bytes.len() && bytes[i] == b'#' {
            hashes += 1;
            i += 1;
        }
        i += 1; // opening quote
        while i < bytes.len() {
            if bytes[i] == b'\n' {
                *line += 1;
                i += 1;
            } else if bytes[i] == b'"' {
                let mut j = i + 1;
                let mut seen = 0usize;
                while j < bytes.len() && bytes[j] == b'#' && seen < hashes {
                    seen += 1;
                    j += 1;
                }
                if seen == hashes {
                    return j;
                }
                i += 1;
            } else {
                i += 1;
            }
        }
        i
    } else {
        // b"..."
        skip_string(bytes, i, line)
    }
}

fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    // `'x'`, `'\n'`, `'\''`, `'\u{1F600}'` are char literals; `'a` (no
    // closing quote within the escape-aware window) is a lifetime.
    let mut j = i + 1;
    if j >= bytes.len() {
        return false;
    }
    if bytes[j] == b'\\' {
        return true; // escapes only occur in char literals
    }
    // Multi-byte UTF-8 scalar: skip continuation bytes.
    j += 1;
    while j < bytes.len() && (bytes[j] & 0b1100_0000) == 0b1000_0000 {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'\''
}

fn skip_char_literal(bytes: &[u8], mut i: usize) -> usize {
    i += 1; // opening quote
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_do_not_produce_idents() {
        let src = r##"
            // HashMap in a comment
            /* unwrap() in a block /* nested */ comment */
            let s = "HashMap.unwrap()";
            let r = r#"thread_rng"#;
            let c = 'x';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'y' }").tokens;
        let lifetimes = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let literals = toks.iter().filter(|t| t.kind == TokenKind::Literal).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(literals, 1);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let lexed = lex("x\n// lint: ordered-reduction\ny");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.has_directive_near(2, "lint: ordered-reduction"));
        assert!(lexed.has_directive_near(3, "lint: ordered-reduction"));
        assert!(!lexed.has_directive_near(4, "lint: ordered-reduction"));
    }

    #[test]
    fn raw_identifier_r_is_not_a_string_prefix() {
        let ids = idents("let result = rate * r2;");
        assert!(ids.contains(&"result".to_string()));
        assert!(ids.contains(&"r2".to_string()));
    }
}
