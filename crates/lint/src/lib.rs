//! `byom_lint` — the workspace's determinism & panic-surface analyzer.
//!
//! The reproduction's value rests on bit-reproducible results: every figure
//! binary must produce the same numbers for the same seeds, at any
//! parallelism. Generic tooling cannot enforce the repo-specific contract
//! ("no unordered-map iteration in crates that feed figure outputs"), so
//! this crate implements it directly as a small, dependency-free static
//! analyzer over a hand-rolled token stream:
//!
//! * [`rules::NO_UNORDERED_ITERATION`] — no `HashMap`/`HashSet` iteration in
//!   result-affecting crates; use `BTreeMap`/`BTreeSet` or collect-and-sort.
//! * [`rules::NO_WALL_CLOCK`] — no `Instant::now`/`SystemTime` outside
//!   `crates/bench`.
//! * [`rules::NO_UNSEEDED_RNG`] — no `thread_rng`/`from_entropy`/
//!   `rand::random` anywhere.
//! * [`rules::PANIC_SURFACE`] — inventory of `unwrap`/`expect`/`panic!`/
//!   slice indexing in non-test library code, held against justified
//!   budgets.
//! * [`rules::FLOAT_REDUCTION_ORDER`] — parallel iterator chains must not
//!   end in an order-sensitive reduction unless justified inline with
//!   `// lint: ordered-reduction`.
//!
//! Scoping and justified suppressions live in `lint.toml`; accepted
//! historical violations live in `lint.baseline` (regenerate with `bless`).
//! Run `cargo run -p byom_lint -- check` (CI does) or `-- bless`.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod config;
pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;
