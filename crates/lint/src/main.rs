//! CLI entry point: `byom_lint check [--json]` / `byom_lint bless`.

#![forbid(unsafe_code)]

use byom_lint::{config, engine, report};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
byom_lint — determinism & panic-surface analyzer for this workspace

USAGE:
    cargo run -p byom_lint -- <COMMAND> [OPTIONS]

COMMANDS:
    check    scan the tree and fail (exit 1) on violations beyond the
             lint.toml allowlist and the committed baseline
    bless    rewrite the baseline to accept the current tree

OPTIONS:
    --root <DIR>        repository root to scan        [default: .]
    --config <FILE>     configuration file             [default: <root>/lint.toml]
    --baseline <FILE>   baseline file                  [default: <root>/lint.baseline]
    --json              (check) emit a JSON report instead of text
";

struct Args {
    command: String,
    root: PathBuf,
    config: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(|| "missing command".to_string())?;
    let mut parsed = Args {
        command,
        root: PathBuf::from("."),
        config: None,
        baseline: None,
        json: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => parsed.root = take_value(&mut args, "--root")?.into(),
            "--config" => parsed.config = Some(take_value(&mut args, "--config")?.into()),
            "--baseline" => parsed.baseline = Some(take_value(&mut args, "--baseline")?.into()),
            "--json" => parsed.json = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(parsed)
}

fn take_value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("lint.toml"));
    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| args.root.join("lint.baseline"));
    let config = match config::load(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    match args.command.as_str() {
        "check" => match engine::check(&args.root, &config, &baseline_path) {
            Ok(outcome) => {
                if args.json {
                    println!("{}", report::json(&outcome));
                } else {
                    print!("{}", report::human(&outcome));
                }
                if outcome.new_findings.is_empty() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::from(1)
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        },
        "bless" => match engine::bless(&args.root, &config, &baseline_path) {
            Ok(counts) => {
                let total: usize = counts.values().sum();
                println!(
                    "blessed {} finding(s) across {} (rule, file) pair(s) into {}",
                    total,
                    counts.len(),
                    baseline_path.display()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        },
        other => {
            eprintln!("error: unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
