//! Human-readable and JSON reporters.

use crate::engine::CheckOutcome;
use crate::rules::Finding;

/// Render the outcome for terminals: one `path:line: [rule] message` per new
/// finding, then a summary of budgets and staleness.
pub fn human(outcome: &CheckOutcome) -> String {
    let mut out = String::new();
    for f in &outcome.new_findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.path, f.line, f.rule, f.message
        ));
    }
    if !outcome.new_findings.is_empty() {
        out.push('\n');
    }
    for note in &outcome.notes {
        out.push_str(&format!("note: {note}\n"));
    }
    out.push_str(&format!(
        "{} file(s) scanned, {} finding(s) total, {} allowed ({} suppression budget(s)), \
         {} baselined, {} NEW\n",
        outcome.files_scanned,
        outcome.total_findings,
        outcome.allowed_findings,
        outcome.allow_entries_used,
        outcome.baselined_findings,
        outcome.new_findings.len(),
    ));
    if outcome.new_findings.is_empty() {
        out.push_str("OK: no new violations\n");
    } else {
        out.push_str(
            "FAIL: new violations — fix them, justify them in lint.toml ([[allow]]), or \
             run `cargo run -p byom_lint -- bless` if they are intentional\n",
        );
    }
    out
}

/// Render the outcome as a single JSON object (hand-rolled writer; the lint
/// crate is dependency-free by policy).
pub fn json(outcome: &CheckOutcome) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"files_scanned\":{},\"total_findings\":{},\"allowed_findings\":{},\
         \"baselined_findings\":{},\"new_findings\":[",
        outcome.files_scanned,
        outcome.total_findings,
        outcome.allowed_findings,
        outcome.baselined_findings,
    ));
    for (i, f) in outcome.new_findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&render_finding(f));
    }
    out.push_str("],\"notes\":[");
    for (i, n) in outcome.notes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&escape(n));
    }
    out.push_str(&format!("],\"ok\":{}}}", outcome.new_findings.is_empty()));
    out
}

fn render_finding(f: &Finding) -> String {
    format!(
        "{{\"path\":{},\"line\":{},\"rule\":{},\"message\":{}}}",
        escape(&f.path),
        f.line,
        escape(f.rule),
        escape(&f.message)
    )
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome_with(finding: Option<Finding>) -> CheckOutcome {
        CheckOutcome {
            files_scanned: 3,
            total_findings: finding.iter().count(),
            allowed_findings: 0,
            allow_entries_used: 0,
            baselined_findings: 0,
            new_findings: finding.into_iter().collect(),
            notes: vec!["a \"note\"".into()],
        }
    }

    #[test]
    fn human_report_says_ok_when_clean() {
        let r = human(&outcome_with(None));
        assert!(r.contains("OK: no new violations"));
        assert!(r.contains("3 file(s) scanned"));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let f = Finding {
            path: "a/b.rs".into(),
            line: 7,
            rule: "panic-surface",
            message: "say \"no\"".into(),
        };
        let j = json(&outcome_with(Some(f)));
        assert!(j.contains("\"ok\":false"));
        assert!(j.contains("\\\"no\\\""));
        assert!(j.contains("\"line\":7"));
        assert!(j.contains("a \\\"note\\\""));
    }
}
