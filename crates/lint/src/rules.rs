//! The determinism & panic-surface rules.
//!
//! Each rule is a pure function over a [`LexedFile`]. The rules are
//! heuristic by design — a token stream has no types — but they are tuned to
//! the failure modes that would silently break this repository's
//! bit-reproducibility contract, and every suppression must be justified in
//! `lint.toml` (or, for `float-reduction-order`, by an inline
//! `// lint: ordered-reduction` comment).

use crate::lexer::{LexedFile, Token, TokenKind};
use std::collections::BTreeSet;

/// Rule: iterating a `HashMap`/`HashSet` in a result-affecting crate.
pub const NO_UNORDERED_ITERATION: &str = "no-unordered-iteration";
/// Rule: reading the wall clock outside the bench crate.
pub const NO_WALL_CLOCK: &str = "no-wall-clock";
/// Rule: constructing an unseeded random generator.
pub const NO_UNSEEDED_RNG: &str = "no-unseeded-rng";
/// Rule: `unwrap`/`expect`/`panic!`/slice indexing in non-test library code.
pub const PANIC_SURFACE: &str = "panic-surface";
/// Rule: parallel iterator chains ending in an order-sensitive reduction.
pub const FLOAT_REDUCTION_ORDER: &str = "float-reduction-order";

/// Every rule, in reporting order.
pub const ALL_RULES: &[&str] = &[
    NO_UNORDERED_ITERATION,
    NO_WALL_CLOCK,
    NO_UNSEEDED_RNG,
    PANIC_SURFACE,
    FLOAT_REDUCTION_ORDER,
];

/// The inline-comment directive that justifies an ordered parallel reduction.
pub const ORDERED_REDUCTION_DIRECTIVE: &str = "lint: ordered-reduction";

/// One rule violation in one file.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path, filled in by the engine.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule identifier (one of the `pub const` rule names).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Run one rule by name. Findings come back with an empty `path`.
pub fn run_rule(rule: &'static str, lexed: &LexedFile) -> Vec<Finding> {
    match rule {
        NO_UNORDERED_ITERATION => no_unordered_iteration(lexed),
        NO_WALL_CLOCK => no_wall_clock(lexed),
        NO_UNSEEDED_RNG => no_unseeded_rng(lexed),
        PANIC_SURFACE => panic_surface(lexed),
        FLOAT_REDUCTION_ORDER => float_reduction_order(lexed),
        other => unreachable!("unknown rule {other}"),
    }
}

fn ident(tok: &Token) -> Option<&str> {
    match &tok.kind {
        TokenKind::Ident(s) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(tok: &Token, c: char) -> bool {
    tok.kind == TokenKind::Punct(c)
}

fn is_ident(tok: &Token, name: &str) -> bool {
    matches!(&tok.kind, TokenKind::Ident(s) if s == name)
}

/// Line spans (inclusive) of `#[test]` functions and `#[cfg(test)]` items.
/// Rules that only apply to shipped code skip findings inside these spans.
pub fn test_spans(lexed: &LexedFile) -> Vec<(u32, u32)> {
    let toks = &lexed.tokens;
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 2 < toks.len() {
        if is_punct(&toks[i], '#') && is_punct(&toks[i + 1], '[') {
            let is_test_attr = is_ident(&toks[i + 2], "test")
                || (is_ident(&toks[i + 2], "cfg")
                    && toks.get(i + 3).is_some_and(|t| is_punct(t, '('))
                    && toks.get(i + 4).is_some_and(|t| is_ident(t, "test")));
            if is_test_attr {
                // Skip to the end of this attribute, then over any further
                // attributes, then swallow the braces of the annotated item.
                let mut j = skip_balanced(toks, i + 1, '[', ']');
                while j + 1 < toks.len() && is_punct(&toks[j], '#') && is_punct(&toks[j + 1], '[') {
                    j = skip_balanced(toks, j + 1, '[', ']');
                }
                // Find the item's opening brace (skipping e.g. `mod tests`,
                // `fn name() -> T`), then its matching close.
                while j < toks.len() && !is_punct(&toks[j], '{') && !is_punct(&toks[j], ';') {
                    j += 1;
                }
                if j < toks.len() && is_punct(&toks[j], '{') {
                    let start_line = toks[i].line;
                    let end = skip_balanced(toks, j, '{', '}');
                    let end_line = toks.get(end.saturating_sub(1)).map_or(u32::MAX, |t| t.line);
                    spans.push((start_line, end_line));
                    i = end;
                    continue;
                }
            }
        }
        i += 1;
    }
    spans
}

/// Index just past the token that closes the group opened at `open_idx`.
fn skip_balanced(toks: &[Token], open_idx: usize, open: char, close: char) -> usize {
    let mut depth = 0i32;
    let mut j = open_idx;
    while j < toks.len() {
        if is_punct(&toks[j], open) {
            depth += 1;
        } else if is_punct(&toks[j], close) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Index of the token that opens the group closed at `close_idx`, scanning
/// backward. Returns `None` if the stream never balances.
fn open_of_balanced(toks: &[Token], close_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = close_idx;
    loop {
        if is_punct(&toks[j], close) {
            depth += 1;
        } else if is_punct(&toks[j], open) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
}

fn in_spans(line: u32, spans: &[(u32, u32)]) -> bool {
    spans.iter().any(|&(a, b)| line >= a && line <= b)
}

/// `HashMap`/`HashSet` iteration: taint identifiers declared with an
/// unordered-collection type (field, binding, or parameter) and functions
/// whose return type is an unordered collection, then flag
/// `for … in tainted`, `tainted.iter()`, `.keys()`, `.values()`,
/// `.into_iter()`, `.drain()`, `.into_keys()`, `.into_values()`, and
/// `.retain()` (retain visits in iteration order and can observe shared
/// state) — including iteration of a tainted function's return value,
/// directly (`make_map().iter()`, `for … in make_map()`) or through a
/// `let` binding. Uses of a tainted map that never iterate — `get`,
/// `insert`, `entry`, `contains_key`, `len` — are fine: lookups are
/// order-free.
fn no_unordered_iteration(lexed: &LexedFile) -> Vec<Finding> {
    let toks = &lexed.tokens;
    let spans = test_spans(lexed);
    let mut tainted: BTreeSet<String> = BTreeSet::new();
    let mut tainted_fns: BTreeSet<String> = BTreeSet::new();

    for (i, tok) in toks.iter().enumerate() {
        let Some(name) = ident(tok) else { continue };
        if name != "HashMap" && name != "HashSet" {
            continue;
        }
        // Step back over a `std :: collections ::` style path prefix.
        let mut j = i;
        while j >= 3
            && is_punct(&toks[j - 1], ':')
            && is_punct(&toks[j - 2], ':')
            && ident(&toks[j - 3]).is_some()
        {
            j -= 3;
        }
        // Step back over `&`, `&mut`, and lifetimes between `:` and the type.
        let mut k = j;
        while k >= 1
            && (is_punct(&toks[k - 1], '&')
                || is_ident(&toks[k - 1], "mut")
                || toks[k - 1].kind == TokenKind::Lifetime)
        {
            k -= 1;
        }
        // `name : [&mut] HashMap<...>` — a field, binding, or parameter.
        if k >= 2
            && is_punct(&toks[k - 1], ':')
            && !(k >= 3 && is_punct(&toks[k - 2], ':'))
            && ident(&toks[k - 2]).is_some()
        {
            if let Some(n) = ident(&toks[k - 2]) {
                tainted.insert(n.to_string());
            }
        }
        // `let [mut] name = HashMap::new()` / `with_capacity` / `from`.
        if j >= 2 && is_punct(&toks[j - 1], '=') {
            let mut b = j - 1;
            if b >= 1 && ident(&toks[b - 1]).is_some() {
                b -= 1;
                let n = ident(&toks[b]).map(str::to_string);
                let is_let_binding = (b >= 1 && is_ident(&toks[b - 1], "let"))
                    || (b >= 2 && is_ident(&toks[b - 1], "mut") && is_ident(&toks[b - 2], "let"));
                if is_let_binding {
                    if let Some(n) = n {
                        tainted.insert(n);
                    }
                }
            }
        }
        // `fn name(...) -> [&] [path::] HashMap<...>` — the function's
        // return value carries the taint; call sites are tracked below.
        // `k` has already stepped back over `&`/`mut`/lifetime tokens.
        if k >= 4 && is_punct(&toks[k - 1], '>') && is_punct(&toks[k - 2], '-') {
            let close = k - 3;
            if is_punct(&toks[close], ')') {
                if let Some(open) = open_of_balanced(toks, close, '(', ')') {
                    let mut f = open;
                    // Step back over generic parameters: `fn name<K, V>(..)`.
                    if f >= 1 && is_punct(&toks[f - 1], '>') {
                        if let Some(g) = open_of_balanced(toks, f - 1, '<', '>') {
                            f = g;
                        }
                    }
                    if f >= 2 && is_ident(&toks[f - 2], "fn") {
                        if let Some(n) = ident(&toks[f - 1]) {
                            tainted_fns.insert(n.to_string());
                        }
                    }
                }
            }
        }
    }

    // A call to a tainted-returning function taints its `let` binding:
    // `let [mut] groups = [recv. | path::] make_groups(...)`.
    if !tainted_fns.is_empty() {
        for (i, tok) in toks.iter().enumerate() {
            let Some(name) = ident(tok) else { continue };
            if !tainted_fns.contains(name) || !toks.get(i + 1).is_some_and(|t| is_punct(t, '(')) {
                continue;
            }
            // Only the *bare* return value carries the taint; a trailing
            // method call (`make_map(v).len()`) transforms it first.
            let after = skip_balanced(toks, i + 1, '(', ')');
            if toks.get(after).is_some_and(|t| is_punct(t, '.')) {
                continue;
            }
            // Step back over the receiver chain / module path to the `=`.
            let mut b = i;
            loop {
                if b >= 3
                    && is_punct(&toks[b - 1], ':')
                    && is_punct(&toks[b - 2], ':')
                    && ident(&toks[b - 3]).is_some()
                {
                    b -= 3;
                } else if b >= 2 && is_punct(&toks[b - 1], '.') && ident(&toks[b - 2]).is_some() {
                    b -= 2;
                } else {
                    break;
                }
            }
            if b >= 2 && is_punct(&toks[b - 1], '=') && ident(&toks[b - 2]).is_some() {
                let n = ident(&toks[b - 2]).map(str::to_string);
                let lhs = b - 2;
                let is_let_binding = (lhs >= 1 && is_ident(&toks[lhs - 1], "let"))
                    || (lhs >= 2
                        && is_ident(&toks[lhs - 1], "mut")
                        && is_ident(&toks[lhs - 2], "let"));
                if is_let_binding {
                    if let Some(n) = n {
                        tainted.insert(n);
                    }
                }
            }
        }
    }

    const ITER_METHODS: &[&str] = &[
        "iter",
        "iter_mut",
        "into_iter",
        "keys",
        "into_keys",
        "values",
        "values_mut",
        "into_values",
        "drain",
        "retain",
    ];

    let mut findings = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        if in_spans(tok.line, &spans) {
            continue;
        }
        // `tainted . iter (`
        if let Some(name) = ident(tok) {
            if tainted.contains(name)
                && toks.get(i + 1).is_some_and(|t| is_punct(t, '.'))
                && toks
                    .get(i + 2)
                    .and_then(ident)
                    .is_some_and(|m| ITER_METHODS.contains(&m))
                && toks.get(i + 3).is_some_and(|t| is_punct(t, '('))
            {
                let method = ident(&toks[i + 2]).unwrap_or_default();
                findings.push(Finding {
                    path: String::new(),
                    line: tok.line,
                    rule: NO_UNORDERED_ITERATION,
                    message: format!(
                        "`{name}.{method}()` iterates an unordered collection; use BTreeMap/BTreeSet \
                         or collect-and-sort so results cannot depend on hash order"
                    ),
                });
            }
            // `make_map(...).iter()` — iterating the unordered collection a
            // tainted function just returned, without a binding in between.
            if tainted_fns.contains(name) && toks.get(i + 1).is_some_and(|t| is_punct(t, '(')) {
                let after = skip_balanced(toks, i + 1, '(', ')');
                if toks.get(after).is_some_and(|t| is_punct(t, '.'))
                    && toks
                        .get(after + 1)
                        .and_then(ident)
                        .is_some_and(|m| ITER_METHODS.contains(&m))
                    && toks.get(after + 2).is_some_and(|t| is_punct(t, '('))
                {
                    let method = ident(&toks[after + 1]).unwrap_or_default();
                    findings.push(Finding {
                        path: String::new(),
                        line: tok.line,
                        rule: NO_UNORDERED_ITERATION,
                        message: format!(
                            "`{name}(…).{method}()` iterates the unordered collection `{name}` \
                             returns; use BTreeMap/BTreeSet or collect-and-sort so results \
                             cannot depend on hash order"
                        ),
                    });
                }
            }
        }
        // `for PAT in [&[mut]] tainted {`
        if is_ident(tok, "for") {
            // Find the `in` of this for-loop within a small window.
            for j in i + 1..(i + 24).min(toks.len()) {
                if is_punct(&toks[j], '{') {
                    break;
                }
                if !is_ident(&toks[j], "in") {
                    continue;
                }
                let mut k = j + 1;
                while k < toks.len() && (is_punct(&toks[k], '&') || is_ident(&toks[k], "mut")) {
                    k += 1;
                }
                if let Some(name) = toks.get(k).and_then(ident) {
                    if tainted.contains(name) && toks.get(k + 1).is_some_and(|t| is_punct(t, '{')) {
                        findings.push(Finding {
                            path: String::new(),
                            line: tok.line,
                            rule: NO_UNORDERED_ITERATION,
                            message: format!(
                                "`for … in {name}` iterates an unordered collection; use \
                                 BTreeMap/BTreeSet or collect-and-sort first"
                            ),
                        });
                    } else if tainted_fns.contains(name)
                        && toks.get(k + 1).is_some_and(|t| is_punct(t, '('))
                    {
                        // `for … in make_map(...) {` — iterating a tainted
                        // function's return value directly.
                        let after = skip_balanced(toks, k + 1, '(', ')');
                        if toks.get(after).is_some_and(|t| is_punct(t, '{')) {
                            findings.push(Finding {
                                path: String::new(),
                                line: tok.line,
                                rule: NO_UNORDERED_ITERATION,
                                message: format!(
                                    "`for … in {name}(…)` iterates the unordered collection \
                                     `{name}` returns; use BTreeMap/BTreeSet or \
                                     collect-and-sort first"
                                ),
                            });
                        }
                    }
                }
                break;
            }
        }
    }
    findings
}

/// Wall-clock reads: `Instant::now()` and any use of `SystemTime`.
fn no_wall_clock(lexed: &LexedFile) -> Vec<Finding> {
    let toks = &lexed.tokens;
    let mut findings = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        if is_ident(tok, "Instant")
            && toks.get(i + 1).is_some_and(|t| is_punct(t, ':'))
            && toks.get(i + 2).is_some_and(|t| is_punct(t, ':'))
            && toks.get(i + 3).is_some_and(|t| is_ident(t, "now"))
        {
            findings.push(Finding {
                path: String::new(),
                line: tok.line,
                rule: NO_WALL_CLOCK,
                message: "`Instant::now()` reads the wall clock; results must be a pure \
                          function of seeds and inputs (timing belongs in crates/bench)"
                    .into(),
            });
        }
        if is_ident(tok, "SystemTime") {
            findings.push(Finding {
                path: String::new(),
                line: tok.line,
                rule: NO_WALL_CLOCK,
                message: "`SystemTime` reads the wall clock; results must be a pure function \
                          of seeds and inputs (timing belongs in crates/bench)"
                    .into(),
            });
        }
    }
    findings
}

/// Unseeded randomness: `thread_rng()`, `from_entropy()`, `rand::random`.
fn no_unseeded_rng(lexed: &LexedFile) -> Vec<Finding> {
    let toks = &lexed.tokens;
    let mut findings = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        let flagged = match ident(tok) {
            Some("thread_rng") | Some("from_entropy") => true,
            Some("random") => {
                i >= 3
                    && is_ident(&toks[i - 3], "rand")
                    && is_punct(&toks[i - 2], ':')
                    && is_punct(&toks[i - 1], ':')
            }
            _ => false,
        };
        if flagged {
            let what = ident(tok).unwrap_or_default();
            findings.push(Finding {
                path: String::new(),
                line: tok.line,
                rule: NO_UNSEEDED_RNG,
                message: format!(
                    "`{what}` draws OS entropy; every RNG must be seeded (StdRng::seed_from_u64) \
                     so runs are reproducible"
                ),
            });
        }
    }
    findings
}

/// Panic surface in non-test code: `.unwrap()`, `.expect()`, `panic!`,
/// `todo!`, `unimplemented!`, and slice indexing `x[i]`.
fn panic_surface(lexed: &LexedFile) -> Vec<Finding> {
    let toks = &lexed.tokens;
    let spans = test_spans(lexed);
    let mut findings = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        if in_spans(tok.line, &spans) {
            continue;
        }
        // `. unwrap (` / `. expect (`
        if is_punct(tok, '.') {
            if let Some(m) = toks.get(i + 1).and_then(ident) {
                if (m == "unwrap" || m == "expect")
                    && toks.get(i + 2).is_some_and(|t| is_punct(t, '('))
                {
                    findings.push(Finding {
                        path: String::new(),
                        line: tok.line,
                        rule: PANIC_SURFACE,
                        message: format!(
                            "`.{m}()` panics on bad input; thread a Result through instead"
                        ),
                    });
                }
            }
        }
        // `panic!` / `todo!` / `unimplemented!`
        if let Some(m) = ident(tok) {
            if (m == "panic" || m == "todo" || m == "unimplemented")
                && toks.get(i + 1).is_some_and(|t| is_punct(t, '!'))
            {
                findings.push(Finding {
                    path: String::new(),
                    line: tok.line,
                    rule: PANIC_SURFACE,
                    message: format!("`{m}!` in library code; return an error instead"),
                });
            }
        }
        // Slice/array indexing: `[` directly after an identifier, `)`, or `]`.
        if is_punct(tok, '[') && i >= 1 {
            let prev = &toks[i - 1];
            let indexes_expr = ident(prev).is_some_and(|n| !is_keyword(n))
                || is_punct(prev, ')')
                || is_punct(prev, ']');
            // `x[..]` (full-range slicing) cannot panic; skip it.
            let full_range = toks.get(i + 1).is_some_and(|t| is_punct(t, '.'))
                && toks.get(i + 2).is_some_and(|t| is_punct(t, '.'))
                && toks.get(i + 3).is_some_and(|t| is_punct(t, ']'));
            if indexes_expr && !full_range {
                findings.push(Finding {
                    path: String::new(),
                    line: tok.line,
                    rule: PANIC_SURFACE,
                    message: "slice indexing panics when out of bounds; prefer `.get()` or \
                              justify the invariant in the allowlist"
                        .into(),
                });
            }
        }
    }
    findings
}

/// Keywords that can directly precede `[` without forming an index
/// expression (`return [..]`, `break [..]`, `in [..]`, `impl T for [..]`,
/// ...).
fn is_keyword(name: &str) -> bool {
    matches!(
        name,
        "return" | "break" | "in" | "if" | "else" | "match" | "mut" | "ref" | "move" | "as" | "for"
    )
}

/// Parallel-iterator chains that end in an order-sensitive reduction
/// (`.sum()`, `.product()`, `.reduce()`): floating-point addition is not
/// associative, so the reduction tree shape must be pinned. Justify a
/// provably ordered (or integer) reduction with `// lint: ordered-reduction`
/// on or above the offending line.
fn float_reduction_order(lexed: &LexedFile) -> Vec<Finding> {
    const PAR_SOURCES: &[&str] = &[
        "par_iter",
        "par_iter_mut",
        "into_par_iter",
        "par_chunks",
        "par_bridge",
        "par_windows",
    ];
    const REDUCERS: &[&str] = &["sum", "product", "reduce", "fold"];

    let toks = &lexed.tokens;
    let mut findings = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        let Some(src) = ident(tok) else { continue };
        if !PAR_SOURCES.contains(&src) {
            continue;
        }
        // Walk the rest of the statement; a reducer call at chain depth 0
        // (i.e. not inside a closure argument) ends the parallel chain.
        let mut depth = 0i32;
        let mut j = i + 1;
        let limit = (i + 400).min(toks.len());
        while j < limit {
            match &toks[j].kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                TokenKind::Punct(';') if depth == 0 => break,
                TokenKind::Ident(m)
                    if depth == 0
                        && REDUCERS.contains(&m.as_str())
                        && j >= 1
                        && is_punct(&toks[j - 1], '.') =>
                {
                    let line = toks[j].line;
                    let justified = lexed.has_directive_near(line, ORDERED_REDUCTION_DIRECTIVE)
                        || lexed.has_directive_near(tok.line, ORDERED_REDUCTION_DIRECTIVE);
                    if !justified {
                        findings.push(Finding {
                            path: String::new(),
                            line,
                            rule: FLOAT_REDUCTION_ORDER,
                            message: format!(
                                "`{src}()…{m}()` reduces in nondeterministic order; if the \
                                 element type is floating-point the result depends on the \
                                 split schedule — collect and reduce sequentially, or add \
                                 `// {ORDERED_REDUCTION_DIRECTIVE}` with a justification"
                            ),
                        });
                    }
                    break;
                }
                _ => {}
            }
            j += 1;
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(rule: &'static str, src: &str) -> Vec<Finding> {
        run_rule(rule, &lex(src))
    }

    #[test]
    fn flags_hashmap_iteration_but_not_lookups() {
        let src = r#"
            struct S { stats: HashMap<String, u64> }
            fn f(s: &S, m: &mut std::collections::HashSet<u32>) {
                let hit = s.stats.get("x");           // lookup: fine
                for (k, v) in s.stats { use_it(k, v) } // not matched: field expr
                for v in m { touch(v) }                // flagged
                let total: u64 = s.stats.values().sum(); // flagged
                let n = s.stats.len();                 // fine
            }
        "#;
        let f = run(NO_UNORDERED_ITERATION, src);
        assert_eq!(f.len(), 2, "{f:#?}");
        assert!(f.iter().any(|x| x.line == 6));
        assert!(f.iter().any(|x| x.line == 7));
    }

    #[test]
    fn flags_let_bound_hashmap_iteration() {
        let src = r#"
            fn f() {
                let mut groups = HashMap::new();
                groups.insert(1, 2);
                for (k, v) in groups { use_it(k, v) }
            }
        "#;
        let f = run(NO_UNORDERED_ITERATION, src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn flags_iteration_of_tainted_fn_returns() {
        let src = r#"
            fn group_jobs(v: &[u32]) -> HashMap<u32, u32> { build(v) }
            fn f(v: &[u32]) {
                for (k, n) in group_jobs(v) { use_it(k, n) }   // flagged
                let groups = group_jobs(v);
                for (k, n) in groups { use_it(k, n) }          // flagged
                let total: u32 = group_jobs(v).values().sum(); // flagged
                let n = group_jobs(v).len();                   // lookup: fine
            }
        "#;
        let f = run(NO_UNORDERED_ITERATION, src);
        assert_eq!(f.len(), 3, "{f:#?}");
        assert!(f.iter().any(|x| x.line == 4));
        assert!(f.iter().any(|x| x.line == 6));
        assert!(f.iter().any(|x| x.line == 7));
    }

    #[test]
    fn fn_return_taint_handles_generics_paths_and_references() {
        let src = r#"
            fn dedup<T>(v: &[T]) -> std::collections::HashSet<u64> { build(v) }
            impl Cache {
                fn entries(&self) -> &HashMap<u64, u64> { &self.map }
            }
            fn f(v: &[u32], cache: &Cache) {
                for h in dedup(v) { use_it(h) }                  // flagged
                let snapshot = cache.entries();
                for (k, n) in snapshot { use_it(k, n) }          // flagged
            }
        "#;
        let f = run(NO_UNORDERED_ITERATION, src);
        assert_eq!(f.len(), 2, "{f:#?}");
        assert!(f.iter().any(|x| x.line == 7));
        assert!(f.iter().any(|x| x.line == 9));
    }

    #[test]
    fn ordered_returning_fn_is_clean() {
        let src = r#"
            fn ordered(v: &[u32]) -> BTreeMap<u32, u32> { build(v) }
            fn tally(v: &[u32]) -> HashMap<u32, u32> { build(v) }
            fn f(v: &[u32]) {
                for (k, n) in ordered(v) { use_it(k, n) }  // BTreeMap: fine
                let count = tally(v).len();                // lookup: fine
                let hit = tally(v).get(&3).copied();       // lookup: fine
            }
        "#;
        assert!(run(NO_UNORDERED_ITERATION, src).is_empty());
    }

    #[test]
    fn btreemap_is_clean() {
        let src = r#"
            fn f() {
                let mut groups: BTreeMap<u32, u32> = BTreeMap::new();
                for (k, v) in groups { use_it(k, v) }
            }
        "#;
        assert!(run(NO_UNORDERED_ITERATION, src).is_empty());
    }

    #[test]
    fn flags_wall_clock_and_rng() {
        let src = r#"
            fn f() {
                let t = Instant::now();
                let s = std::time::SystemTime::now();
                let mut rng = rand::thread_rng();
                let r = StdRng::from_entropy();
                let x: f64 = rand::random();
            }
        "#;
        assert_eq!(run(NO_WALL_CLOCK, src).len(), 2);
        assert_eq!(run(NO_UNSEEDED_RNG, src).len(), 3);
    }

    #[test]
    fn seeded_rng_is_clean() {
        let src = "fn f() { let mut rng = StdRng::seed_from_u64(7); }";
        assert!(run(NO_UNSEEDED_RNG, src).is_empty());
    }

    #[test]
    fn panic_surface_counts_unwraps_and_indexing_outside_tests() {
        let src = r#"
            fn f(v: &[f64], i: usize) -> f64 {
                let x = v.first().unwrap();
                let y = maybe().expect("present");
                let z = v[i];
                let all = &v[..];   // full-range: cannot panic
                panic!("boom");
            }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {
                    let q = compute().unwrap();
                    let w = data[3];
                }
            }
        "#;
        let f = run(PANIC_SURFACE, src);
        assert_eq!(f.len(), 4, "{f:#?}");
        assert!(f.iter().all(|x| x.line <= 7));
    }

    #[test]
    fn attributes_and_vec_macro_are_not_indexing() {
        let src = r#"
            #[derive(Debug, Clone)]
            struct S { a: [f64; 3] }
            fn f() -> Vec<u8> { vec![1, 2, 3] }
        "#;
        assert!(run(PANIC_SURFACE, src).is_empty());
    }

    #[test]
    fn flags_par_iter_sum_without_directive() {
        let src = r#"
            fn f(v: &[f64]) -> f64 {
                v.par_iter().map(|x| x * 2.0).sum()
            }
            fn g(v: &[f64]) -> f64 {
                // lint: ordered-reduction — reviewed, reduces over integers
                v.par_iter().map(|x| x.round() as i64).sum::<i64>() as f64
            }
            fn h(v: &[Vec<f64>]) -> Vec<f64> {
                // inner sum is sequential (inside the closure): clean
                v.par_iter().map(|x| x.iter().sum()).collect()
            }
        "#;
        let f = run(FLOAT_REDUCTION_ORDER, src);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn test_spans_cover_cfg_test_modules() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n fn b() {}\n}\nfn c() {}\n";
        let spans = test_spans(&lex(src));
        assert_eq!(spans.len(), 1);
        assert!(in_spans(4, &spans));
        assert!(!in_spans(1, &spans));
        assert!(!in_spans(6, &spans));
    }
}
