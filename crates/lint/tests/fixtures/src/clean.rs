//! Fixture: deterministic, panic-free code — zero findings expected.
use std::collections::BTreeMap;

pub fn totals(entries: &BTreeMap<String, u64>) -> u64 {
    let mut total = 0;
    for value in entries.values() {
        total += value;
    }
    total
}

pub fn safe_get(values: &[u64], index: usize) -> Option<u64> {
    values.get(index).copied()
}
