//! Fixture: parallel float reductions without an ordering guarantee.
use rayon::prelude::*;

pub fn flagged(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * 2.0).sum()
}

pub fn suppressed(xs: &[f64]) -> f64 {
    // lint: ordered-reduction — summing bit-identical terms, order-insensitive here
    xs.par_iter().map(|x| x * 2.0).sum()
}

pub fn legal(xs: &[f64]) -> Vec<f64> {
    xs.par_iter().map(|x| x * 2.0).collect()
}
