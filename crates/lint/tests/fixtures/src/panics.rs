//! Fixture: panic surface in library code; test modules are exempt.

pub fn flagged(values: &[u64], index: usize) -> u64 {
    let first = values.first().unwrap();
    let second = values.get(1).expect("needs two values");
    if index >= values.len() {
        panic!("index out of range");
    }
    first + second + values[index]
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_in_tests_are_exempt() {
        let values = vec![1u64, 2];
        assert_eq!(values[0], 1);
        let _ = values.first().unwrap();
    }
}
