//! Fixture: OS-entropy RNG construction (unreproducible).
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn flagged() -> (StdRng, impl rand::Rng) {
    let from_os = StdRng::from_entropy();
    let thread_local = rand::thread_rng();
    (from_os, thread_local)
}

pub fn legal(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
