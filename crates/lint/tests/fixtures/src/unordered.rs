//! Fixture: HashMap/HashSet iteration (non-deterministic order) vs lookups.
use std::collections::{HashMap, HashSet};

pub fn flagged(map: &HashMap<String, u64>, set: &HashSet<u64>) -> u64 {
    let mut total = 0;
    for (_key, value) in map.iter() {
        total += value;
    }
    for value in set {
        total += value;
    }
    total
}

pub fn legal(map: &HashMap<String, u64>) -> Option<u64> {
    map.get("answer").copied()
}

pub fn grouped(values: &[u64]) -> HashMap<u64, u64> {
    values.iter().map(|&v| (v, v)).collect()
}

pub fn flagged_via_return(values: &[u64]) -> u64 {
    let mut total = 0;
    for (_key, value) in grouped(values) {
        total += value;
    }
    total
}

pub fn legal_via_return(values: &[u64]) -> usize {
    grouped(values).len()
}
