//! Fixture: wall-clock reads that make results depend on the host.
use std::time::{Instant, SystemTime};

pub fn flagged() -> bool {
    let started = Instant::now();
    let wall = SystemTime::now();
    started.elapsed().as_nanos() > 0 && wall.elapsed().is_ok()
}
