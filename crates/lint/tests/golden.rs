//! End-to-end tests against a fixture tree with known violations: golden
//! finding list, bless → check round-trip, CLI exit codes, and a guard that
//! the repository itself stays clean under its committed configuration.

use byom_lint::{config, engine};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_config() -> config::Config {
    config::load(&fixture_root().join("lint.toml")).expect("fixture config parses")
}

fn temp_baseline(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("byom_lint_golden_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(format!("{tag}.baseline"))
}

/// The complete expected finding list for the fixture tree, one
/// `rule<TAB>path:line` per entry. Keep sorted the way `engine::scan`
/// sorts (by path, then line, then rule).
const GOLDEN: &[&str] = &[
    "float-reduction-order\tsrc/float_reduction.rs:5",
    "panic-surface\tsrc/panics.rs:4",
    "panic-surface\tsrc/panics.rs:5",
    "panic-surface\tsrc/panics.rs:7",
    "panic-surface\tsrc/panics.rs:9",
    "no-unseeded-rng\tsrc/rng.rs:6",
    "no-unseeded-rng\tsrc/rng.rs:7",
    "no-unordered-iteration\tsrc/unordered.rs:6",
    "no-unordered-iteration\tsrc/unordered.rs:9",
    // `for … in grouped(values)` — the taint tracker follows function
    // return types, not just local declarations.
    "no-unordered-iteration\tsrc/unordered.rs:25",
    // The `use std::time::{.., SystemTime}` import is flagged too: any
    // mention of SystemTime outside crates/bench is suspect by design.
    "no-wall-clock\tsrc/wall_clock.rs:2",
    "no-wall-clock\tsrc/wall_clock.rs:5",
    "no-wall-clock\tsrc/wall_clock.rs:6",
];

#[test]
fn fixture_findings_match_golden_list() {
    let (files, findings) = engine::scan(&fixture_root(), &fixture_config()).expect("scan");
    assert_eq!(files, 6, "all six fixture files are scanned");
    let got: Vec<String> = findings
        .iter()
        .map(|f| format!("{}\t{}:{}", f.rule, f.path, f.line))
        .collect();
    let want: Vec<String> = GOLDEN.iter().map(|s| s.to_string()).collect();
    assert_eq!(got, want);
}

#[test]
fn clean_fixture_produces_no_findings() {
    let (_, findings) = engine::scan(&fixture_root(), &fixture_config()).expect("scan");
    assert!(
        findings.iter().all(|f| f.path != "src/clean.rs"),
        "clean.rs must stay free of findings: {findings:#?}"
    );
}

#[test]
fn bless_then_check_round_trip() {
    let root = fixture_root();
    let cfg = fixture_config();
    let baseline = temp_baseline("round_trip");
    let _ = std::fs::remove_file(&baseline);

    // Without a baseline every finding is new.
    let before = engine::check(&root, &cfg, &baseline).expect("check");
    assert_eq!(before.new_findings.len(), GOLDEN.len());

    // After bless the same tree checks clean, with everything baselined.
    let blessed = engine::bless(&root, &cfg, &baseline).expect("bless");
    assert_eq!(blessed.values().sum::<usize>(), GOLDEN.len());
    let after = engine::check(&root, &cfg, &baseline).expect("check");
    assert!(after.new_findings.is_empty(), "{after:#?}");
    assert_eq!(after.baselined_findings, GOLDEN.len());
    assert!(after.notes.is_empty(), "fresh baseline has no staleness");

    let _ = std::fs::remove_file(&baseline);
}

#[test]
fn cli_reports_violations_with_exit_code_one() {
    let bin = env!("CARGO_BIN_EXE_byom_lint");
    let root = fixture_root();
    let baseline = temp_baseline("cli_fail");
    let _ = std::fs::remove_file(&baseline);

    let output = Command::new(bin)
        .args(["check", "--root"])
        .arg(&root)
        .arg("--baseline")
        .arg(&baseline)
        .output()
        .expect("run byom_lint");
    assert_eq!(
        output.status.code(),
        Some(1),
        "violations must fail the check"
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("panic-surface"),
        "report names the rule:\n{stdout}"
    );
    assert!(
        stdout.contains("src/panics.rs"),
        "report names the file:\n{stdout}"
    );
}

#[test]
fn cli_bless_then_check_exits_zero_and_json_is_well_formed() {
    let bin = env!("CARGO_BIN_EXE_byom_lint");
    let root = fixture_root();
    let baseline = temp_baseline("cli_ok");
    let _ = std::fs::remove_file(&baseline);

    let bless = Command::new(bin)
        .args(["bless", "--root"])
        .arg(&root)
        .arg("--baseline")
        .arg(&baseline)
        .output()
        .expect("run byom_lint bless");
    assert_eq!(bless.status.code(), Some(0), "bless succeeds");

    let check = Command::new(bin)
        .args(["check", "--json", "--root"])
        .arg(&root)
        .arg("--baseline")
        .arg(&baseline)
        .output()
        .expect("run byom_lint check");
    assert_eq!(check.status.code(), Some(0), "blessed tree checks clean");
    let stdout = String::from_utf8_lossy(&check.stdout);
    assert!(
        stdout.contains("\"new_findings\":[]"),
        "JSON report:\n{stdout}"
    );
    assert!(stdout.contains("\"ok\":true"), "JSON report:\n{stdout}");

    let _ = std::fs::remove_file(&baseline);
}

/// The acceptance criterion for the linter itself: the repository checks
/// clean under its committed `lint.toml` and `lint.baseline`. Any new
/// violation anywhere in the workspace fails this test.
#[test]
fn repository_tree_checks_clean() {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root");
    let cfg = config::load(&repo.join("lint.toml")).expect("repo lint.toml parses");
    let outcome = engine::check(&repo, &cfg, &repo.join("lint.baseline")).expect("check");
    assert!(
        outcome.new_findings.is_empty(),
        "repository must check clean; new findings:\n{:#?}",
        outcome.new_findings
    );
}
