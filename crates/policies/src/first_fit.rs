//! FirstFit: the static production heuristic (Section 3.2).
//!
//! Jobs are considered in arrival order; a job is scheduled onto SSD if its
//! peak space usage fits in the SSD capacity that is currently free. This
//! optimizes TCIO when SSD is plentiful but can significantly increase TCO
//! when SSD capacity is limited or expensive, because it admits large,
//! HDD-friendly jobs as readily as small, I/O-dense ones.

use byom_cost::JobCost;
use byom_sim::{Device, PlacementPolicy, SystemState};
use byom_trace::ShuffleJob;

/// The FirstFit static placement policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FirstFit;

impl FirstFit {
    /// Create a FirstFit policy.
    pub fn new() -> Self {
        FirstFit
    }
}

impl PlacementPolicy for FirstFit {
    fn name(&self) -> &str {
        "FirstFit"
    }

    fn place(&mut self, job: &ShuffleJob, _cost: &JobCost, state: &SystemState) -> Device {
        if job.size_bytes <= state.ssd_free_bytes() {
            Device::Ssd
        } else {
            Device::Hdd
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byom_trace::{IoProfile, JobFeatures, JobId};

    fn job(size: u64) -> ShuffleJob {
        ShuffleJob {
            id: JobId(0),
            cluster: 0,
            arrival: 0.0,
            lifetime: 10.0,
            size_bytes: size,
            io: IoProfile::default(),
            features: JobFeatures::default(),
            archetype: 0,
        }
    }

    fn cost() -> JobCost {
        JobCost {
            id: JobId(0),
            arrival: 0.0,
            lifetime: 10.0,
            size_bytes: 0,
            tcio_hdd: 0.0,
            tco_hdd: 0.0,
            tco_ssd: 0.0,
            io_density: 0.0,
        }
    }

    fn state(occupied: u64, capacity: u64) -> SystemState {
        SystemState {
            now: 0.0,
            ssd_occupancy_bytes: occupied,
            ssd_capacity_bytes: capacity,
        }
    }

    #[test]
    fn admits_when_job_fits() {
        let mut p = FirstFit::new();
        assert_eq!(p.place(&job(50), &cost(), &state(0, 100)), Device::Ssd);
        assert_eq!(p.place(&job(100), &cost(), &state(0, 100)), Device::Ssd);
    }

    #[test]
    fn rejects_when_job_does_not_fit() {
        let mut p = FirstFit::new();
        assert_eq!(p.place(&job(101), &cost(), &state(0, 100)), Device::Hdd);
        assert_eq!(p.place(&job(50), &cost(), &state(60, 100)), Device::Hdd);
    }

    #[test]
    fn zero_capacity_rejects_everything_but_zero_size() {
        let mut p = FirstFit::new();
        assert_eq!(p.place(&job(1), &cost(), &state(0, 0)), Device::Hdd);
        assert_eq!(p.place(&job(0), &cost(), &state(0, 0)), Device::Ssd);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(FirstFit::new().name(), "FirstFit");
    }
}
