//! The adaptive per-category admission heuristic (Section 3.3), modelled
//! after CacheSack (Yang et al., USENIX ATC'22) and adapted from cache
//! admission to placement, as the paper does.
//!
//! The policy groups storage requests into categories — we use the pipeline
//! and step identity, the stable per-workload "ID" the paper refers to — and
//! measures each category's historical space usage and TCO savings. It ranks
//! categories by their savings and admits the top categories whose cumulative
//! historical space usage fits within the SSD capacity. An arriving job is
//! placed on SSD iff its category is in the admission set.

use byom_cost::JobCost;
use byom_sim::{Device, PlacementPolicy, SystemState};
use byom_trace::ShuffleJob;
use std::collections::{BTreeMap, BTreeSet};

/// Configuration for [`CategoryHeuristic`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeuristicConfig {
    /// Rebuild the admission set every this many observed jobs.
    pub rebuild_every_jobs: usize,
    /// When sizing the admission set, scale the SSD capacity by this factor
    /// to account for categories not being simultaneously resident.
    pub capacity_headroom: f64,
}

impl Default for HeuristicConfig {
    fn default() -> Self {
        HeuristicConfig {
            rebuild_every_jobs: 200,
            capacity_headroom: 1.0,
        }
    }
}

/// Per-category running statistics.
#[derive(Debug, Clone, Copy, Default)]
struct CategoryStats {
    total_savings: f64,
    /// Mean footprint × number of observations: a proxy for the category's
    /// space demand over the observation period.
    mean_space: f64,
    observations: u64,
}

/// The CacheSack-style adaptive per-category admission heuristic.
#[derive(Debug, Clone)]
pub struct CategoryHeuristic {
    config: HeuristicConfig,
    stats: BTreeMap<String, CategoryStats>,
    admitted: BTreeSet<String>,
    jobs_since_rebuild: usize,
}

impl CategoryHeuristic {
    /// Create a heuristic with the given configuration.
    pub fn new(config: HeuristicConfig) -> Self {
        CategoryHeuristic {
            config,
            stats: BTreeMap::new(),
            admitted: BTreeSet::new(),
            jobs_since_rebuild: 0,
        }
    }

    /// The category key of a job: its pipeline plus step identity.
    fn category_of(job: &ShuffleJob) -> String {
        format!(
            "{}::{}",
            job.features.pipeline_name, job.features.execution_name
        )
    }

    /// Number of categories currently admitted to SSD.
    pub fn admission_set_size(&self) -> usize {
        self.admitted.len()
    }

    /// Number of categories observed so far.
    pub fn categories_observed(&self) -> usize {
        self.stats.len()
    }

    /// Fold one job's measured cost into the category statistics and
    /// periodically rebuild the admission set. [`PlacementPolicy::place`]
    /// calls this on every arrival; composite policies (the degradation
    /// ladder in `byom_core`) call it directly to keep the heuristic warm
    /// while another rung is making the decisions.
    pub fn record(&mut self, job: &ShuffleJob, cost: &JobCost, capacity_bytes: u64) {
        // Update historical statistics. In production these measurements come
        // from completed executions; here the arriving job's measured cost
        // stands in for the category's history from the next job onward.
        let category = Self::category_of(job);
        let entry = self.stats.entry(category).or_default();
        entry.total_savings += cost.tco_savings();
        entry.observations += 1;
        let n = entry.observations as f64;
        entry.mean_space += (job.size_bytes as f64 - entry.mean_space) / n;

        self.jobs_since_rebuild += 1;
        if self.admitted.is_empty() || self.jobs_since_rebuild >= self.config.rebuild_every_jobs {
            self.rebuild_admission_set(capacity_bytes);
            self.jobs_since_rebuild = 0;
        }
    }

    /// Whether the job's category is in the current admission set.
    pub fn admits(&self, job: &ShuffleJob) -> bool {
        self.admitted.contains(&Self::category_of(job))
    }

    fn rebuild_admission_set(&mut self, capacity_bytes: u64) {
        let mut ranked: Vec<(&String, &CategoryStats)> = self
            .stats
            .iter()
            .filter(|(_, s)| s.total_savings > 0.0)
            .collect();
        ranked.sort_by(|a, b| b.1.total_savings.total_cmp(&a.1.total_savings));
        let budget = capacity_bytes as f64 * self.config.capacity_headroom;
        let mut used = 0.0;
        self.admitted.clear();
        for (category, stats) in ranked {
            let space = stats.mean_space;
            if used + space > budget && !self.admitted.is_empty() {
                break;
            }
            used += space;
            self.admitted.insert(category.clone());
        }
    }
}

impl Default for CategoryHeuristic {
    fn default() -> Self {
        CategoryHeuristic::new(HeuristicConfig::default())
    }
}

impl PlacementPolicy for CategoryHeuristic {
    fn name(&self) -> &str {
        "Heuristic"
    }

    fn place(&mut self, job: &ShuffleJob, cost: &JobCost, state: &SystemState) -> Device {
        self.record(job, cost, state.ssd_capacity_bytes);
        if self.admits(job) {
            Device::Ssd
        } else {
            Device::Hdd
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byom_trace::{IoProfile, JobFeatures, JobId};

    fn job(pipeline: &str, size: u64) -> ShuffleJob {
        ShuffleJob {
            id: JobId(0),
            cluster: 0,
            arrival: 0.0,
            lifetime: 10.0,
            size_bytes: size,
            io: IoProfile::default(),
            features: JobFeatures {
                pipeline_name: pipeline.to_string(),
                execution_name: "main".to_string(),
                ..Default::default()
            },
            archetype: 0,
        }
    }

    fn cost(savings: f64) -> JobCost {
        JobCost {
            id: JobId(0),
            arrival: 0.0,
            lifetime: 10.0,
            size_bytes: 0,
            tcio_hdd: 1.0,
            tco_hdd: savings.max(0.0) + 1.0,
            tco_ssd: 1.0 - savings.min(0.0),
            io_density: 1.0,
        }
    }

    fn state(capacity: u64) -> SystemState {
        SystemState {
            now: 0.0,
            ssd_occupancy_bytes: 0,
            ssd_capacity_bytes: capacity,
        }
    }

    #[test]
    fn high_savings_category_gets_admitted() {
        let mut p = CategoryHeuristic::new(HeuristicConfig {
            rebuild_every_jobs: 1,
            ..Default::default()
        });
        // Teach the policy that pipeline "good" saves money.
        for _ in 0..5 {
            let _ = p.place(&job("good", 10), &cost(5.0), &state(1000));
        }
        assert_eq!(
            p.place(&job("good", 10), &cost(5.0), &state(1000)),
            Device::Ssd
        );
        assert!(p.admission_set_size() >= 1);
    }

    #[test]
    fn negative_savings_category_is_rejected() {
        let mut p = CategoryHeuristic::new(HeuristicConfig {
            rebuild_every_jobs: 1,
            ..Default::default()
        });
        for _ in 0..5 {
            let _ = p.place(&job("bad", 10), &cost(-3.0), &state(1000));
        }
        assert_eq!(
            p.place(&job("bad", 10), &cost(-3.0), &state(1000)),
            Device::Hdd
        );
    }

    #[test]
    fn admission_set_respects_capacity() {
        let mut p = CategoryHeuristic::new(HeuristicConfig {
            rebuild_every_jobs: 1,
            ..Default::default()
        });
        // Three categories with decreasing savings, each ~100 bytes of space;
        // capacity 150 admits the best category (and possibly the second,
        // since the first admission is always kept).
        for (name, savings) in [("a", 9.0), ("b", 5.0), ("c", 1.0)] {
            for _ in 0..3 {
                let _ = p.place(&job(name, 100), &cost(savings), &state(150));
            }
        }
        let _ = p.place(&job("a", 100), &cost(9.0), &state(150));
        assert!(p.admission_set_size() <= 2);
        assert_eq!(
            p.place(&job("a", 100), &cost(9.0), &state(150)),
            Device::Ssd
        );
        assert_eq!(
            p.place(&job("c", 100), &cost(1.0), &state(150)),
            Device::Hdd
        );
    }

    #[test]
    fn categories_are_tracked_separately() {
        let mut p = CategoryHeuristic::default();
        let _ = p.place(&job("x", 10), &cost(1.0), &state(100));
        let _ = p.place(&job("y", 10), &cost(1.0), &state(100));
        assert_eq!(p.categories_observed(), 2);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(CategoryHeuristic::default().name(), "Heuristic");
    }
}
