//! Baseline storage-placement policies from Section 3 of the BYOM paper.
//!
//! Three baselines are implemented against the [`byom_sim::PlacementPolicy`]
//! interface:
//!
//! * [`FirstFit`] — the production-style static heuristic: place a job on SSD
//!   whenever its peak footprint fits in the currently free SSD capacity.
//! * [`CategoryHeuristic`] — the adaptive per-category admission heuristic
//!   modelled after CacheSack (Yang et al., ATC'22): rank job categories by
//!   their measured TCO savings and admit the best categories whose combined
//!   space usage fits the SSD.
//! * [`LifetimeMlBaseline`] — the ML baseline following Zhou & Maas (MLSys'21):
//!   predict a distribution over file lifetime and admit jobs whose predicted
//!   `μ + σ` lifetime is below a time-to-live threshold.
//!
//! The paper's own method (Adaptive Ranking) and its non-ML ablation
//! (Adaptive Hash) live in `byom-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod first_fit;
pub mod heuristic;
pub mod ml_baseline;
pub mod oracle_policy;

pub use first_fit::FirstFit;
pub use heuristic::{CategoryHeuristic, HeuristicConfig};
pub use ml_baseline::{LifetimeMlBaseline, LifetimeModelConfig};
pub use oracle_policy::OraclePolicy;
