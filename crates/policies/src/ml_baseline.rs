//! The ML lifetime-prediction baseline (Section 3.4), following the
//! SSD/HDD-tiering case study of Zhou & Maas (MLSys'21).
//!
//! A model predicts the distribution of a file's lifetime from application-
//! level features; jobs whose predicted `μ + σ` lifetime is below a
//! time-to-live (TTL) threshold are admitted to SSD, everything else goes to
//! HDD. We realize the distribution prediction with the same GBDT substrate
//! used elsewhere: lifetimes are bucketed into logarithmically spaced classes
//! and the classifier's class distribution yields `μ` and `σ` over bucket
//! midpoints.

use byom_cost::JobCost;
use byom_gbdt::{Dataset, GbdtError, GbdtParams, GradientBoostedTrees};
use byom_sim::{Device, PlacementPolicy, SystemState};
use byom_trace::{FeatureEncoder, ShuffleJob, Trace};
use serde::{Deserialize, Serialize};

/// Configuration of the lifetime-prediction baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifetimeModelConfig {
    /// Number of logarithmically spaced lifetime buckets.
    pub num_buckets: usize,
    /// Shortest lifetime bucket edge in seconds.
    pub min_lifetime_secs: f64,
    /// Longest lifetime bucket edge in seconds.
    pub max_lifetime_secs: f64,
    /// Admit jobs whose predicted `μ + σ` lifetime is below this TTL.
    pub ttl_secs: f64,
    /// Boosting parameters for the underlying classifier.
    pub gbdt: GbdtParams,
}

impl Default for LifetimeModelConfig {
    fn default() -> Self {
        LifetimeModelConfig {
            num_buckets: 8,
            min_lifetime_secs: 10.0,
            max_lifetime_secs: 7.0 * 86_400.0,
            ttl_secs: 2.0 * 3600.0,
            gbdt: GbdtParams {
                num_classes: 8,
                num_trees: 60,
                ..GbdtParams::default()
            },
        }
    }
}

impl LifetimeModelConfig {
    /// Bucket index of a lifetime value (log-spaced buckets).
    fn bucket_of(&self, lifetime: f64) -> usize {
        let clamped = lifetime.clamp(self.min_lifetime_secs, self.max_lifetime_secs);
        let log_span = (self.max_lifetime_secs / self.min_lifetime_secs).ln();
        let pos = (clamped / self.min_lifetime_secs).ln() / log_span;
        ((pos * self.num_buckets as f64) as usize).min(self.num_buckets - 1)
    }

    /// Geometric midpoint of a bucket in seconds.
    fn bucket_midpoint(&self, bucket: usize) -> f64 {
        let log_span = (self.max_lifetime_secs / self.min_lifetime_secs).ln();
        let lo =
            self.min_lifetime_secs * (log_span * bucket as f64 / self.num_buckets as f64).exp();
        let hi = self.min_lifetime_secs
            * (log_span * (bucket + 1) as f64 / self.num_buckets as f64).exp();
        (lo * hi).sqrt()
    }
}

/// The trained lifetime-prediction baseline policy.
#[derive(Debug, Clone)]
pub struct LifetimeMlBaseline {
    config: LifetimeModelConfig,
    encoder: FeatureEncoder,
    model: GradientBoostedTrees,
}

impl LifetimeMlBaseline {
    /// Train the baseline on a historical trace.
    ///
    /// # Errors
    /// Returns an error if the training trace is empty or model training
    /// fails.
    pub fn train(config: LifetimeModelConfig, train: &Trace) -> Result<Self, GbdtError> {
        let encoder = FeatureEncoder::default();
        let rows: Vec<Vec<f64>> = train.iter().map(|j| encoder.encode(&j.features)).collect();
        let labels: Vec<usize> = train.iter().map(|j| config.bucket_of(j.lifetime)).collect();
        let data = Dataset::from_rows(rows, labels)?;
        let params = GbdtParams {
            num_classes: config.num_buckets,
            ..config.gbdt
        };
        let model = GradientBoostedTrees::train(&params, &data, None)?;
        Ok(LifetimeMlBaseline {
            config,
            encoder,
            model,
        })
    }

    /// Predicted mean and standard deviation of the job's lifetime (seconds).
    pub fn predict_lifetime(&self, job: &ShuffleJob) -> (f64, f64) {
        let probs = self
            .model
            .predict_proba(&self.encoder.encode(&job.features));
        let mut mean = 0.0;
        for (bucket, p) in probs.iter().enumerate() {
            mean += p * self.config.bucket_midpoint(bucket);
        }
        let mut var = 0.0;
        for (bucket, p) in probs.iter().enumerate() {
            let d = self.config.bucket_midpoint(bucket) - mean;
            var += p * d * d;
        }
        (mean, var.sqrt())
    }

    /// The configured TTL in seconds.
    pub fn ttl_secs(&self) -> f64 {
        self.config.ttl_secs
    }
}

impl PlacementPolicy for LifetimeMlBaseline {
    fn name(&self) -> &str {
        "ML Baseline"
    }

    fn place(&mut self, job: &ShuffleJob, _cost: &JobCost, _state: &SystemState) -> Device {
        let (mean, std) = self.predict_lifetime(job);
        if mean + std <= self.config.ttl_secs {
            Device::Ssd
        } else {
            Device::Hdd
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byom_trace::{ClusterSpec, TraceGenerator};

    fn config() -> LifetimeModelConfig {
        LifetimeModelConfig {
            gbdt: GbdtParams {
                num_classes: 8,
                num_trees: 15,
                ..GbdtParams::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn bucket_mapping_is_monotone_and_in_range() {
        let c = config();
        let mut last = 0;
        for lifetime in [1.0, 15.0, 100.0, 1000.0, 10_000.0, 100_000.0, 1e7] {
            let b = c.bucket_of(lifetime);
            assert!(b < c.num_buckets);
            assert!(b >= last);
            last = b;
        }
    }

    #[test]
    fn bucket_midpoints_increase() {
        let c = config();
        for b in 1..c.num_buckets {
            assert!(c.bucket_midpoint(b) > c.bucket_midpoint(b - 1));
        }
    }

    #[test]
    fn trains_and_predicts_plausible_lifetimes() {
        let trace = TraceGenerator::new(21).generate(&ClusterSpec::balanced(0), 14_400.0);
        let baseline = LifetimeMlBaseline::train(config(), &trace).unwrap();
        for job in trace.iter().take(50) {
            let (mean, std) = baseline.predict_lifetime(job);
            assert!(mean > 0.0 && mean.is_finite());
            assert!(std >= 0.0 && std.is_finite());
        }
    }

    #[test]
    fn short_lived_workloads_are_admitted_more_often_than_long_lived() {
        let trace = TraceGenerator::new(22).generate(&ClusterSpec::balanced(0), 28_800.0);
        let mut baseline = LifetimeMlBaseline::train(config(), &trace).unwrap();
        let state = SystemState {
            now: 0.0,
            ssd_occupancy_bytes: 0,
            ssd_capacity_bytes: u64::MAX,
        };
        let cost = JobCost {
            id: byom_trace::JobId(0),
            arrival: 0.0,
            lifetime: 0.0,
            size_bytes: 0,
            tcio_hdd: 0.0,
            tco_hdd: 0.0,
            tco_ssd: 0.0,
            io_density: 0.0,
        };
        let mut short_admit = 0usize;
        let mut short_total = 0usize;
        let mut long_admit = 0usize;
        let mut long_total = 0usize;
        for job in trace.iter() {
            let admitted = baseline.place(job, &cost, &state) == Device::Ssd;
            if job.lifetime < 600.0 {
                short_total += 1;
                short_admit += usize::from(admitted);
            } else if job.lifetime > 6.0 * 3600.0 {
                long_total += 1;
                long_admit += usize::from(admitted);
            }
        }
        if short_total > 0 && long_total > 0 {
            let short_rate = short_admit as f64 / short_total as f64;
            let long_rate = long_admit as f64 / long_total as f64;
            assert!(
                short_rate >= long_rate,
                "short {short_rate} should be admitted at least as often as long {long_rate}"
            );
        }
    }

    #[test]
    fn name_and_ttl_accessors() {
        let trace = TraceGenerator::new(23).generate(&ClusterSpec::balanced(0), 7_200.0);
        let baseline = LifetimeMlBaseline::train(config(), &trace).unwrap();
        assert_eq!(baseline.ttl_secs(), config().ttl_secs);
    }
}
