//! A playback policy for precomputed (e.g. oracle) placement decisions.
//!
//! The clairvoyant oracle from `byom-solver` produces per-job decisions
//! offline; [`OraclePolicy`] replays those decisions through the simulator so
//! oracle curves are measured with exactly the same accounting (spillover,
//! savings summary) as the online policies.

use byom_cost::JobCost;
use byom_sim::{Device, PlacementPolicy, SystemState};
use byom_trace::{JobId, ShuffleJob};
use std::collections::BTreeMap;

/// Replays a precomputed mapping from job ID to placement decision.
#[derive(Debug, Clone)]
pub struct OraclePolicy {
    name: String,
    decisions: BTreeMap<JobId, Device>,
    /// Device used for jobs absent from the decision map.
    default_device: Device,
}

impl OraclePolicy {
    /// Create a playback policy from per-job decisions. Jobs not present in
    /// the map are placed on HDD.
    pub fn new(name: impl Into<String>, decisions: BTreeMap<JobId, Device>) -> Self {
        OraclePolicy {
            name: name.into(),
            decisions,
            default_device: Device::Hdd,
        }
    }

    /// Build a playback policy from a parallel `on_ssd` vector (as returned
    /// by the oracle solver) aligned with `job_ids`.
    ///
    /// # Panics
    /// Panics if the two slices have different lengths.
    pub fn from_selection(name: impl Into<String>, job_ids: &[JobId], on_ssd: &[bool]) -> Self {
        assert_eq!(
            job_ids.len(),
            on_ssd.len(),
            "selection arrays must be parallel"
        );
        let decisions = job_ids
            .iter()
            .zip(on_ssd)
            .map(|(&id, &ssd)| (id, if ssd { Device::Ssd } else { Device::Hdd }))
            .collect();
        OraclePolicy::new(name, decisions)
    }

    /// Number of jobs with an explicit decision.
    pub fn num_decisions(&self) -> usize {
        self.decisions.len()
    }
}

impl PlacementPolicy for OraclePolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn place(&mut self, job: &ShuffleJob, _cost: &JobCost, _state: &SystemState) -> Device {
        *self.decisions.get(&job.id).unwrap_or(&self.default_device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byom_trace::{IoProfile, JobFeatures};

    fn job(id: u64) -> ShuffleJob {
        ShuffleJob {
            id: JobId(id),
            cluster: 0,
            arrival: 0.0,
            lifetime: 1.0,
            size_bytes: 1,
            io: IoProfile::default(),
            features: JobFeatures::default(),
            archetype: 0,
        }
    }

    fn cost() -> JobCost {
        JobCost {
            id: JobId(0),
            arrival: 0.0,
            lifetime: 1.0,
            size_bytes: 1,
            tcio_hdd: 0.0,
            tco_hdd: 0.0,
            tco_ssd: 0.0,
            io_density: 0.0,
        }
    }

    fn state() -> SystemState {
        SystemState {
            now: 0.0,
            ssd_occupancy_bytes: 0,
            ssd_capacity_bytes: 100,
        }
    }

    #[test]
    fn replays_recorded_decisions() {
        let ids = vec![JobId(0), JobId(1), JobId(2)];
        let on_ssd = vec![true, false, true];
        let mut p = OraclePolicy::from_selection("Oracle TCO", &ids, &on_ssd);
        assert_eq!(p.num_decisions(), 3);
        assert_eq!(p.place(&job(0), &cost(), &state()), Device::Ssd);
        assert_eq!(p.place(&job(1), &cost(), &state()), Device::Hdd);
        assert_eq!(p.place(&job(2), &cost(), &state()), Device::Ssd);
    }

    #[test]
    fn unknown_jobs_default_to_hdd() {
        let mut p = OraclePolicy::new("Oracle", BTreeMap::new());
        assert_eq!(p.place(&job(42), &cost(), &state()), Device::Hdd);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_selection_lengths_panic() {
        let _ = OraclePolicy::from_selection("x", &[JobId(0)], &[]);
    }

    #[test]
    fn name_reflects_construction() {
        let p = OraclePolicy::new("Oracle TCIO", BTreeMap::new());
        assert_eq!(p.name(), "Oracle TCIO");
    }
}
