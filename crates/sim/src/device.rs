//! The device-behavior hook: how the simulated SSD's capacity and admission
//! path behave over (simulated) time.
//!
//! The default device, [`IdealDevice`], is the happy path the simulator has
//! always modelled: a constant capacity and an admission path that never
//! fails. Fault-injection layers (see the `byom_chaos` crate) implement
//! [`DeviceModel`] to introduce capacity step-downs/recoveries and transient
//! admission failures — deterministically, as a pure function of the plan
//! seed and simulated time.

use crate::result::ResilienceReport;
use byom_trace::ShuffleJob;

/// Deterministic device behavior observed by the simulator.
///
/// All methods are driven by *simulated* time (`now` is the arriving job's
/// arrival time); implementations must not consult wall clocks or unseeded
/// randomness.
pub trait DeviceModel {
    /// Effective SSD capacity at `now`, given the configured base capacity.
    ///
    /// The default is the base capacity (no step-downs). When the returned
    /// capacity drops below current occupancy, residents are *not* evicted;
    /// new admissions simply find no free space until occupancy drains.
    fn capacity_at(&mut self, now: f64, base_capacity_bytes: u64) -> u64 {
        let _ = now;
        base_capacity_bytes
    }

    /// Whether the device accepts a new SSD admission for `job` at `now`.
    ///
    /// Returning `false` models a transient admission failure: the job is
    /// recorded as scheduled-to-SSD but fully spilled (the policy's feedback
    /// loop sees the miss). The default always accepts.
    fn try_admit(&mut self, now: f64, job: &ShuffleJob) -> bool {
        let _ = (now, job);
        true
    }

    /// Record device-level fault counts into the run's resilience report.
    /// The default (no faults) leaves the report untouched.
    fn fill_report(&self, report: &mut ResilienceReport) {
        let _ = report;
    }
}

/// The fault-free device: constant capacity, admissions never fail.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdealDevice;

impl DeviceModel for IdealDevice {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_device_is_transparent() {
        let mut d = IdealDevice;
        assert_eq!(d.capacity_at(123.0, 42), 42);
        let mut report = ResilienceReport::default();
        d.fill_report(&mut report);
        assert_eq!(report, ResilienceReport::default());
    }
}
