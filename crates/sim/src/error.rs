//! Typed simulator errors.

use std::fmt;

/// Errors produced while configuring or driving the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A quota fraction passed to
    /// [`SimConfig::try_from_quota_fraction`](crate::SimConfig::try_from_quota_fraction)
    /// was negative, NaN, or infinite.
    InvalidQuota {
        /// The offending fraction.
        fraction: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidQuota { fraction } => {
                write!(
                    f,
                    "quota fraction must be finite and non-negative, got {fraction}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_offending_value() {
        let e = SimError::InvalidQuota { fraction: -0.5 };
        let msg = e.to_string();
        assert!(msg.contains("quota fraction"), "got {msg}");
        assert!(msg.contains("-0.5"), "got {msg}");
    }
}
