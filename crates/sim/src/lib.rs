//! Discrete-event SSD/HDD tiering simulator.
//!
//! This crate reproduces the paper's large-scale simulation methodology
//! (Section 5.1): placement policies observe jobs in arrival order and decide
//! whether to schedule each job's intermediate files on SSD or HDD. The SSD
//! has a fixed space quota; a job scheduled to SSD that only partially fits
//! spills the remainder over to HDD. The simulator tracks realized SSD
//! fractions per job, produces the paper's TCO/TCIO savings metrics via
//! `byom-cost`, and feeds placement outcomes back to adaptive policies.
//!
//! ```
//! use byom_cost::{CostModel, CostRates};
//! use byom_sim::{Device, JobOutcome, PlacementPolicy, SimConfig, Simulator, SystemState};
//! use byom_trace::{ClusterSpec, ShuffleJob, TraceGenerator};
//!
//! /// A trivial policy that sends everything to SSD.
//! #[derive(Debug)]
//! struct AlwaysSsd;
//! impl PlacementPolicy for AlwaysSsd {
//!     fn name(&self) -> &str { "always-ssd" }
//!     fn place(&mut self, _job: &ShuffleJob, _cost: &byom_cost::JobCost, _state: &SystemState) -> Device {
//!         Device::Ssd
//!     }
//! }
//!
//! let trace = TraceGenerator::new(5).generate(&ClusterSpec::balanced(0), 3_600.0);
//! let model = CostModel::new(CostRates::default());
//! let config = SimConfig { ssd_capacity_bytes: trace.peak_space_usage() / 10 };
//! let result = Simulator::new(config, model).run(&trace, &mut AlwaysSsd);
//! assert_eq!(result.outcomes.len(), trace.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod device;
pub mod error;
pub mod policy;
pub mod result;
pub mod runtime;
pub mod simulator;

pub use device::{DeviceModel, IdealDevice};
pub use error::SimError;
pub use policy::{Device, JobOutcome, PlacementPolicy, SystemState};
pub use result::{ResilienceReport, SimulationResult};
pub use runtime::application_runtime_savings_percent;
pub use simulator::{SimConfig, Simulator};
