//! The placement-policy interface and the outcome/feedback types shared
//! between the simulator and policies.

use crate::result::ResilienceReport;
use byom_cost::JobCost;
use byom_trace::{JobId, ShuffleJob};
use serde::{Deserialize, Serialize};

/// The device a policy schedules a job onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Device {
    /// Schedule the job's intermediate files onto SSD.
    Ssd,
    /// Schedule the job's intermediate files onto HDD.
    Hdd,
}

/// Online system state visible to a policy at placement-decision time.
///
/// Only information that a production storage layer would actually have at
/// decision time is included: current occupancy, capacity, and the clock.
/// Clairvoyant information (future arrivals, true job lifetimes) is *not*
/// exposed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemState {
    /// Current simulation time (the arriving job's arrival time).
    pub now: f64,
    /// Bytes currently resident on SSD.
    pub ssd_occupancy_bytes: u64,
    /// Configured SSD capacity in bytes.
    pub ssd_capacity_bytes: u64,
}

impl SystemState {
    /// Free SSD capacity in bytes.
    pub fn ssd_free_bytes(&self) -> u64 {
        self.ssd_capacity_bytes
            .saturating_sub(self.ssd_occupancy_bytes)
    }

    /// Fraction of SSD capacity in use, in `[0, 1]` (0 if capacity is zero).
    pub fn ssd_utilization(&self) -> f64 {
        if self.ssd_capacity_bytes == 0 {
            return 0.0;
        }
        (self.ssd_occupancy_bytes as f64 / self.ssd_capacity_bytes as f64).min(1.0)
    }
}

/// The realized outcome of one job's placement, reported back to policies
/// after the simulator resolves capacity and spillover.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// The job this outcome describes.
    pub job_id: JobId,
    /// Arrival time of the job.
    pub arrival: f64,
    /// End time of the job.
    pub end: f64,
    /// The device the policy scheduled the job onto.
    pub scheduled: Device,
    /// Fraction of the job's footprint actually served from SSD (0 for jobs
    /// scheduled to HDD; may be < 1 for SSD-scheduled jobs that spilled).
    pub ssd_fraction: f64,
    /// Time at which spillover began, if any. With the constant-footprint
    /// model spillover is detected at admission, so this equals `arrival`.
    pub spillover_time: Option<f64>,
    /// The job's TCIO if it had run on HDD (used for spillover feedback).
    pub tcio_hdd: f64,
    /// The job's peak footprint in bytes.
    pub size_bytes: u64,
}

impl JobOutcome {
    /// Whether the job was scheduled onto SSD but did not fully fit.
    pub fn spilled(&self) -> bool {
        self.scheduled == Device::Ssd && self.ssd_fraction < 1.0
    }

    /// The paper's `SPILLOVER_TCIO(x, t)`: the portion of the job's intended
    /// TCIO savings not realized because of spillover, evaluated at time `t`.
    ///
    /// Returns 0 for jobs scheduled to HDD, jobs that fully fit, or `t`
    /// before the spillover started.
    pub fn spillover_tcio(&self, t: f64) -> f64 {
        let Some(ts) = self.spillover_time else {
            return 0.0;
        };
        if self.scheduled != Device::Ssd || t <= self.arrival || t < ts {
            return 0.0;
        }
        // Fraction of the observation window [arrival, t] spent spilled,
        // weighted by the portion of the job that spilled.
        let window = (t - self.arrival).max(1e-9);
        let spilled_window = (t.min(self.end).max(ts) - ts).max(0.0);
        (spilled_window / window) * (1.0 - self.ssd_fraction) * self.tcio_hdd
    }
}

/// A storage-placement policy: decides SSD vs HDD for each arriving job.
///
/// Policies may keep internal state (admission sets, models, feedback
/// windows); the simulator calls [`PlacementPolicy::observe`] after each
/// job's outcome is known so adaptive policies can react to spillover.
pub trait PlacementPolicy {
    /// Human-readable policy name used in reports and figures.
    fn name(&self) -> &str;

    /// Decide where to schedule `job`. `cost` carries the *precomputed*
    /// offline cost quantities; online policies must only rely on fields
    /// that would be available at decision time (the adaptive policies in
    /// `byom-policies`/`byom-core` only use model features and feedback).
    fn place(&mut self, job: &ShuffleJob, cost: &JobCost, state: &SystemState) -> Device;

    /// Observe the realized outcome of a previously placed job. Default: no-op.
    fn observe(&mut self, outcome: &JobOutcome) {
        let _ = outcome;
    }

    /// Contribute policy-side degradation accounting (e.g. the ladder's
    /// per-rung occupancy) to the run's resilience report. The simulator
    /// calls this once at the end of every run. Default: no-op, so plain
    /// policies keep the all-zero report.
    fn fill_resilience(&self, report: &mut ResilienceReport) {
        let _ = report;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_state_helpers() {
        let s = SystemState {
            now: 0.0,
            ssd_occupancy_bytes: 30,
            ssd_capacity_bytes: 100,
        };
        assert_eq!(s.ssd_free_bytes(), 70);
        assert!((s.ssd_utilization() - 0.3).abs() < 1e-12);
        let full = SystemState {
            ssd_occupancy_bytes: 200,
            ..s
        };
        assert_eq!(full.ssd_free_bytes(), 0);
        assert_eq!(full.ssd_utilization(), 1.0);
        let zero_cap = SystemState {
            ssd_capacity_bytes: 0,
            ..s
        };
        assert_eq!(zero_cap.ssd_utilization(), 0.0);
    }

    fn outcome(scheduled: Device, fraction: f64, spill: Option<f64>) -> JobOutcome {
        JobOutcome {
            job_id: JobId(0),
            arrival: 10.0,
            end: 110.0,
            scheduled,
            ssd_fraction: fraction,
            spillover_time: spill,
            tcio_hdd: 2.0,
            size_bytes: 100,
        }
    }

    #[test]
    fn spilled_detection() {
        assert!(outcome(Device::Ssd, 0.5, Some(10.0)).spilled());
        assert!(!outcome(Device::Ssd, 1.0, None).spilled());
        assert!(!outcome(Device::Hdd, 0.0, None).spilled());
    }

    #[test]
    fn spillover_tcio_zero_without_spill_or_for_hdd() {
        assert_eq!(outcome(Device::Ssd, 1.0, None).spillover_tcio(50.0), 0.0);
        assert_eq!(
            outcome(Device::Hdd, 0.0, Some(10.0)).spillover_tcio(50.0),
            0.0
        );
    }

    #[test]
    fn spillover_tcio_full_spill_from_arrival_equals_tcio() {
        // Job fully spilled from its arrival: at any t within its life, the
        // full TCIO counts as spilled.
        let o = outcome(Device::Ssd, 0.0, Some(10.0));
        assert!((o.spillover_tcio(60.0) - 2.0).abs() < 1e-9);
        assert!((o.spillover_tcio(110.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn spillover_tcio_partial_spill_scales_with_fraction() {
        let o = outcome(Device::Ssd, 0.75, Some(10.0));
        assert!((o.spillover_tcio(60.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn spillover_tcio_before_arrival_is_zero() {
        let o = outcome(Device::Ssd, 0.0, Some(10.0));
        assert_eq!(o.spillover_tcio(10.0), 0.0);
        assert_eq!(o.spillover_tcio(5.0), 0.0);
    }
}
