//! Simulation results: per-job outcomes, aggregate savings, and the
//! derived spillover statistics used by feedback-driven policies and by
//! the Figure 16 dynamics plots.

use crate::policy::{Device, JobOutcome};
use byom_cost::{JobCost, SavingsSummary};
use serde::{Deserialize, Serialize};

/// Fault and degradation accounting for one simulator run.
///
/// A fault-free run of a plain policy carries the all-zero default report,
/// so results from unfaulted runs are byte-identical with and without a
/// zero-fault plan. Trace- and model-level counts are merged in by the
/// fault-injection layer (`byom_chaos`); device-level counts come from the
/// [`DeviceModel`](crate::device::DeviceModel) driving the run; degradation
/// policies contribute their rung occupancy through
/// [`PlacementPolicy::fill_resilience`](crate::policy::PlacementPolicy::fill_resilience).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ResilienceReport {
    /// Jobs removed from the trace by drop faults.
    pub jobs_dropped: u64,
    /// Jobs re-submitted by duplication faults.
    pub jobs_duplicated: u64,
    /// Jobs whose size/lifetime metadata was corrupted.
    pub jobs_corrupted: u64,
    /// Jobs whose feature columns were blanked.
    pub features_blanked: u64,
    /// Placement decisions made while the model was blacked out.
    pub model_blackouts: u64,
    /// Model predictions flipped to a wrong category.
    pub labels_flipped: u64,
    /// SSD capacity step-down/recovery transitions observed.
    pub capacity_steps: u64,
    /// Distinct transient admission outages triggered.
    pub admission_outages: u64,
    /// SSD admissions rejected while the device was unavailable.
    pub admission_failures: u64,
    /// Placement decisions made by each rung of the degradation ladder
    /// (model, hash, heuristic, first-fit). Empty for non-ladder policies.
    pub fallback_occupancy: Vec<u64>,
    /// TCO-savings delta (percentage points) of this run versus its
    /// unfaulted twin run. Zero when no twin was computed or no savings were
    /// lost.
    pub savings_delta_percent: f64,
}

impl ResilienceReport {
    /// Total faults injected across the trace, model, and device surfaces.
    pub fn faults_injected(&self) -> u64 {
        self.jobs_dropped
            + self.jobs_duplicated
            + self.jobs_corrupted
            + self.features_blanked
            + self.model_blackouts
            + self.labels_flipped
            + self.capacity_steps
            + self.admission_failures
    }
}

/// The output of one simulator run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationResult {
    /// The policy that produced this result.
    pub policy_name: String,
    /// The SSD quota the run used, in bytes.
    pub ssd_capacity_bytes: u64,
    /// Per-job realized outcomes, in arrival order.
    pub outcomes: Vec<JobOutcome>,
    /// Per-job cost quantities, parallel to `outcomes`.
    pub costs: Vec<JobCost>,
    /// Aggregate savings relative to the all-on-HDD baseline.
    pub savings: SavingsSummary,
    /// Peak SSD occupancy observed during the run.
    pub peak_ssd_occupancy_bytes: u64,
    /// Fault and degradation accounting (all-zero for fault-free runs).
    pub resilience: ResilienceReport,
}

impl SimulationResult {
    /// TCO savings percent (convenience forward to the summary).
    pub fn tco_savings_percent(&self) -> f64 {
        self.savings.tco_savings_percent()
    }

    /// TCIO savings percent (convenience forward to the summary).
    pub fn tcio_savings_percent(&self) -> f64 {
        self.savings.tcio_savings_percent()
    }

    /// Number of jobs the policy scheduled onto SSD (whether or not they fit).
    pub fn jobs_scheduled_to_ssd(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.scheduled == Device::Ssd)
            .count()
    }

    /// Number of jobs that spilled over (scheduled to SSD but not fully fit).
    pub fn jobs_spilled(&self) -> usize {
        self.outcomes.iter().filter(|o| o.spilled()).count()
    }

    /// The paper's spillover-TCIO percentage evaluated over all outcomes at
    /// the end of the run: spilled TCIO of SSD-scheduled jobs divided by the
    /// total TCIO of SSD-scheduled jobs. Returns 0 if nothing was scheduled
    /// to SSD.
    pub fn spillover_tcio_percent(&self) -> f64 {
        let mut spilled = 0.0;
        let mut scheduled = 0.0;
        for o in &self.outcomes {
            if o.scheduled == Device::Ssd {
                scheduled += o.tcio_hdd;
                spilled += o.spillover_tcio(o.end);
            }
        }
        if scheduled <= 0.0 {
            0.0
        } else {
            spilled / scheduled * 100.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byom_trace::JobId;

    fn outcome(id: u64, scheduled: Device, fraction: f64) -> JobOutcome {
        JobOutcome {
            job_id: JobId(id),
            arrival: 0.0,
            end: 100.0,
            scheduled,
            ssd_fraction: fraction,
            spillover_time: if fraction < 1.0 && scheduled == Device::Ssd {
                Some(0.0)
            } else {
                None
            },
            tcio_hdd: 1.0,
            size_bytes: 10,
        }
    }

    fn cost(id: u64) -> JobCost {
        JobCost {
            id: JobId(id),
            arrival: 0.0,
            lifetime: 100.0,
            size_bytes: 10,
            tcio_hdd: 1.0,
            tco_hdd: 2.0,
            tco_ssd: 1.0,
            io_density: 1.0,
        }
    }

    fn result(outcomes: Vec<JobOutcome>) -> SimulationResult {
        let costs: Vec<JobCost> = (0..outcomes.len() as u64).map(cost).collect();
        SimulationResult {
            policy_name: "test".into(),
            ssd_capacity_bytes: 100,
            outcomes,
            costs,
            savings: SavingsSummary::default(),
            peak_ssd_occupancy_bytes: 0,
            resilience: ResilienceReport::default(),
        }
    }

    #[test]
    fn counts_scheduled_and_spilled() {
        let r = result(vec![
            outcome(0, Device::Ssd, 1.0),
            outcome(1, Device::Ssd, 0.5),
            outcome(2, Device::Hdd, 0.0),
        ]);
        assert_eq!(r.jobs_scheduled_to_ssd(), 2);
        assert_eq!(r.jobs_spilled(), 1);
    }

    #[test]
    fn spillover_percent_zero_when_nothing_scheduled() {
        let r = result(vec![outcome(0, Device::Hdd, 0.0)]);
        assert_eq!(r.spillover_tcio_percent(), 0.0);
    }

    #[test]
    fn resilience_report_sums_fault_counts() {
        let report = ResilienceReport {
            jobs_dropped: 1,
            jobs_duplicated: 2,
            jobs_corrupted: 3,
            features_blanked: 4,
            model_blackouts: 5,
            labels_flipped: 6,
            capacity_steps: 7,
            admission_outages: 100, // outages are not themselves fault events
            admission_failures: 8,
            fallback_occupancy: vec![1, 2, 3, 4],
            savings_delta_percent: -1.5,
        };
        assert_eq!(report.faults_injected(), 36);
        assert_eq!(ResilienceReport::default().faults_injected(), 0);
    }

    #[test]
    fn spillover_percent_reflects_unrealized_tcio() {
        // Two SSD-scheduled jobs, one fully fit, one fully spilled.
        let r = result(vec![
            outcome(0, Device::Ssd, 1.0),
            outcome(1, Device::Ssd, 0.0),
        ]);
        assert!((r.spillover_tcio_percent() - 50.0).abs() < 1e-9);
    }
}
