//! Application run-time savings model (Appendix C.1.2, Figure 14).
//!
//! The paper measures workload execution time in its prototype and observes
//! that jobs whose intermediate files land on SSD finish somewhat faster,
//! with the improvement depending on the job's compute-to-I/O ratio. We model
//! this with a simple queueing-free approximation: a job's lifetime consists
//! of its HDD disk-busy time (TCIO × lifetime, capped at the lifetime) plus
//! everything else (compute, network, framework overhead). The portion served
//! from SSD completes its I/O faster by a fixed service-time ratio.

use crate::result::SimulationResult;

/// How much faster SSD serves a unit of I/O relative to HDD in this model
/// (service-time ratio). 8× is a conservative figure for random I/O.
pub const SSD_SPEEDUP: f64 = 8.0;

/// Aggregate application run-time savings percentage for a simulation run:
/// the reduction in summed job run time relative to running every job on HDD.
///
/// Returns 0 for an empty run.
pub fn application_runtime_savings_percent(result: &SimulationResult) -> f64 {
    let mut baseline = 0.0;
    let mut saved = 0.0;
    for (o, c) in result.outcomes.iter().zip(&result.costs) {
        let lifetime = c.lifetime.max(0.0);
        baseline += lifetime;
        // Disk-busy time on HDD, bounded by the job's lifetime.
        let io_time_hdd = (c.tcio_hdd * lifetime).min(lifetime);
        // The SSD-resident fraction of the I/O completes SSD_SPEEDUP× faster.
        let io_time_saved = o.ssd_fraction * io_time_hdd * (1.0 - 1.0 / SSD_SPEEDUP);
        saved += io_time_saved;
    }
    if baseline <= 0.0 {
        0.0
    } else {
        saved / baseline * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Device, JobOutcome};
    use byom_cost::{JobCost, SavingsSummary};
    use byom_trace::JobId;

    fn run(fraction: f64, tcio: f64) -> SimulationResult {
        SimulationResult {
            policy_name: "test".into(),
            ssd_capacity_bytes: 0,
            outcomes: vec![JobOutcome {
                job_id: JobId(0),
                arrival: 0.0,
                end: 100.0,
                scheduled: if fraction > 0.0 {
                    Device::Ssd
                } else {
                    Device::Hdd
                },
                ssd_fraction: fraction,
                spillover_time: None,
                tcio_hdd: tcio,
                size_bytes: 1,
            }],
            costs: vec![JobCost {
                id: JobId(0),
                arrival: 0.0,
                lifetime: 100.0,
                size_bytes: 1,
                tcio_hdd: tcio,
                tco_hdd: 1.0,
                tco_ssd: 1.0,
                io_density: 1.0,
            }],
            savings: SavingsSummary::default(),
            peak_ssd_occupancy_bytes: 0,
            resilience: crate::result::ResilienceReport::default(),
        }
    }

    #[test]
    fn hdd_only_run_has_zero_runtime_savings() {
        assert_eq!(application_runtime_savings_percent(&run(0.0, 0.5)), 0.0);
    }

    #[test]
    fn ssd_run_saves_runtime_proportional_to_io_share() {
        // Half of the lifetime is disk-busy; on SSD it shrinks by 7/8.
        let s = application_runtime_savings_percent(&run(1.0, 0.5));
        assert!((s - 50.0 * (1.0 - 1.0 / SSD_SPEEDUP)).abs() < 1e-9);
    }

    #[test]
    fn io_time_is_capped_at_lifetime() {
        // TCIO of 4 would imply 400s of disk time in a 100s lifetime; the
        // model caps it so savings cannot exceed the speedup bound.
        let s = application_runtime_savings_percent(&run(1.0, 4.0));
        assert!(s <= 100.0 * (1.0 - 1.0 / SSD_SPEEDUP) + 1e-9);
    }

    #[test]
    fn partial_placement_scales_savings() {
        let full = application_runtime_savings_percent(&run(1.0, 0.5));
        let half = application_runtime_savings_percent(&run(0.5, 0.5));
        assert!((half - full / 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_run_is_zero() {
        let r = SimulationResult {
            policy_name: "x".into(),
            ssd_capacity_bytes: 0,
            outcomes: vec![],
            costs: vec![],
            savings: SavingsSummary::default(),
            peak_ssd_occupancy_bytes: 0,
            resilience: crate::result::ResilienceReport::default(),
        };
        assert_eq!(application_runtime_savings_percent(&r), 0.0);
    }
}
