//! The tiering simulator: replays a trace against a placement policy under a
//! fixed SSD quota, resolving capacity and spillover.

use crate::device::{DeviceModel, IdealDevice};
use crate::error::SimError;
use crate::policy::{Device, JobOutcome, PlacementPolicy, SystemState};
use crate::result::SimulationResult;
use byom_cost::{savings_summary, CostModel, Placement};
use byom_trace::Trace;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// SSD space quota in bytes. The paper expresses quotas as a fraction of
    /// the trace's peak space usage ([`byom_trace::Trace::peak_space_usage`]).
    pub ssd_capacity_bytes: u64,
}

impl SimConfig {
    /// Convenience constructor: a quota expressed as a fraction of a trace's
    /// peak space usage.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidQuota`] if `fraction` is negative, NaN, or
    /// infinite.
    pub fn try_from_quota_fraction(trace: &Trace, fraction: f64) -> Result<Self, SimError> {
        if !fraction.is_finite() || fraction < 0.0 {
            return Err(SimError::InvalidQuota { fraction });
        }
        Ok(SimConfig {
            ssd_capacity_bytes: (trace.peak_space_usage() as f64 * fraction) as u64,
        })
    }
}

/// Event-driven SSD/HDD tiering simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
    cost_model: CostModel,
}

/// Ordered-by-end-time entry for the SSD residency heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Resident {
    end: f64,
    bytes: u64,
}

impl Eq for Resident {}
impl PartialOrd for Resident {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Resident {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.end
            .total_cmp(&other.end)
            .then(self.bytes.cmp(&other.bytes))
    }
}

impl Simulator {
    /// Create a simulator with the given configuration and cost model.
    pub fn new(config: SimConfig, cost_model: CostModel) -> Self {
        Simulator { config, cost_model }
    }

    /// The simulator's configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Replay `trace` against `policy` and return per-job outcomes plus the
    /// aggregate savings summary.
    ///
    /// Jobs are processed in arrival order. For each job the policy decides a
    /// device; jobs scheduled to SSD take as much of their footprint as fits
    /// under the quota at admission time, and the remainder spills to HDD
    /// (mirroring the paper's simulation methodology). SSD space is released
    /// when jobs end.
    pub fn run<P: PlacementPolicy + ?Sized>(
        &self,
        trace: &Trace,
        policy: &mut P,
    ) -> SimulationResult {
        self.run_with_device(trace, policy, &mut IdealDevice)
    }

    /// Like [`Simulator::run`], but with an explicit [`DeviceModel`] driving
    /// the SSD's effective capacity and admission path over simulated time.
    ///
    /// With [`IdealDevice`] this is exactly [`Simulator::run`]; fault models
    /// (see `byom_chaos`) introduce capacity step-downs and transient
    /// admission failures here. An admission rejected by the device is
    /// recorded as a fully spilled SSD-scheduled job, so adaptive policies
    /// observe the miss through their normal spillover feedback.
    pub fn run_with_device<P, D>(
        &self,
        trace: &Trace,
        policy: &mut P,
        device: &mut D,
    ) -> SimulationResult
    where
        P: PlacementPolicy + ?Sized,
        D: DeviceModel + ?Sized,
    {
        let costs = self.cost_model.cost_trace(trace);
        let base_capacity = self.config.ssd_capacity_bytes;

        // Min-heap of SSD residents by end time.
        let mut residents: BinaryHeap<Reverse<Resident>> = BinaryHeap::new();
        let mut occupancy: u64 = 0;
        let mut peak_occupancy: u64 = 0;

        let mut outcomes = Vec::with_capacity(trace.len());
        let mut placements = Vec::with_capacity(trace.len());

        for (job, cost) in trace.iter().zip(&costs) {
            let now = job.arrival;
            // Release residents that ended before this arrival.
            while let Some(Reverse(r)) = residents.peek() {
                if r.end <= now {
                    occupancy = occupancy.saturating_sub(r.bytes);
                    residents.pop();
                } else {
                    break;
                }
            }

            let capacity = device.capacity_at(now, base_capacity);
            let state = SystemState {
                now,
                ssd_occupancy_bytes: occupancy,
                ssd_capacity_bytes: capacity,
            };
            let decision = policy.place(job, cost, &state);

            let (ssd_fraction, spillover_time) = match decision {
                Device::Hdd => (0.0, None),
                Device::Ssd if !device.try_admit(now, job) => {
                    // Transient admission failure: scheduled to SSD but
                    // nothing placed — a full spill from arrival.
                    (0.0, Some(now))
                }
                Device::Ssd => {
                    let free = capacity.saturating_sub(occupancy);
                    let placed = free.min(job.size_bytes);
                    if placed > 0 {
                        occupancy += placed;
                        peak_occupancy = peak_occupancy.max(occupancy);
                        residents.push(Reverse(Resident {
                            end: job.end(),
                            bytes: placed,
                        }));
                    }
                    let fraction = if job.size_bytes == 0 {
                        0.0
                    } else {
                        placed as f64 / job.size_bytes as f64
                    };
                    let spill = if fraction < 1.0 { Some(now) } else { None };
                    (fraction, spill)
                }
            };

            let outcome = JobOutcome {
                job_id: job.id,
                arrival: job.arrival,
                end: job.end(),
                scheduled: decision,
                ssd_fraction,
                spillover_time,
                tcio_hdd: cost.tcio_hdd,
                size_bytes: job.size_bytes,
            };
            policy.observe(&outcome);
            outcomes.push(outcome);
            placements.push(Placement::partial(ssd_fraction.clamp(0.0, 1.0)));
        }

        let savings = savings_summary(&costs, &placements);
        let mut result = SimulationResult {
            policy_name: policy.name().to_string(),
            ssd_capacity_bytes: base_capacity,
            outcomes,
            costs,
            savings,
            peak_ssd_occupancy_bytes: peak_occupancy,
            resilience: Default::default(),
        };
        device.fill_report(&mut result.resilience);
        policy.fill_resilience(&mut result.resilience);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byom_cost::{CostRates, JobCost};
    use byom_trace::{ClusterSpec, IoProfile, JobFeatures, JobId, ShuffleJob, TraceGenerator};

    /// Policy scheduling every job to SSD.
    #[derive(Debug)]
    struct AlwaysSsd;
    impl PlacementPolicy for AlwaysSsd {
        fn name(&self) -> &str {
            "always-ssd"
        }
        fn place(&mut self, _: &ShuffleJob, _: &JobCost, _: &SystemState) -> Device {
            Device::Ssd
        }
    }

    /// Policy scheduling every job to HDD.
    #[derive(Debug)]
    struct AlwaysHdd;
    impl PlacementPolicy for AlwaysHdd {
        fn name(&self) -> &str {
            "always-hdd"
        }
        fn place(&mut self, _: &ShuffleJob, _: &JobCost, _: &SystemState) -> Device {
            Device::Hdd
        }
    }

    fn job(id: u64, arrival: f64, lifetime: f64, size: u64) -> ShuffleJob {
        ShuffleJob {
            id: JobId(id),
            cluster: 0,
            arrival,
            lifetime,
            size_bytes: size,
            io: IoProfile {
                read_bytes: size * 2,
                written_bytes: size,
                read_ops: 100,
                write_ops: 100,
                dram_hit_fraction: 0.0,
                mean_read_size: 64 * 1024,
            },
            features: JobFeatures::default(),
            archetype: 0,
        }
    }

    fn model() -> CostModel {
        CostModel::new(CostRates::default())
    }

    #[test]
    fn all_hdd_policy_yields_zero_savings() {
        let trace = TraceGenerator::new(1).generate(&ClusterSpec::balanced(0), 3_600.0);
        let config = SimConfig::try_from_quota_fraction(&trace, 0.1).unwrap();
        let result = Simulator::new(config, model()).run(&trace, &mut AlwaysHdd);
        assert_eq!(result.savings.tco_savings_percent(), 0.0);
        assert_eq!(result.savings.tcio_savings_percent(), 0.0);
        assert!(result.outcomes.iter().all(|o| o.ssd_fraction == 0.0));
        assert_eq!(result.peak_ssd_occupancy_bytes, 0);
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let trace = TraceGenerator::new(2).generate(&ClusterSpec::balanced(0), 7_200.0);
        let config = SimConfig::try_from_quota_fraction(&trace, 0.05).unwrap();
        let result = Simulator::new(config, model()).run(&trace, &mut AlwaysSsd);
        assert!(result.peak_ssd_occupancy_bytes <= config.ssd_capacity_bytes);
    }

    #[test]
    fn unlimited_capacity_means_no_spillover() {
        let trace = TraceGenerator::new(3).generate(&ClusterSpec::balanced(0), 3_600.0);
        let config = SimConfig {
            ssd_capacity_bytes: u64::MAX,
        };
        let result = Simulator::new(config, model()).run(&trace, &mut AlwaysSsd);
        assert!(result.outcomes.iter().all(|o| o.ssd_fraction == 1.0));
        assert!(result.outcomes.iter().all(|o| !o.spilled()));
        assert!(result.savings.tcio_savings_percent() > 99.9);
    }

    #[test]
    fn spillover_happens_when_capacity_is_tight() {
        // Two overlapping jobs of 100 bytes each, capacity 150: the second
        // only half fits.
        let trace = Trace::new(vec![job(0, 0.0, 100.0, 100), job(1, 10.0, 100.0, 100)]);
        let config = SimConfig {
            ssd_capacity_bytes: 150,
        };
        let result = Simulator::new(config, model()).run(&trace, &mut AlwaysSsd);
        assert_eq!(result.outcomes[0].ssd_fraction, 1.0);
        assert!((result.outcomes[1].ssd_fraction - 0.5).abs() < 1e-9);
        assert!(result.outcomes[1].spilled());
        assert_eq!(result.outcomes[1].spillover_time, Some(10.0));
    }

    #[test]
    fn capacity_is_released_when_jobs_end() {
        // Sequential jobs that do not overlap should all fit.
        let trace = Trace::new(vec![
            job(0, 0.0, 50.0, 100),
            job(1, 60.0, 50.0, 100),
            job(2, 120.0, 50.0, 100),
        ]);
        let config = SimConfig {
            ssd_capacity_bytes: 100,
        };
        let result = Simulator::new(config, model()).run(&trace, &mut AlwaysSsd);
        assert!(result.outcomes.iter().all(|o| o.ssd_fraction == 1.0));
    }

    #[test]
    fn zero_capacity_spills_everything() {
        let trace = Trace::new(vec![job(0, 0.0, 50.0, 100)]);
        let config = SimConfig {
            ssd_capacity_bytes: 0,
        };
        let result = Simulator::new(config, model()).run(&trace, &mut AlwaysSsd);
        assert_eq!(result.outcomes[0].ssd_fraction, 0.0);
        assert!(result.outcomes[0].spilled());
    }

    #[test]
    fn policy_observe_receives_every_outcome() {
        #[derive(Debug, Default)]
        struct Counting {
            observed: usize,
        }
        impl PlacementPolicy for Counting {
            fn name(&self) -> &str {
                "counting"
            }
            fn place(&mut self, _: &ShuffleJob, _: &JobCost, _: &SystemState) -> Device {
                Device::Ssd
            }
            fn observe(&mut self, _: &JobOutcome) {
                self.observed += 1;
            }
        }
        let trace = Trace::new(vec![job(0, 0.0, 10.0, 10), job(1, 5.0, 10.0, 10)]);
        let mut policy = Counting::default();
        let _ = Simulator::new(
            SimConfig {
                ssd_capacity_bytes: 100,
            },
            model(),
        )
        .run(&trace, &mut policy);
        assert_eq!(policy.observed, 2);
    }

    #[test]
    fn invalid_quota_fractions_are_typed_errors() {
        let trace = Trace::new(vec![job(0, 0.0, 10.0, 10)]);
        for bad in [-0.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = SimConfig::try_from_quota_fraction(&trace, bad);
            assert!(
                matches!(err, Err(SimError::InvalidQuota { .. })),
                "fraction {bad} should be rejected"
            );
        }
        assert!(SimConfig::try_from_quota_fraction(&trace, 0.0).is_ok());
        assert!(SimConfig::try_from_quota_fraction(&trace, 1.5).is_ok());
    }

    #[test]
    fn run_with_ideal_device_matches_run() {
        let trace = TraceGenerator::new(9).generate(&ClusterSpec::balanced(0), 3_600.0);
        let config = SimConfig::try_from_quota_fraction(&trace, 0.05).unwrap();
        let sim = Simulator::new(config, model());
        let plain = sim.run(&trace, &mut AlwaysSsd);
        let with_device = sim.run_with_device(&trace, &mut AlwaysSsd, &mut IdealDevice);
        assert_eq!(plain, with_device);
        assert_eq!(plain.resilience, Default::default());
    }
}
