//! Exact branch-and-bound solver for small temporal-knapsack instances.
//!
//! Exponential in the number of jobs, so only suitable for instances with a
//! few dozen jobs. Its role is to validate the greedy [`crate::Oracle`]'s
//! optimality gap in tests and to solve the small prototype-scale
//! experiments exactly.

use crate::oracle::{OracleObjective, OracleSolution};
use crate::segment_tree::SegmentTree;
use crate::timeline::Timeline;
use byom_cost::JobCost;

/// Maximum instance size accepted by [`solve_exact`].
pub const MAX_EXACT_JOBS: usize = 28;

/// Solve the placement ILP exactly by branch-and-bound.
///
/// # Panics
/// Panics if `jobs.len() > MAX_EXACT_JOBS` (the search is exponential).
pub fn solve_exact(
    objective: OracleObjective,
    capacity_bytes: u64,
    jobs: &[JobCost],
) -> OracleSolution {
    assert!(
        jobs.len() <= MAX_EXACT_JOBS,
        "exact solver limited to {MAX_EXACT_JOBS} jobs, got {}",
        jobs.len()
    );
    if jobs.is_empty() {
        return OracleSolution {
            on_ssd: Vec::new(),
            total_value: 0.0,
            peak_occupancy: 0,
        };
    }

    let timeline = Timeline::new(jobs);
    // Candidate order: decreasing value density (good for pruning).
    let mut candidates: Vec<(usize, f64, f64)> = jobs
        .iter()
        .enumerate()
        .filter_map(|(i, job)| {
            let value = objective.value(job);
            (value > 0.0 && job.size_bytes > 0)
                .then(|| (i, value, value / job.ssd_byte_seconds().max(1e-9)))
        })
        .collect();
    candidates.sort_by(|a, b| b.2.total_cmp(&a.2));
    let order: Vec<usize> = candidates.iter().map(|&(i, _, _)| i).collect();
    let values: Vec<f64> = candidates.iter().map(|&(_, value, _)| value).collect();
    // Suffix sums of values for the upper bound.
    let mut suffix: Vec<f64> = Vec::with_capacity(values.len() + 1);
    suffix.push(0.0);
    for &value in values.iter().rev() {
        let total = suffix.last().copied().unwrap_or(0.0);
        suffix.push(total + value);
    }
    suffix.reverse();

    struct Search<'a> {
        jobs: &'a [JobCost],
        order: &'a [usize],
        values: &'a [f64],
        suffix: &'a [f64],
        timeline: &'a Timeline,
        capacity: f64,
        best_value: f64,
        best_set: Vec<bool>,
        current_set: Vec<bool>,
    }

    impl Search<'_> {
        fn recurse(&mut self, depth: usize, occupancy: &mut SegmentTree, value: f64) {
            if value > self.best_value {
                self.best_value = value;
                self.best_set = self.current_set.clone();
            }
            let Some(((&job_idx, &gain), &remaining)) = self
                .order
                .get(depth)
                .zip(self.values.get(depth))
                .zip(self.suffix.get(depth))
            else {
                return; // past the last candidate
            };
            if value + remaining <= self.best_value {
                return;
            }
            let Some(job) = self.jobs.get(job_idx) else {
                return; // unreachable: order only holds indices into jobs
            };
            let (lo, hi) = self.timeline.segment_range(job);

            // Branch 1: take the job if it fits.
            if lo < hi {
                let current = occupancy.range_max(lo, hi).max(0.0);
                if current + job.size_bytes as f64 <= self.capacity {
                    occupancy.range_add(lo, hi, job.size_bytes as f64);
                    if let Some(slot) = self.current_set.get_mut(job_idx) {
                        *slot = true;
                    }
                    self.recurse(depth + 1, occupancy, value + gain);
                    if let Some(slot) = self.current_set.get_mut(job_idx) {
                        *slot = false;
                    }
                    occupancy.range_add(lo, hi, -(job.size_bytes as f64));
                }
            }
            // Branch 2: skip the job.
            self.recurse(depth + 1, occupancy, value);
        }
    }

    let mut search = Search {
        jobs,
        order: &order,
        values: &values,
        suffix: &suffix,
        timeline: &timeline,
        capacity: capacity_bytes as f64,
        best_value: 0.0,
        best_set: vec![false; jobs.len()],
        current_set: vec![false; jobs.len()],
    };
    let mut occupancy = SegmentTree::new(timeline.num_segments());
    search.recurse(0, &mut occupancy, 0.0);

    // Recompute peak occupancy of the chosen set.
    let mut occ = SegmentTree::new(timeline.num_segments());
    for (&take, job) in search.best_set.iter().zip(jobs) {
        if take {
            let (lo, hi) = timeline.segment_range(job);
            occ.range_add(lo, hi, job.size_bytes as f64);
        }
    }
    OracleSolution {
        on_ssd: search.best_set,
        total_value: search.best_value,
        peak_occupancy: occ.global_max().max(0.0) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;
    use byom_trace::JobId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn job(id: u64, arrival: f64, lifetime: f64, size: u64, savings: f64) -> JobCost {
        JobCost {
            id: JobId(id),
            arrival,
            lifetime,
            size_bytes: size,
            tcio_hdd: 1.0,
            tco_hdd: savings.max(0.0) + 1.0,
            tco_ssd: 1.0 - savings.min(0.0),
            io_density: 1.0,
        }
    }

    #[test]
    fn exact_beats_naive_greedy_counterexample() {
        // Density-greedy takes the single densest job (value 11, size 70),
        // which blocks the two jobs whose combined value (18) is higher.
        let jobs = vec![
            job(0, 0.0, 10.0, 60, 9.0),  // density 0.0150
            job(1, 0.0, 10.0, 60, 9.0),  // density 0.0150
            job(2, 0.0, 10.0, 70, 11.0), // density 0.0157 (density-greedy picks this first)
        ];
        let exact = solve_exact(OracleObjective::Tco, 120, &jobs);
        assert!((exact.total_value - 18.0).abs() < 1e-9);
        assert!(exact.on_ssd[0] && exact.on_ssd[1] && !exact.on_ssd[2]);
    }

    #[test]
    fn exact_and_greedy_agree_on_simple_instances() {
        let jobs = vec![
            job(0, 0.0, 10.0, 30, 5.0),
            job(1, 0.0, 10.0, 30, 4.0),
            job(2, 20.0, 10.0, 30, 3.0),
        ];
        let exact = solve_exact(OracleObjective::Tco, 60, &jobs);
        let greedy = Oracle::new(OracleObjective::Tco, 60).solve(&jobs);
        assert!((exact.total_value - greedy.total_value).abs() < 1e-9);
    }

    #[test]
    fn greedy_is_within_a_small_gap_of_exact_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut worst_ratio: f64 = 1.0;
        for trial in 0..30 {
            let n = rng.gen_range(5..15);
            let jobs: Vec<JobCost> = (0..n)
                .map(|i| {
                    job(
                        i as u64,
                        rng.gen_range(0.0..50.0),
                        rng.gen_range(5.0..40.0),
                        rng.gen_range(5..60),
                        rng.gen_range(-2.0..10.0),
                    )
                })
                .collect();
            let capacity = rng.gen_range(30..120);
            let exact = solve_exact(OracleObjective::Tco, capacity, &jobs);
            let greedy = Oracle::new(OracleObjective::Tco, capacity).solve(&jobs);
            assert!(
                greedy.total_value <= exact.total_value + 1e-9,
                "greedy exceeded exact on trial {trial}"
            );
            if exact.total_value > 0.0 {
                worst_ratio = worst_ratio.min(greedy.total_value / exact.total_value);
            }
        }
        // Small adversarial instances can defeat any greedy; what matters is
        // that the multi-ordering greedy stays close to optimal on average
        // and never exceeds it (checked above).
        assert!(
            worst_ratio > 0.7,
            "greedy fell to {worst_ratio} of optimal on random instances"
        );
    }

    #[test]
    fn exact_respects_capacity() {
        let mut rng = StdRng::seed_from_u64(3);
        let jobs: Vec<JobCost> = (0..12)
            .map(|i| {
                job(
                    i as u64,
                    rng.gen_range(0.0..20.0),
                    rng.gen_range(5.0..30.0),
                    rng.gen_range(10..40),
                    rng.gen_range(0.5..5.0),
                )
            })
            .collect();
        let capacity = 50;
        let s = solve_exact(OracleObjective::Tco, capacity, &jobs);
        assert!(s.peak_occupancy <= capacity);
    }

    #[test]
    fn empty_input() {
        let s = solve_exact(OracleObjective::Tco, 10, &[]);
        assert_eq!(s.total_value, 0.0);
    }

    #[test]
    #[should_panic(expected = "exact solver limited")]
    fn too_many_jobs_rejected() {
        let jobs: Vec<JobCost> = (0..40).map(|i| job(i, 0.0, 1.0, 1, 1.0)).collect();
        let _ = solve_exact(OracleObjective::Tco, 10, &jobs);
    }
}
