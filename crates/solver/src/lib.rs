//! Clairvoyant oracle placement: the paper's ILP upper bound.
//!
//! Section 3.1 of the BYOM paper formulates optimal placement as an Integer
//! Linear Program: choose, for each job, whether to place it on SSD so as to
//! maximize total savings subject to the SSD capacity limit holding at every
//! instant of time. This is a *temporal knapsack* problem. The oracle is not
//! implementable online (it requires clairvoyant knowledge of every job's
//! future), but it provides the headroom bound the paper reports (≈5× the
//! savings of the production heuristic) and the "Oracle TCO"/"Oracle TCIO"
//! curves of Figure 7.
//!
//! This crate provides:
//!
//! * [`SegmentTree`]: a lazy range-add / range-max segment tree used to check
//!   and update SSD occupancy over time efficiently;
//! * [`Oracle`]: a density-greedy solver with an optional local-improvement
//!   pass, suitable for traces with tens of thousands of jobs;
//! * [`exact::solve_exact`]: an exact branch-and-bound solver for small
//!   instances, used in tests to bound the greedy solver's optimality gap.
//!
//! ```
//! use byom_cost::{CostModel, CostRates};
//! use byom_solver::{Oracle, OracleObjective};
//! use byom_trace::{ClusterSpec, TraceGenerator};
//!
//! let trace = TraceGenerator::new(3).generate(&ClusterSpec::balanced(0), 3_600.0);
//! let costs = CostModel::new(CostRates::default()).cost_trace(&trace);
//! let capacity = trace.peak_space_usage() / 100; // a 1% SSD quota
//! let solution = Oracle::new(OracleObjective::Tco, capacity).solve(&costs);
//! assert_eq!(solution.on_ssd.len(), costs.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod exact;
pub mod oracle;
pub mod segment_tree;
pub mod timeline;

pub use oracle::{Oracle, OracleObjective, OracleSolution};
pub use segment_tree::SegmentTree;
pub use timeline::Timeline;
