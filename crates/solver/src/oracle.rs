//! The clairvoyant oracle solver.
//!
//! The oracle solves the temporal-knapsack ILP of Section 3.1: maximize the
//! summed per-job value of SSD placement subject to the SSD occupancy never
//! exceeding the capacity. Values are either TCO savings (`Oracle TCO`) or
//! TCIO-seconds removed from HDDs (`Oracle TCIO`).
//!
//! The solver is a high-quality heuristic for the NP-hard problem:
//!
//! 1. **Density greedy**: jobs are considered in decreasing order of
//!    value per SSD byte-second (the LP-relaxation dual-price ordering) and
//!    admitted if they fit under the capacity across their whole lifetime.
//! 2. **Local improvement**: a second pass retries skipped jobs after all
//!    admissions, catching cases where capacity freed up (this is cheap and
//!    closes most of the residual gap on small instances; tests compare
//!    against the exact branch-and-bound solver).

use crate::segment_tree::SegmentTree;
use crate::timeline::Timeline;
use byom_cost::JobCost;
use serde::{Deserialize, Serialize};

/// What the oracle optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OracleObjective {
    /// Maximize total TCO savings (jobs with negative savings are never
    /// placed on SSD).
    Tco,
    /// Maximize TCIO-seconds removed from HDDs (ignores SSD cost).
    Tcio,
}

impl OracleObjective {
    /// The value the objective assigns to placing `job` on SSD.
    pub fn value(&self, job: &JobCost) -> f64 {
        match self {
            OracleObjective::Tco => job.tco_savings(),
            OracleObjective::Tcio => job.tcio_seconds(),
        }
    }
}

/// The oracle's placement decision for a set of jobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OracleSolution {
    /// `on_ssd[i]` is true if job `i` (in input order) is placed on SSD.
    pub on_ssd: Vec<bool>,
    /// Total objective value achieved.
    pub total_value: f64,
    /// Peak SSD occupancy (bytes) of the chosen placement.
    pub peak_occupancy: u64,
}

impl OracleSolution {
    /// Number of jobs placed on SSD.
    pub fn num_on_ssd(&self) -> usize {
        self.on_ssd.iter().filter(|&&b| b).count()
    }
}

/// The clairvoyant oracle solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Oracle {
    objective: OracleObjective,
    capacity_bytes: u64,
}

impl Oracle {
    /// Create an oracle optimizing `objective` under an SSD capacity of
    /// `capacity_bytes`.
    pub fn new(objective: OracleObjective, capacity_bytes: u64) -> Self {
        Oracle {
            objective,
            capacity_bytes,
        }
    }

    /// The configured objective.
    pub fn objective(&self) -> OracleObjective {
        self.objective
    }

    /// The configured capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Solve the placement problem for `jobs`. The result indexes jobs in
    /// their input order. Jobs with non-positive value are never selected.
    ///
    /// The solver runs the greedy admission under three candidate orderings
    /// (value density, absolute value, smallest footprint first) and keeps
    /// the best result; tests compare against the exact solver to bound the
    /// remaining optimality gap.
    pub fn solve(&self, jobs: &[JobCost]) -> OracleSolution {
        if jobs.is_empty() {
            return OracleSolution {
                on_ssd: Vec::new(),
                total_value: 0.0,
                peak_occupancy: 0,
            };
        }
        let timeline = Timeline::new(jobs);
        let capacity = self.capacity_bytes as f64;

        // Candidate jobs with positive value.
        let candidates: Vec<usize> = (0..jobs.len())
            .filter(|&i| self.objective.value(&jobs[i]) > 0.0 && jobs[i].size_bytes > 0)
            .collect();

        let density =
            |i: usize| self.objective.value(&jobs[i]) / jobs[i].ssd_byte_seconds().max(1e-9);
        #[allow(clippy::type_complexity)]
        let orderings: [Box<dyn Fn(&usize, &usize) -> std::cmp::Ordering>; 3] = [
            Box::new(|&a: &usize, &b: &usize| density(b).total_cmp(&density(a))),
            Box::new(|&a: &usize, &b: &usize| {
                self.objective
                    .value(&jobs[b])
                    .total_cmp(&self.objective.value(&jobs[a]))
            }),
            Box::new(|&a: &usize, &b: &usize| {
                jobs[a]
                    .ssd_byte_seconds()
                    .total_cmp(&jobs[b].ssd_byte_seconds())
            }),
        ];

        let mut best: Option<OracleSolution> = None;
        for ordering in &orderings {
            let mut order = candidates.clone();
            order.sort_by(|a, b| ordering(a, b));

            let mut occupancy = SegmentTree::new(timeline.num_segments());
            let mut on_ssd = vec![false; jobs.len()];
            let mut total_value = 0.0;
            let mut skipped: Vec<usize> = Vec::new();

            let try_admit = |i: usize,
                             occupancy: &mut SegmentTree,
                             on_ssd: &mut Vec<bool>,
                             total_value: &mut f64|
             -> bool {
                let job = &jobs[i];
                let (lo, hi) = timeline.segment_range(job);
                if lo >= hi {
                    return false;
                }
                let current = occupancy.range_max(lo, hi).max(0.0);
                if current + job.size_bytes as f64 <= capacity {
                    occupancy.range_add(lo, hi, job.size_bytes as f64);
                    on_ssd[i] = true;
                    *total_value += self.objective.value(job);
                    true
                } else {
                    false
                }
            };

            for &i in &order {
                if !try_admit(i, &mut occupancy, &mut on_ssd, &mut total_value) {
                    skipped.push(i);
                }
            }
            // Local improvement: retry skipped jobs once more in the same order.
            for &i in &skipped {
                let _ = try_admit(i, &mut occupancy, &mut on_ssd, &mut total_value);
            }

            let solution = OracleSolution {
                on_ssd,
                total_value,
                peak_occupancy: occupancy.global_max().max(0.0) as u64,
            };
            if best
                .as_ref()
                .is_none_or(|b| solution.total_value > b.total_value)
            {
                best = Some(solution);
            }
        }
        // Every ordering pass sets `best`; the empty fallback is unreachable
        // but keeps the solver panic-free.
        best.unwrap_or_else(|| OracleSolution {
            on_ssd: vec![false; jobs.len()],
            total_value: 0.0,
            peak_occupancy: 0,
        })
    }

    /// Sweep the oracle across several capacities (expressed in bytes),
    /// returning one solution per capacity. Used for Figure 4 and for the
    /// oracle curves of Figure 7.
    pub fn sweep(
        objective: OracleObjective,
        capacities: &[u64],
        jobs: &[JobCost],
    ) -> Vec<OracleSolution> {
        capacities
            .iter()
            .map(|&c| Oracle::new(objective, c).solve(jobs))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byom_trace::JobId;

    fn job(id: u64, arrival: f64, lifetime: f64, size: u64, savings: f64, tcio: f64) -> JobCost {
        JobCost {
            id: JobId(id),
            arrival,
            lifetime,
            size_bytes: size,
            tcio_hdd: tcio,
            tco_hdd: savings.max(0.0) + 1.0,
            tco_ssd: 1.0 - savings.min(0.0),
            io_density: 1.0,
        }
    }

    #[test]
    fn empty_input_gives_empty_solution() {
        let s = Oracle::new(OracleObjective::Tco, 100).solve(&[]);
        assert!(s.on_ssd.is_empty());
        assert_eq!(s.total_value, 0.0);
        assert_eq!(s.num_on_ssd(), 0);
    }

    #[test]
    fn never_selects_negative_savings_jobs() {
        let jobs = vec![
            job(0, 0.0, 10.0, 10, 5.0, 1.0),
            job(1, 0.0, 10.0, 10, -5.0, 1.0),
        ];
        let s = Oracle::new(OracleObjective::Tco, 1000).solve(&jobs);
        assert!(s.on_ssd[0]);
        assert!(!s.on_ssd[1]);
    }

    #[test]
    fn respects_capacity_for_overlapping_jobs() {
        // Two overlapping jobs of size 60 with capacity 100: only one fits.
        let jobs = vec![
            job(0, 0.0, 10.0, 60, 10.0, 1.0),
            job(1, 5.0, 10.0, 60, 8.0, 1.0),
        ];
        let s = Oracle::new(OracleObjective::Tco, 100).solve(&jobs);
        assert_eq!(s.num_on_ssd(), 1);
        assert!(s.on_ssd[0], "higher-value job should win");
        assert!(s.peak_occupancy <= 100);
    }

    #[test]
    fn admits_both_when_not_overlapping() {
        let jobs = vec![
            job(0, 0.0, 10.0, 60, 10.0, 1.0),
            job(1, 20.0, 10.0, 60, 8.0, 1.0),
        ];
        let s = Oracle::new(OracleObjective::Tco, 100).solve(&jobs);
        assert_eq!(s.num_on_ssd(), 2);
        assert!((s.total_value - 18.0).abs() < 1e-9);
    }

    #[test]
    fn prefers_dense_small_jobs_under_tight_capacity() {
        // One big job with value 10 vs. many small jobs with total value 20.
        let mut jobs = vec![job(0, 0.0, 10.0, 100, 10.0, 1.0)];
        for i in 1..=10 {
            jobs.push(job(i, 0.0, 10.0, 10, 2.0, 0.5));
        }
        let s = Oracle::new(OracleObjective::Tco, 100).solve(&jobs);
        assert!(!s.on_ssd[0], "small dense jobs should displace the big one");
        assert_eq!(s.num_on_ssd(), 10);
        assert!((s.total_value - 20.0).abs() < 1e-9);
    }

    #[test]
    fn tcio_objective_ignores_negative_tco() {
        // Job with negative TCO savings but high TCIO is selected by the TCIO
        // oracle and rejected by the TCO oracle.
        let jobs = vec![job(0, 0.0, 10.0, 10, -1.0, 5.0)];
        let tco = Oracle::new(OracleObjective::Tco, 100).solve(&jobs);
        let tcio = Oracle::new(OracleObjective::Tcio, 100).solve(&jobs);
        assert!(!tco.on_ssd[0]);
        assert!(tcio.on_ssd[0]);
        assert!((tcio.total_value - 50.0).abs() < 1e-9);
    }

    #[test]
    fn zero_capacity_selects_nothing() {
        let jobs = vec![job(0, 0.0, 10.0, 10, 5.0, 1.0)];
        let s = Oracle::new(OracleObjective::Tco, 0).solve(&jobs);
        assert_eq!(s.num_on_ssd(), 0);
    }

    #[test]
    fn larger_capacity_never_reduces_value() {
        let jobs: Vec<JobCost> = (0..50)
            .map(|i| {
                job(
                    i,
                    (i % 7) as f64 * 10.0,
                    30.0 + (i % 5) as f64 * 10.0,
                    10 + (i % 13) * 5,
                    (i % 11) as f64 - 2.0,
                    0.1 * (i % 4) as f64,
                )
            })
            .collect();
        let mut last = 0.0;
        for cap in [0u64, 50, 100, 200, 400, 1000, 10_000] {
            let s = Oracle::new(OracleObjective::Tco, cap).solve(&jobs);
            assert!(
                s.total_value >= last - 1e-9,
                "value decreased from {last} to {} at capacity {cap}",
                s.total_value
            );
            last = s.total_value;
        }
    }

    #[test]
    fn sweep_returns_one_solution_per_capacity() {
        let jobs = vec![job(0, 0.0, 10.0, 10, 5.0, 1.0)];
        let sols = Oracle::sweep(OracleObjective::Tco, &[0, 5, 20], &jobs);
        assert_eq!(sols.len(), 3);
        assert_eq!(sols[0].num_on_ssd(), 0);
        assert_eq!(sols[2].num_on_ssd(), 1);
    }
}
