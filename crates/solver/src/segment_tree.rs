//! A lazy-propagation segment tree supporting range add and range max.
//!
//! Used by the oracle to maintain SSD occupancy over discretized time
//! segments: admitting a job adds its size over the segments its lifetime
//! spans, and feasibility checks ask for the maximum occupancy over that
//! range.

/// Range-add / range-max segment tree over `f64` values, initialized to zero.
#[derive(Debug, Clone)]
pub struct SegmentTree {
    len: usize,
    max: Vec<f64>,
    lazy: Vec<f64>,
}

impl SegmentTree {
    /// Create a tree over `len` leaves, all initialized to 0.0.
    ///
    /// # Panics
    /// Panics if `len` is zero.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "segment tree needs at least one leaf");
        let size = len.next_power_of_two() * 2;
        SegmentTree {
            len,
            max: vec![0.0; size],
            lazy: vec![0.0; size],
        }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty (never true; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Add `value` to every leaf in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or `hi > len`.
    pub fn range_add(&mut self, lo: usize, hi: usize, value: f64) {
        assert!(lo <= hi && hi <= self.len, "invalid range {lo}..{hi}");
        if lo == hi {
            return;
        }
        self.add_rec(1, 0, self.len.next_power_of_two(), lo, hi, value);
    }

    /// Maximum leaf value in `[lo, hi)`. Returns `f64::NEG_INFINITY` for an
    /// empty range.
    ///
    /// # Panics
    /// Panics if `lo > hi` or `hi > len`.
    pub fn range_max(&self, lo: usize, hi: usize) -> f64 {
        assert!(lo <= hi && hi <= self.len, "invalid range {lo}..{hi}");
        if lo == hi {
            return f64::NEG_INFINITY;
        }
        self.max_rec(1, 0, self.len.next_power_of_two(), lo, hi)
    }

    /// Maximum over the whole tree.
    pub fn global_max(&self) -> f64 {
        self.range_max(0, self.len)
    }

    fn add_rec(&mut self, node: usize, nlo: usize, nhi: usize, lo: usize, hi: usize, value: f64) {
        if hi <= nlo || nhi <= lo {
            return;
        }
        if lo <= nlo && nhi <= hi {
            self.lazy[node] += value;
            self.max[node] += value;
            return;
        }
        let mid = (nlo + nhi) / 2;
        self.add_rec(node * 2, nlo, mid, lo, hi, value);
        self.add_rec(node * 2 + 1, mid, nhi, lo, hi, value);
        self.max[node] = self.max[node * 2].max(self.max[node * 2 + 1]) + self.lazy[node];
    }

    fn max_rec(&self, node: usize, nlo: usize, nhi: usize, lo: usize, hi: usize) -> f64 {
        if hi <= nlo || nhi <= lo {
            return f64::NEG_INFINITY;
        }
        if lo <= nlo && nhi <= hi {
            return self.max[node];
        }
        let mid = (nlo + nhi) / 2;
        let child = self.max_rec(node * 2, nlo, mid, lo, hi).max(self.max_rec(
            node * 2 + 1,
            mid,
            nhi,
            lo,
            hi,
        ));
        child + self.lazy[node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force reference implementation.
    struct Naive {
        values: Vec<f64>,
    }

    impl Naive {
        fn new(len: usize) -> Self {
            Naive {
                values: vec![0.0; len],
            }
        }
        fn range_add(&mut self, lo: usize, hi: usize, v: f64) {
            for x in &mut self.values[lo..hi] {
                *x += v;
            }
        }
        fn range_max(&self, lo: usize, hi: usize) -> f64 {
            self.values[lo..hi]
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }

    #[test]
    fn basic_add_and_query() {
        let mut t = SegmentTree::new(10);
        assert_eq!(t.len(), 10);
        assert!(!t.is_empty());
        assert_eq!(t.global_max(), 0.0);
        t.range_add(2, 5, 3.0);
        t.range_add(4, 8, 2.0);
        assert_eq!(t.range_max(0, 2), 0.0);
        assert_eq!(t.range_max(2, 4), 3.0);
        assert_eq!(t.range_max(4, 5), 5.0);
        assert_eq!(t.range_max(5, 8), 2.0);
        assert_eq!(t.global_max(), 5.0);
    }

    #[test]
    fn empty_range_queries_and_adds() {
        let mut t = SegmentTree::new(4);
        t.range_add(2, 2, 100.0);
        assert_eq!(t.global_max(), 0.0);
        assert_eq!(t.range_max(1, 1), f64::NEG_INFINITY);
    }

    #[test]
    fn negative_adds_work() {
        let mut t = SegmentTree::new(6);
        t.range_add(0, 6, 5.0);
        t.range_add(1, 3, -2.0);
        assert_eq!(t.range_max(1, 3), 3.0);
        assert_eq!(t.global_max(), 5.0);
    }

    #[test]
    fn single_leaf_tree() {
        let mut t = SegmentTree::new(1);
        t.range_add(0, 1, 7.0);
        assert_eq!(t.global_max(), 7.0);
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn zero_leaves_rejected() {
        let _ = SegmentTree::new(0);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn out_of_range_rejected() {
        let t = SegmentTree::new(4);
        let _ = t.range_max(0, 5);
    }

    #[test]
    fn matches_naive_on_random_operations() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for len in [1usize, 2, 3, 7, 16, 33, 100] {
            let mut tree = SegmentTree::new(len);
            let mut naive = Naive::new(len);
            for _ in 0..200 {
                let a = rng.gen_range(0..=len);
                let b = rng.gen_range(0..=len);
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                if rng.gen_bool(0.5) {
                    let v = rng.gen_range(-10.0..10.0);
                    tree.range_add(lo, hi, v);
                    naive.range_add(lo, hi, v);
                } else if lo < hi {
                    let t = tree.range_max(lo, hi);
                    let n = naive.range_max(lo, hi);
                    assert!(
                        (t - n).abs() < 1e-9,
                        "len {len} range {lo}..{hi}: {t} vs {n}"
                    );
                }
            }
        }
    }
}
