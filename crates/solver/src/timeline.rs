//! Discretized time axis shared by a set of jobs.
//!
//! The oracle's capacity constraint must hold at every instant, but
//! occupancy only changes at job arrival and end times, so it suffices to
//! check the constraint on the segments between consecutive event times.
//! [`Timeline`] maps each job's `[arrival, end)` interval to a half-open
//! range of segment indices.

use byom_cost::JobCost;

/// A discretized time axis built from job arrival/end events.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// Sorted, deduplicated event times.
    events: Vec<f64>,
}

impl Timeline {
    /// Build a timeline from the given jobs' arrival and end times.
    ///
    /// # Panics
    /// Panics if `jobs` is empty or contains non-finite times.
    pub fn new(jobs: &[JobCost]) -> Self {
        assert!(!jobs.is_empty(), "timeline needs at least one job");
        let mut events = Vec::with_capacity(jobs.len() * 2);
        for j in jobs {
            assert!(
                j.arrival.is_finite() && j.end().is_finite(),
                "job times must be finite"
            );
            events.push(j.arrival);
            events.push(j.end());
        }
        events.sort_by(|a, b| a.total_cmp(b));
        events.dedup();
        Timeline { events }
    }

    /// Number of segments (gaps between consecutive event times).
    pub fn num_segments(&self) -> usize {
        self.events.len().saturating_sub(1).max(1)
    }

    /// Map a job's `[arrival, end)` interval to segment indices `[lo, hi)`.
    /// A zero-length job maps to an empty range.
    pub fn segment_range(&self, job: &JobCost) -> (usize, usize) {
        let lo = self.index_of(job.arrival);
        let hi = self.index_of(job.end());
        (lo, hi)
    }

    /// Index of the segment starting at time `t` (t must be an event time or
    /// between events; the segment containing `t` is returned).
    fn index_of(&self, t: f64) -> usize {
        match self.events.binary_search_by(|e| e.total_cmp(&t)) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        }
        .min(self.num_segments())
    }

    /// The event times defining the segments.
    pub fn events(&self) -> &[f64] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byom_trace::JobId;

    fn job(id: u64, arrival: f64, lifetime: f64) -> JobCost {
        JobCost {
            id: JobId(id),
            arrival,
            lifetime,
            size_bytes: 1,
            tcio_hdd: 0.0,
            tco_hdd: 0.0,
            tco_ssd: 0.0,
            io_density: 0.0,
        }
    }

    #[test]
    fn builds_sorted_unique_events() {
        let jobs = vec![job(0, 0.0, 10.0), job(1, 5.0, 5.0), job(2, 0.0, 10.0)];
        let t = Timeline::new(&jobs);
        assert_eq!(t.events(), &[0.0, 5.0, 10.0]);
        assert_eq!(t.num_segments(), 2);
    }

    #[test]
    fn segment_ranges_cover_job_lifetimes() {
        let jobs = vec![job(0, 0.0, 10.0), job(1, 5.0, 10.0), job(2, 20.0, 5.0)];
        let t = Timeline::new(&jobs);
        // Events: 0, 5, 10, 15, 20, 25 -> 5 segments.
        assert_eq!(t.num_segments(), 5);
        assert_eq!(t.segment_range(&jobs[0]), (0, 2));
        assert_eq!(t.segment_range(&jobs[1]), (1, 3));
        assert_eq!(t.segment_range(&jobs[2]), (4, 5));
    }

    #[test]
    fn non_overlapping_jobs_get_disjoint_ranges() {
        let jobs = vec![job(0, 0.0, 10.0), job(1, 10.0, 10.0)];
        let t = Timeline::new(&jobs);
        let (a_lo, a_hi) = t.segment_range(&jobs[0]);
        let (b_lo, b_hi) = t.segment_range(&jobs[1]);
        assert!(
            a_hi <= b_lo,
            "ranges {a_lo}..{a_hi} and {b_lo}..{b_hi} overlap"
        );
        assert!(a_lo < a_hi && b_lo < b_hi);
    }

    #[test]
    fn single_job_timeline() {
        let jobs = vec![job(0, 3.0, 7.0)];
        let t = Timeline::new(&jobs);
        assert_eq!(t.num_segments(), 1);
        assert_eq!(t.segment_range(&jobs[0]), (0, 1));
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn empty_jobs_rejected() {
        let _ = Timeline::new(&[]);
    }
}
