//! Workload archetypes.
//!
//! A cluster in the paper runs a broad mix of applications — log processing,
//! query/join pipelines, ML training, streaming, video processing — whose
//! shuffle jobs differ by orders of magnitude in size, lifetime, and I/O
//! density (Figure 1). Each [`Archetype`] captures one such application class
//! with its own parameter distributions. The generator composes clusters as
//! weighted mixtures of archetypes.

use crate::distributions::{BoundedPareto, LogNormal};
use serde::{Deserialize, Serialize};

/// The workload classes used to synthesize clusters.
///
/// The first six are "framework" workloads (written against the distributed
/// data-processing framework the paper targets); the last two model the
/// non-framework workloads of Appendix C.1 (ML checkpointing and a
/// compress-and-upload user workflow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Archetype {
    /// Batch log-processing pipelines: large, mostly-sequential intermediate
    /// files with modest re-read counts. HDD-leaning.
    LogProcessing,
    /// Query / table-join workloads: many shuffles, small random accesses,
    /// short-lived intermediate data. Strongly SSD-leaning.
    QueryJoin,
    /// Streaming pipelines: small, extremely short-lived, frequently
    /// re-read intermediate files.
    Streaming,
    /// ML data-preparation workloads (feature generation, shuffling training
    /// data): medium size, high read amplification.
    MlDataPrep,
    /// Video / media processing: very large intermediate files with long
    /// sequential reads and few operations per byte.
    VideoProcessing,
    /// Scientific / simulation workloads: long lifetimes, low I/O density.
    Simulation,
    /// Non-framework ML training checkpoints: large files kept for hours,
    /// written once and rarely read. HDD-suitable (Appendix C.1, class 3).
    MlCheckpoint,
    /// Non-framework compress-and-upload workflow: hot, short-lived temporary
    /// files. SSD-suitable (Appendix C.1, class 4).
    CompressUpload,
}

impl Archetype {
    /// All archetypes in a stable order.
    pub fn all() -> [Archetype; 8] {
        [
            Archetype::LogProcessing,
            Archetype::QueryJoin,
            Archetype::Streaming,
            Archetype::MlDataPrep,
            Archetype::VideoProcessing,
            Archetype::Simulation,
            Archetype::MlCheckpoint,
            Archetype::CompressUpload,
        ]
    }

    /// Stable small integer identifier (used in [`crate::ShuffleJob::archetype`]).
    /// Matches the position in [`Archetype::all`] (asserted by a test).
    pub fn index(&self) -> u8 {
        match self {
            Archetype::LogProcessing => 0,
            Archetype::QueryJoin => 1,
            Archetype::Streaming => 2,
            Archetype::MlDataPrep => 3,
            Archetype::VideoProcessing => 4,
            Archetype::Simulation => 5,
            Archetype::MlCheckpoint => 6,
            Archetype::CompressUpload => 7,
        }
    }

    /// Look up an archetype by its [`Archetype::index`].
    pub fn from_index(idx: u8) -> Option<Archetype> {
        Archetype::all().get(idx as usize).copied()
    }

    /// Whether the archetype is written against the data-processing framework
    /// (vs. a "non-framework" workload from Appendix C.1).
    pub fn is_framework(&self) -> bool {
        !matches!(self, Archetype::MlCheckpoint | Archetype::CompressUpload)
    }

    /// A short human-readable name used in metadata strings and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Archetype::LogProcessing => "logproc",
            Archetype::QueryJoin => "queryjoin",
            Archetype::Streaming => "streaming",
            Archetype::MlDataPrep => "mldataprep",
            Archetype::VideoProcessing => "videoproc",
            Archetype::Simulation => "simulation",
            Archetype::MlCheckpoint => "mlcheckpoint",
            Archetype::CompressUpload => "compressupload",
        }
    }

    /// Default generation parameters for this archetype.
    ///
    /// Parameter choices are synthetic but shaped to reproduce the qualitative
    /// spread in the paper's Figure 1: sizes spanning ~6 orders of magnitude,
    /// lifetimes from seconds to a day, and I/O densities from ≪1 to ≫10.
    pub fn params(&self) -> ArchetypeParams {
        match self {
            Archetype::LogProcessing => ArchetypeParams {
                archetype: *self,
                size_bytes: BoundedPareto::new(256.0 * MIB, 512.0 * GIB, 0.95),
                lifetime_secs: LogNormal::from_median_spread(2_400.0, 2.5),
                read_amplification: LogNormal::from_median_spread(1.2, 1.5),
                write_amplification: 2.0,
                mean_read_size: 1.0 * MIB,
                dram_hit_fraction: 0.25,
                relative_arrival_rate: 1.0,
                periodicity_secs: Some(3_600.0),
            },
            Archetype::QueryJoin => ArchetypeParams {
                archetype: *self,
                size_bytes: BoundedPareto::new(16.0 * MIB, 1.0 * TIB, 0.95),
                lifetime_secs: LogNormal::from_median_spread(1_800.0, 2.5),
                read_amplification: LogNormal::from_median_spread(6.0, 2.0),
                write_amplification: 2.2,
                mean_read_size: 64.0 * KIB,
                dram_hit_fraction: 0.15,
                relative_arrival_rate: 3.0,
                periodicity_secs: None,
            },
            Archetype::Streaming => ArchetypeParams {
                archetype: *self,
                size_bytes: BoundedPareto::new(256.0 * KIB, 32.0 * GIB, 1.15),
                lifetime_secs: LogNormal::from_median_spread(600.0, 2.0),
                read_amplification: LogNormal::from_median_spread(8.0, 2.0),
                write_amplification: 2.0,
                mean_read_size: 16.0 * KIB,
                dram_hit_fraction: 0.35,
                relative_arrival_rate: 4.0,
                periodicity_secs: None,
            },
            Archetype::MlDataPrep => ArchetypeParams {
                archetype: *self,
                size_bytes: BoundedPareto::new(128.0 * MIB, 2.0 * TIB, 0.95),
                lifetime_secs: LogNormal::from_median_spread(5_400.0, 2.0),
                read_amplification: LogNormal::from_median_spread(4.0, 2.0),
                write_amplification: 2.0,
                mean_read_size: 256.0 * KIB,
                dram_hit_fraction: 0.2,
                relative_arrival_rate: 1.5,
                periodicity_secs: Some(86_400.0),
            },
            Archetype::VideoProcessing => ArchetypeParams {
                archetype: *self,
                size_bytes: BoundedPareto::new(2.0 * GIB, 1.0 * TIB, 0.9),
                lifetime_secs: LogNormal::from_median_spread(3_600.0, 2.0),
                read_amplification: LogNormal::from_median_spread(1.05, 1.2),
                write_amplification: 1.5,
                mean_read_size: 4.0 * MIB,
                dram_hit_fraction: 0.05,
                relative_arrival_rate: 0.3,
                periodicity_secs: None,
            },
            Archetype::Simulation => ArchetypeParams {
                archetype: *self,
                size_bytes: BoundedPareto::new(16.0 * MIB, 128.0 * GIB, 1.0),
                lifetime_secs: LogNormal::from_median_spread(7_200.0, 2.0),
                read_amplification: LogNormal::from_median_spread(1.5, 1.5),
                write_amplification: 1.8,
                mean_read_size: 512.0 * KIB,
                dram_hit_fraction: 0.1,
                relative_arrival_rate: 0.4,
                periodicity_secs: Some(43_200.0),
            },
            Archetype::MlCheckpoint => ArchetypeParams {
                archetype: *self,
                size_bytes: BoundedPareto::new(1.0 * GIB, 1.0 * TIB, 0.9),
                lifetime_secs: LogNormal::from_median_spread(10_800.0, 1.8),
                read_amplification: LogNormal::from_median_spread(1.02, 1.1),
                write_amplification: 1.0,
                mean_read_size: 8.0 * MIB,
                dram_hit_fraction: 0.02,
                relative_arrival_rate: 0.25,
                periodicity_secs: Some(1_800.0),
            },
            Archetype::CompressUpload => ArchetypeParams {
                archetype: *self,
                size_bytes: BoundedPareto::new(1.0 * MIB, 32.0 * GIB, 1.2),
                lifetime_secs: LogNormal::from_median_spread(600.0, 2.0),
                read_amplification: LogNormal::from_median_spread(5.0, 1.8),
                write_amplification: 2.0,
                mean_read_size: 32.0 * KIB,
                dram_hit_fraction: 0.1,
                relative_arrival_rate: 2.0,
                periodicity_secs: None,
            },
        }
    }
}

const KIB: f64 = 1024.0;
const MIB: f64 = 1024.0 * KIB;
const GIB: f64 = 1024.0 * MIB;
const TIB: f64 = 1024.0 * GIB;

/// Generation parameters for one workload archetype.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchetypeParams {
    /// The archetype these parameters belong to.
    pub archetype: Archetype,
    /// Distribution of peak intermediate-file footprint in bytes.
    pub size_bytes: BoundedPareto,
    /// Distribution of job lifetime in seconds.
    pub lifetime_secs: LogNormal,
    /// Distribution of the read amplification factor: bytes read / footprint.
    pub read_amplification: LogNormal,
    /// Write amplification factor: bytes written / footprint (raw + sorted
    /// copies, so typically ≈ 2 for shuffle jobs).
    pub write_amplification: f64,
    /// Mean size of a read operation in bytes.
    pub mean_read_size: f64,
    /// Fraction of reads served by the server-side DRAM cache.
    pub dram_hit_fraction: f64,
    /// Arrival rate of this archetype relative to the cluster base rate.
    pub relative_arrival_rate: f64,
    /// If `Some(p)`, pipelines of this archetype re-run periodically every
    /// `p` seconds (with jitter), which makes historical features available.
    pub periodicity_secs: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for a in Archetype::all() {
            assert_eq!(Archetype::from_index(a.index()), Some(a));
        }
        assert_eq!(Archetype::from_index(200), None);
    }

    #[test]
    fn framework_split_matches_appendix() {
        let fw: Vec<_> = Archetype::all()
            .into_iter()
            .filter(|a| a.is_framework())
            .collect();
        assert_eq!(fw.len(), 6);
        assert!(!Archetype::MlCheckpoint.is_framework());
        assert!(!Archetype::CompressUpload.is_framework());
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> =
            Archetype::all().iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), Archetype::all().len());
    }

    #[test]
    fn params_are_self_consistent() {
        for a in Archetype::all() {
            let p = a.params();
            assert_eq!(p.archetype, a);
            assert!(p.write_amplification > 0.0);
            assert!(p.mean_read_size > 0.0);
            assert!((0.0..=1.0).contains(&p.dram_hit_fraction));
            assert!(p.relative_arrival_rate > 0.0);
        }
    }

    #[test]
    fn query_join_is_denser_than_video() {
        // Sanity-check the qualitative shape: query/join workloads should have a
        // higher median read amplification than video processing.
        let q = Archetype::QueryJoin.params();
        let v = Archetype::VideoProcessing.params();
        assert!(q.read_amplification.mu > v.read_amplification.mu);
        assert!(q.mean_read_size < v.mean_read_size);
    }
}
