//! A process-wide cache of generated traces.
//!
//! The experiment harness regenerates the same traces over and over: every
//! figure binary prepares contexts from the same `(seed, spec, duration)`
//! triples, and a parallel sweep would otherwise generate one copy per
//! worker. Generation is deterministic — the same triple always produces the
//! same trace — so a shared cache is safe and cuts repeated preparation down
//! to one generation plus cheap `Arc` clones.
//!
//! Entries are keyed by the generator seed, the duration's exact bit pattern,
//! and a structural fingerprint of the [`ClusterSpec`] (its JSON serialization,
//! so any change to any field produces a distinct key).

use crate::cluster::ClusterSpec;
use crate::generator::TraceGenerator;
use crate::trace::Trace;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct TraceKey {
    seed: u64,
    duration_bits: u64,
    spec_fingerprint: String,
}

fn cache() -> &'static Mutex<HashMap<TraceKey, Arc<Trace>>> {
    static CACHE: OnceLock<Mutex<HashMap<TraceKey, Arc<Trace>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

impl TraceGenerator {
    /// Like [`TraceGenerator::generate`], but memoized process-wide: repeated
    /// calls with the same seed, spec, and duration return a shared handle to
    /// one generated trace instead of regenerating it.
    ///
    /// Concurrent first calls with the same key may race to generate (the
    /// cache lock is not held during generation); all of them end up with
    /// equal traces and one copy is retained.
    ///
    /// # Panics
    /// Panics if `duration_secs` is not positive or the spec has no pipelines
    /// with positive weight.
    pub fn generate_cached(&self, spec: &ClusterSpec, duration_secs: f64) -> Arc<Trace> {
        let key = TraceKey {
            seed: self.seed(),
            duration_bits: duration_secs.to_bits(),
            spec_fingerprint: serde_json::to_string(spec).expect("cluster specs always serialize"),
        };
        if let Some(hit) = cache().lock().expect("trace cache lock").get(&key) {
            return Arc::clone(hit);
        }
        let generated = Arc::new(self.generate(spec, duration_secs));
        let mut guard = cache().lock().expect("trace cache lock");
        Arc::clone(guard.entry(key).or_insert(generated))
    }
}

/// Number of traces currently held by the process-wide cache.
pub fn cached_trace_count() -> usize {
    cache().lock().expect("trace cache lock").len()
}

/// Drop every cached trace (useful to bound memory in long-running sweeps).
pub fn clear_trace_cache() {
    cache().lock().expect("trace cache lock").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ClusterSpec {
        ClusterSpec::balanced(200)
    }

    #[test]
    fn identical_calls_share_one_generation() {
        clear_trace_cache();
        let generator = TraceGenerator::new(77);
        let a = generator.generate_cached(&tiny_spec(), 600.0);
        let b = generator.generate_cached(&tiny_spec(), 600.0);
        assert!(
            Arc::ptr_eq(&a, &b),
            "second call must reuse the first trace"
        );
        assert_eq!(cached_trace_count(), 1);
    }

    #[test]
    fn cached_trace_matches_uncached_generation() {
        let generator = TraceGenerator::new(78);
        let cached = generator.generate_cached(&tiny_spec(), 600.0);
        let fresh = generator.generate(&tiny_spec(), 600.0);
        assert_eq!(cached.jobs().len(), fresh.jobs().len());
        for (a, b) in cached.jobs().iter().zip(fresh.jobs()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        clear_trace_cache();
        let generator = TraceGenerator::new(79);
        let base = generator.generate_cached(&tiny_spec(), 600.0);
        let other_seed = TraceGenerator::new(80).generate_cached(&tiny_spec(), 600.0);
        let other_duration = generator.generate_cached(&tiny_spec(), 1200.0);
        let other_spec = generator.generate_cached(&ClusterSpec::balanced(201), 600.0);
        assert!(!Arc::ptr_eq(&base, &other_seed));
        assert!(!Arc::ptr_eq(&base, &other_duration));
        assert!(!Arc::ptr_eq(&base, &other_spec));
        assert_eq!(cached_trace_count(), 4);
        clear_trace_cache();
        assert_eq!(cached_trace_count(), 0);
    }
}
