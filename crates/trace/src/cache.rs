//! A process-wide, capacity-bounded (LRU) cache of generated traces.
//!
//! The experiment harness regenerates the same traces over and over: every
//! figure binary prepares contexts from the same `(seed, spec, duration)`
//! triples, and a parallel sweep would otherwise generate one copy per
//! worker. Generation is deterministic — the same triple always produces the
//! same trace — so a shared cache is safe and cuts repeated preparation down
//! to one generation plus cheap `Arc` clones.
//!
//! Entries are keyed by the generator seed, the duration's exact bit pattern,
//! and a structural fingerprint of the [`ClusterSpec`] (its JSON serialization,
//! so any change to any field produces a distinct key).
//!
//! The cache holds at most [`trace_cache_capacity`] traces (default
//! [`DEFAULT_TRACE_CACHE_CAPACITY`]); inserting beyond that evicts the
//! least-recently-used entry, so long-running sweeps over many specs stay
//! memory-bounded. Outstanding `Arc` handles keep evicted traces alive until
//! their holders drop them. The map is a `BTreeMap` and the LRU order is a
//! monotone use-counter, so eviction order is fully deterministic.

use crate::cluster::ClusterSpec;
use crate::generator::TraceGenerator;
use crate::trace::Trace;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Default maximum number of traces retained by the process-wide cache.
pub const DEFAULT_TRACE_CACHE_CAPACITY: usize = 64;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct TraceKey {
    seed: u64,
    duration_bits: u64,
    spec_fingerprint: String,
}

#[derive(Debug)]
struct Entry {
    trace: Arc<Trace>,
    /// Value of the use-counter at the last hit; smallest = evict first.
    last_used: u64,
}

#[derive(Debug)]
struct LruCache {
    entries: BTreeMap<TraceKey, Entry>,
    capacity: usize,
    /// Monotone counter; bumped on every hit or insert.
    tick: u64,
}

impl LruCache {
    fn touch(&mut self, key: &TraceKey) -> Option<Arc<Trace>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.trace)
        })
    }

    fn insert(&mut self, key: TraceKey, trace: Arc<Trace>) -> Arc<Trace> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.entry(key).or_insert(Entry {
            trace,
            last_used: tick,
        });
        entry.last_used = tick;
        let shared = Arc::clone(&entry.trace);
        // Evict least-recently-used entries down to capacity. `last_used`
        // values are unique (the counter is monotone), so the victim — and
        // therefore the cache's entire observable state — is deterministic.
        while self.entries.len() > self.capacity.max(1) {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
            }
        }
        shared
    }
}

fn cache() -> &'static Mutex<LruCache> {
    static CACHE: OnceLock<Mutex<LruCache>> = OnceLock::new();
    CACHE.get_or_init(|| {
        Mutex::new(LruCache {
            entries: BTreeMap::new(),
            capacity: DEFAULT_TRACE_CACHE_CAPACITY,
            tick: 0,
        })
    })
}

// lint note: the `.expect("trace cache lock")` calls below are the one
// accepted panic in this module — a poisoned mutex means another thread
// already panicked mid-generation and the process is going down anyway.

impl TraceGenerator {
    /// Like [`TraceGenerator::generate`], but memoized process-wide: repeated
    /// calls with the same seed, spec, and duration return a shared handle to
    /// one generated trace instead of regenerating it.
    ///
    /// Concurrent first calls with the same key may race to generate (the
    /// cache lock is not held during generation); all of them end up with
    /// equal traces and one copy is retained.
    ///
    /// # Panics
    /// Panics if `duration_secs` is not positive or the spec has no pipelines
    /// with positive weight.
    pub fn generate_cached(&self, spec: &ClusterSpec, duration_secs: f64) -> Arc<Trace> {
        let key = TraceKey {
            seed: self.seed(),
            duration_bits: duration_secs.to_bits(),
            spec_fingerprint: serde_json::to_string(spec).expect("cluster specs always serialize"),
        };
        if let Some(hit) = cache().lock().expect("trace cache lock").touch(&key) {
            return hit;
        }
        let generated = Arc::new(self.generate(spec, duration_secs));
        cache()
            .lock()
            .expect("trace cache lock")
            .insert(key, generated)
    }
}

/// Number of traces currently held by the process-wide cache.
pub fn cached_trace_count() -> usize {
    cache().lock().expect("trace cache lock").entries.len()
}

/// The cache's current capacity (maximum number of retained traces).
pub fn trace_cache_capacity() -> usize {
    cache().lock().expect("trace cache lock").capacity
}

/// Set the cache capacity. A capacity below the current size evicts
/// least-recently-used entries immediately; values are clamped to at least 1.
pub fn set_trace_cache_capacity(capacity: usize) {
    let mut guard = cache().lock().expect("trace cache lock");
    guard.capacity = capacity.max(1);
    while guard.entries.len() > guard.capacity {
        if let Some(victim) = guard
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone())
        {
            guard.entries.remove(&victim);
        }
    }
}

/// Drop every cached trace (useful to bound memory in long-running sweeps).
pub fn clear_trace_cache() {
    cache().lock().expect("trace cache lock").entries.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The cache is process-global; serialize the tests that assert on its
    /// exact contents so `cargo test`'s parallelism cannot interleave them.
    fn lock_for_test() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        match GUARD.get_or_init(|| Mutex::new(())).lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn tiny_spec() -> ClusterSpec {
        ClusterSpec::balanced(200)
    }

    #[test]
    fn identical_calls_share_one_generation() {
        let _serial = lock_for_test();
        clear_trace_cache();
        set_trace_cache_capacity(DEFAULT_TRACE_CACHE_CAPACITY);
        let generator = TraceGenerator::new(77);
        let a = generator.generate_cached(&tiny_spec(), 600.0);
        let b = generator.generate_cached(&tiny_spec(), 600.0);
        assert!(
            Arc::ptr_eq(&a, &b),
            "second call must reuse the first trace"
        );
        assert_eq!(cached_trace_count(), 1);
    }

    #[test]
    fn cached_trace_matches_uncached_generation() {
        let _serial = lock_for_test();
        set_trace_cache_capacity(DEFAULT_TRACE_CACHE_CAPACITY);
        let generator = TraceGenerator::new(78);
        let cached = generator.generate_cached(&tiny_spec(), 600.0);
        let fresh = generator.generate(&tiny_spec(), 600.0);
        assert_eq!(cached.jobs().len(), fresh.jobs().len());
        for (a, b) in cached.jobs().iter().zip(fresh.jobs()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let _serial = lock_for_test();
        clear_trace_cache();
        set_trace_cache_capacity(DEFAULT_TRACE_CACHE_CAPACITY);
        let generator = TraceGenerator::new(79);
        let base = generator.generate_cached(&tiny_spec(), 600.0);
        let other_seed = TraceGenerator::new(80).generate_cached(&tiny_spec(), 600.0);
        let other_duration = generator.generate_cached(&tiny_spec(), 1200.0);
        let other_spec = generator.generate_cached(&ClusterSpec::balanced(201), 600.0);
        assert!(!Arc::ptr_eq(&base, &other_seed));
        assert!(!Arc::ptr_eq(&base, &other_duration));
        assert!(!Arc::ptr_eq(&base, &other_spec));
        assert_eq!(cached_trace_count(), 4);
        clear_trace_cache();
        assert_eq!(cached_trace_count(), 0);
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let _serial = lock_for_test();
        clear_trace_cache();
        set_trace_cache_capacity(2);
        let generator = TraceGenerator::new(90);
        let a = generator.generate_cached(&ClusterSpec::balanced(210), 600.0);
        let _b = generator.generate_cached(&ClusterSpec::balanced(211), 600.0);
        // Touch `a` so `b` becomes the least recently used…
        let a_again = generator.generate_cached(&ClusterSpec::balanced(210), 600.0);
        assert!(Arc::ptr_eq(&a, &a_again));
        // …then a third insert evicts `b`, not `a`.
        let _c = generator.generate_cached(&ClusterSpec::balanced(212), 600.0);
        assert_eq!(cached_trace_count(), 2);
        let a_still = generator.generate_cached(&ClusterSpec::balanced(210), 600.0);
        assert!(Arc::ptr_eq(&a, &a_still), "recently used entry survives");
        // `b` was evicted: regenerating it yields a fresh allocation.
        let b_again = generator.generate_cached(&ClusterSpec::balanced(211), 600.0);
        assert!(!Arc::ptr_eq(&_b, &b_again), "LRU entry was evicted");
        // The regenerated trace is identical — eviction never changes results.
        assert_eq!(_b.jobs(), b_again.jobs());
        set_trace_cache_capacity(DEFAULT_TRACE_CACHE_CAPACITY);
        clear_trace_cache();
    }

    #[test]
    fn shrinking_capacity_evicts_immediately() {
        let _serial = lock_for_test();
        clear_trace_cache();
        set_trace_cache_capacity(DEFAULT_TRACE_CACHE_CAPACITY);
        let generator = TraceGenerator::new(91);
        for id in 220..224 {
            let _ = generator.generate_cached(&ClusterSpec::balanced(id), 600.0);
        }
        assert_eq!(cached_trace_count(), 4);
        set_trace_cache_capacity(1);
        assert_eq!(cached_trace_count(), 1);
        assert_eq!(trace_cache_capacity(), 1);
        set_trace_cache_capacity(DEFAULT_TRACE_CACHE_CAPACITY);
        clear_trace_cache();
    }
}
