//! Cluster specifications.
//!
//! The paper evaluates on 10 clusters with thousands of machines each, with
//! uneven application mixes across clusters and one "special" cluster (C3)
//! that runs workloads rare elsewhere. A [`ClusterSpec`] describes one such
//! cluster as a weighted mixture of workload [`Archetype`]s plus arrival-rate
//! and population parameters; the [`crate::TraceGenerator`] turns a spec into
//! a concrete job trace.

use crate::archetype::Archetype;
use crate::distributions::DiurnalPattern;
use serde::{Deserialize, Serialize};

/// Identifier of a cluster (C0, C1, ... in the paper's figures).
pub type ClusterId = u16;

/// Specification of one pipeline population within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineSpec {
    /// Workload archetype of the pipeline.
    pub archetype: Archetype,
    /// Mixture weight relative to other pipeline specs in the cluster.
    pub weight: f64,
    /// Number of distinct users running pipelines of this archetype.
    pub num_users: u32,
    /// Number of distinct pipelines per user.
    pub pipelines_per_user: u32,
    /// Mean number of shuffle jobs generated per pipeline run.
    pub shuffles_per_run: u32,
}

impl PipelineSpec {
    /// A pipeline spec with a given archetype and weight and default
    /// population sizes.
    pub fn new(archetype: Archetype, weight: f64) -> Self {
        PipelineSpec {
            archetype,
            weight,
            num_users: 8,
            pipelines_per_user: 4,
            shuffles_per_run: 6,
        }
    }
}

/// Specification of one cluster's workload mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Cluster identifier.
    pub id: ClusterId,
    /// Base arrival rate of shuffle jobs across the whole cluster, in jobs
    /// per second (before diurnal modulation and archetype weighting).
    pub base_arrival_rate: f64,
    /// Mixture of pipeline populations.
    pub pipelines: Vec<PipelineSpec>,
    /// Diurnal/weekly load modulation applied to arrivals.
    pub diurnal: DiurnalPattern,
}

impl ClusterSpec {
    /// A balanced cluster running all six framework archetypes with roughly
    /// even weights. Used as the default experimental cluster.
    pub fn balanced(id: ClusterId) -> Self {
        ClusterSpec {
            id,
            base_arrival_rate: 0.5,
            pipelines: vec![
                PipelineSpec::new(Archetype::LogProcessing, 1.0),
                PipelineSpec::new(Archetype::QueryJoin, 1.0),
                PipelineSpec::new(Archetype::Streaming, 1.0),
                PipelineSpec::new(Archetype::MlDataPrep, 1.0),
                PipelineSpec::new(Archetype::VideoProcessing, 0.6),
                PipelineSpec::new(Archetype::Simulation, 0.6),
            ],
            diurnal: DiurnalPattern::default(),
        }
    }

    /// A cluster skewed towards one dominant archetype (70% of load), with
    /// the remaining framework archetypes sharing the rest.
    pub fn skewed(id: ClusterId, dominant: Archetype) -> Self {
        let mut pipelines = vec![PipelineSpec::new(dominant, 7.0)];
        for a in Archetype::all() {
            if a != dominant && a.is_framework() {
                pipelines.push(PipelineSpec::new(a, 3.0 / 5.0));
            }
        }
        ClusterSpec {
            id,
            base_arrival_rate: 0.5,
            pipelines,
            diurnal: DiurnalPattern::default(),
        }
    }

    /// A specialized cluster (the paper's C3) that only runs workloads rare in
    /// other clusters: video processing, simulation, and ML checkpoints.
    pub fn specialized(id: ClusterId) -> Self {
        ClusterSpec {
            id,
            base_arrival_rate: 0.3,
            pipelines: vec![
                PipelineSpec::new(Archetype::VideoProcessing, 1.0),
                PipelineSpec::new(Archetype::Simulation, 1.0),
                PipelineSpec::new(Archetype::MlCheckpoint, 0.5),
            ],
            diurnal: DiurnalPattern {
                daily_amplitude: 0.15,
                weekend_factor: 0.95,
                peak_hour: 3.0,
            },
        }
    }

    /// A mixed framework / non-framework cluster following Appendix C.1: the
    /// framework and non-framework halves contribute roughly equal storage
    /// footprint.
    pub fn mixed_workloads(id: ClusterId) -> Self {
        ClusterSpec {
            id,
            base_arrival_rate: 0.4,
            pipelines: vec![
                // 4 HDD-suitable framework data processing workloads.
                PipelineSpec {
                    archetype: Archetype::LogProcessing,
                    weight: 1.0,
                    num_users: 4,
                    pipelines_per_user: 1,
                    shuffles_per_run: 4,
                },
                // 4 SSD-suitable framework query workloads.
                PipelineSpec {
                    archetype: Archetype::QueryJoin,
                    weight: 1.0,
                    num_users: 4,
                    pipelines_per_user: 1,
                    shuffles_per_run: 12,
                },
                // 10 HDD-suitable non-framework ML checkpointing workloads.
                PipelineSpec {
                    archetype: Archetype::MlCheckpoint,
                    weight: 1.0,
                    num_users: 10,
                    pipelines_per_user: 1,
                    shuffles_per_run: 2,
                },
                // 10 SSD-suitable non-framework compress-and-upload workloads.
                PipelineSpec {
                    archetype: Archetype::CompressUpload,
                    weight: 1.0,
                    num_users: 10,
                    pipelines_per_user: 1,
                    shuffles_per_run: 8,
                },
            ],
            diurnal: DiurnalPattern::default(),
        }
    }

    /// The 10-cluster evaluation fleet used for the paper's Figure 6/7
    /// experiments: uneven application distributions across clusters,
    /// including one specialized cluster.
    pub fn evaluation_fleet() -> Vec<ClusterSpec> {
        vec![
            ClusterSpec::balanced(0),
            ClusterSpec::skewed(1, Archetype::QueryJoin),
            ClusterSpec::skewed(2, Archetype::LogProcessing),
            ClusterSpec::specialized(3),
            ClusterSpec::skewed(4, Archetype::Streaming),
            ClusterSpec::skewed(5, Archetype::MlDataPrep),
            ClusterSpec::balanced(6),
            ClusterSpec::skewed(7, Archetype::VideoProcessing),
            ClusterSpec::skewed(8, Archetype::Simulation),
            ClusterSpec::mixed_workloads(9),
        ]
    }

    /// Total mixture weight across pipeline specs.
    ///
    /// # Panics
    /// Panics if the cluster has no pipelines or all weights are zero, which
    /// would make generation meaningless.
    pub fn total_weight(&self) -> f64 {
        let w: f64 = self.pipelines.iter().map(|p| p.weight).sum();
        assert!(
            w > 0.0,
            "cluster {} has no positive pipeline weights",
            self.id
        );
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_cluster_covers_framework_archetypes() {
        let c = ClusterSpec::balanced(0);
        assert_eq!(c.pipelines.len(), 6);
        assert!(c.pipelines.iter().all(|p| p.archetype.is_framework()));
        assert!(c.total_weight() > 0.0);
    }

    #[test]
    fn skewed_cluster_dominant_weight_is_largest() {
        let c = ClusterSpec::skewed(1, Archetype::Streaming);
        let dominant = c
            .pipelines
            .iter()
            .find(|p| p.archetype == Archetype::Streaming)
            .unwrap();
        assert!(c
            .pipelines
            .iter()
            .all(|p| p.archetype == Archetype::Streaming || p.weight < dominant.weight));
    }

    #[test]
    fn specialized_cluster_avoids_common_archetypes() {
        let c = ClusterSpec::specialized(3);
        assert!(c
            .pipelines
            .iter()
            .all(|p| !matches!(p.archetype, Archetype::QueryJoin | Archetype::Streaming)));
    }

    #[test]
    fn evaluation_fleet_has_ten_unique_clusters() {
        let fleet = ClusterSpec::evaluation_fleet();
        assert_eq!(fleet.len(), 10);
        let ids: std::collections::HashSet<_> = fleet.iter().map(|c| c.id).collect();
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn mixed_cluster_has_framework_and_non_framework() {
        let c = ClusterSpec::mixed_workloads(9);
        assert!(c.pipelines.iter().any(|p| p.archetype.is_framework()));
        assert!(c.pipelines.iter().any(|p| !p.archetype.is_framework()));
    }

    #[test]
    #[should_panic(expected = "no positive pipeline weights")]
    fn total_weight_rejects_empty_cluster() {
        let c = ClusterSpec {
            id: 0,
            base_arrival_rate: 1.0,
            pipelines: vec![],
            diurnal: DiurnalPattern::default(),
        };
        let _ = c.total_weight();
    }
}
