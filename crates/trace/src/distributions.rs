//! Small library of sampling helpers used by the trace generator.
//!
//! The generator needs heavy-tailed distributions (log-normal, bounded
//! Pareto), diurnal arrival modulation, and a few convenience samplers. We
//! implement them directly on top of `rand`'s uniform/normal primitives so we
//! do not pull in `rand_distr`; the formulas are standard inverse-CDF or
//! Box–Muller constructions.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Sample a standard normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid log(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A log-normal distribution parameterized by the underlying normal's
/// mean (`mu`) and standard deviation (`sigma`), i.e. `exp(mu + sigma*Z)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Mean of the underlying normal (log scale).
    pub mu: f64,
    /// Standard deviation of the underlying normal (log scale).
    pub sigma: f64,
}

impl LogNormal {
    /// Construct a log-normal from the *median* and a multiplicative spread
    /// factor: ~68% of samples fall within `[median/spread, median*spread]`.
    ///
    /// # Panics
    /// Panics if `median <= 0` or `spread < 1`.
    pub fn from_median_spread(median: f64, spread: f64) -> Self {
        assert!(median > 0.0, "median must be positive, got {median}");
        assert!(spread >= 1.0, "spread must be >= 1, got {spread}");
        LogNormal {
            mu: median.ln(),
            sigma: spread.ln(),
        }
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// A bounded Pareto distribution on `[min, max]` with shape `alpha`.
///
/// Used for job sizes, which in production span many orders of magnitude but
/// have physical upper bounds (cluster capacity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    /// Lower bound (inclusive).
    pub min: f64,
    /// Upper bound (inclusive).
    pub max: f64,
    /// Shape parameter; smaller values give heavier tails.
    pub alpha: f64,
}

impl BoundedPareto {
    /// Create a new bounded Pareto distribution.
    ///
    /// # Panics
    /// Panics if `min <= 0`, `max <= min`, or `alpha <= 0`.
    pub fn new(min: f64, max: f64, alpha: f64) -> Self {
        assert!(min > 0.0, "min must be positive");
        assert!(max > min, "max must exceed min");
        assert!(alpha > 0.0, "alpha must be positive");
        BoundedPareto { min, max, alpha }
    }

    /// Draw one sample via inverse-CDF.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let l = self.min.powf(self.alpha);
        let h = self.max.powf(self.alpha);
        // Inverse CDF of the bounded Pareto.
        let x = (-(u * h - u * l - h) / (h * l)).powf(-1.0 / self.alpha);
        x.clamp(self.min, self.max)
    }
}

/// Diurnal (and weekly) load modulation: a multiplicative factor applied to
/// arrival rates as a function of time-of-day and day-of-week.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalPattern {
    /// Amplitude of the daily sinusoid in `[0, 1)`; 0 disables modulation.
    pub daily_amplitude: f64,
    /// Relative load level on weekends (1.0 = same as weekdays).
    pub weekend_factor: f64,
    /// Hour of peak load (0-23).
    pub peak_hour: f64,
}

impl Default for DiurnalPattern {
    fn default() -> Self {
        DiurnalPattern {
            daily_amplitude: 0.4,
            weekend_factor: 0.7,
            peak_hour: 14.0,
        }
    }
}

impl DiurnalPattern {
    /// Load multiplier at time `t` seconds from the trace origin (assumed to
    /// start at midnight on a Monday). Always positive.
    pub fn load_factor(&self, t: f64) -> f64 {
        let hours = (t / 3600.0) % 24.0;
        let day = ((t / 86_400.0).floor() as i64).rem_euclid(7);
        let phase = (hours - self.peak_hour) / 24.0 * std::f64::consts::TAU;
        let daily = 1.0 + self.daily_amplitude * phase.cos();
        let weekly = if day >= 5 { self.weekend_factor } else { 1.0 };
        (daily * weekly).max(1e-3)
    }
}

/// Sample an exponential inter-arrival gap for a Poisson process with the
/// given rate (events per second).
///
/// # Panics
/// Panics if `rate_per_sec` is not positive.
pub fn exponential_gap<R: Rng + ?Sized>(rng: &mut R, rate_per_sec: f64) -> f64 {
    assert!(rate_per_sec > 0.0, "rate must be positive");
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() / rate_per_sec
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn standard_normal_has_reasonable_moments() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_median_is_close() {
        let mut r = rng();
        let d = LogNormal::from_median_spread(100.0, 3.0);
        let mut samples: Vec<f64> = (0..10_001).map(|_| d.sample(&mut r)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!(median > 80.0 && median < 125.0, "median {median}");
    }

    #[test]
    #[should_panic(expected = "median must be positive")]
    fn lognormal_rejects_nonpositive_median() {
        let _ = LogNormal::from_median_spread(0.0, 2.0);
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let mut r = rng();
        let d = BoundedPareto::new(1e3, 1e9, 0.8);
        for _ in 0..5000 {
            let x = d.sample(&mut r);
            assert!((1e3..=1e9).contains(&x), "out of bounds: {x}");
        }
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed() {
        let mut r = rng();
        let d = BoundedPareto::new(1.0, 1e6, 0.5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let max = samples.iter().cloned().fold(0.0, f64::max);
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[n / 2];
        // Heavy tail: max should be several orders of magnitude above the median.
        assert!(max / median > 100.0, "max {max} median {median}");
    }

    #[test]
    #[should_panic(expected = "max must exceed min")]
    fn bounded_pareto_rejects_bad_bounds() {
        let _ = BoundedPareto::new(10.0, 5.0, 1.0);
    }

    #[test]
    fn diurnal_factor_positive_and_peaks_at_peak_hour() {
        let p = DiurnalPattern::default();
        let peak = p.load_factor(p.peak_hour * 3600.0);
        let trough = p.load_factor((p.peak_hour + 12.0) * 3600.0);
        assert!(peak > trough);
        for h in 0..48 {
            assert!(p.load_factor(h as f64 * 3600.0) > 0.0);
        }
    }

    #[test]
    fn diurnal_weekend_reduces_load() {
        let p = DiurnalPattern::default();
        // Same hour on Monday (day 0) vs Saturday (day 5).
        let monday = p.load_factor(12.0 * 3600.0);
        let saturday = p.load_factor(5.0 * 86_400.0 + 12.0 * 3600.0);
        assert!(saturday < monday);
    }

    #[test]
    fn exponential_gap_mean_matches_rate() {
        let mut r = rng();
        let rate = 0.5; // mean gap 2s
        let n = 20_000;
        let mean = (0..n).map(|_| exponential_gap(&mut r, rate)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }
}
