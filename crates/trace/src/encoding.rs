//! Encoding of [`JobFeatures`](crate::features::JobFeatures) into dense
//! numeric vectors consumable by tree models.
//!
//! The numeric features (groups A, C, T of Table 2) are passed through with a
//! log transform applied to the wide-range size/count features. The
//! execution-metadata strings (group B) are tokenized into key elements and
//! hashed into a fixed number of buckets ("hashing trick"), which is how
//! string identifiers are typically fed to tree models without maintaining a
//! vocabulary.

use crate::features::{
    FeatureGroup, JobFeatures, FEATURE_GROUPS, FEATURE_NAMES, NUMERIC_FEATURE_COUNT,
};
use crate::metadata::tokenize;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Encodes [`JobFeatures`] into fixed-width numeric vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureEncoder {
    /// Number of hash buckets used for execution-metadata tokens.
    pub metadata_hash_buckets: usize,
}

impl Default for FeatureEncoder {
    fn default() -> Self {
        FeatureEncoder {
            metadata_hash_buckets: 24,
        }
    }
}

/// Indices of numeric features whose values span many orders of magnitude and
/// are therefore log-transformed (`ln(1 + x)`).
const LOG_TRANSFORMED: [&str; 6] = [
    "average_tcio",
    "average_size",
    "average_lifetime",
    "average_io_density",
    "records_written",
    "requested_num_shards",
];

impl FeatureEncoder {
    /// Create an encoder with a specific number of metadata hash buckets.
    ///
    /// # Panics
    /// Panics if `metadata_hash_buckets` is zero.
    pub fn new(metadata_hash_buckets: usize) -> Self {
        assert!(metadata_hash_buckets > 0, "need at least one hash bucket");
        FeatureEncoder {
            metadata_hash_buckets,
        }
    }

    /// Total number of output features.
    pub fn num_features(&self) -> usize {
        NUMERIC_FEATURE_COUNT + self.metadata_hash_buckets
    }

    /// Human-readable names of the output features, aligned with
    /// [`FeatureEncoder::encode`].
    pub fn feature_names(&self) -> Vec<String> {
        let mut names: Vec<String> = FEATURE_NAMES.iter().map(|s| s.to_string()).collect();
        for b in 0..self.metadata_hash_buckets {
            names.push(format!("metadata_hash_{b}"));
        }
        names
    }

    /// The feature group of each output feature (hash buckets belong to
    /// group B, execution metadata).
    pub fn feature_groups(&self) -> Vec<FeatureGroup> {
        let mut groups: Vec<FeatureGroup> = FEATURE_GROUPS.to_vec();
        groups.extend(std::iter::repeat_n(
            FeatureGroup::ExecutionMetadata,
            self.metadata_hash_buckets,
        ));
        groups
    }

    /// Encode one job's features into a dense numeric vector of length
    /// [`FeatureEncoder::num_features`].
    pub fn encode(&self, features: &JobFeatures) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_features());
        for (value, name) in features.to_numeric().iter().zip(FEATURE_NAMES.iter()) {
            if LOG_TRANSFORMED.contains(name) {
                out.push((1.0 + value.max(0.0)).ln());
            } else {
                out.push(*value);
            }
        }
        let mut buckets = vec![0.0f64; self.metadata_hash_buckets];
        for (field_idx, s) in features.metadata_strings().iter().enumerate() {
            for token in tokenize(s) {
                let mut hasher = DefaultHasher::new();
                // Include the field index so the same token in different
                // fields lands in (usually) different buckets.
                field_idx.hash(&mut hasher);
                token.hash(&mut hasher);
                let b = (hasher.finish() % self.metadata_hash_buckets as u64) as usize;
                buckets[b] += 1.0;
            }
        }
        out.extend(buckets);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features() -> JobFeatures {
        JobFeatures {
            average_tcio: 0.5,
            average_size: 1e9,
            average_lifetime: 3600.0,
            average_io_density: 4.0,
            bucket_sizing_num_workers: 32,
            records_written: 1_000_000,
            open_time_day_hour: 13,
            build_target_name: "//ads/logproc/buildmanager:pipeline1".into(),
            execution_name: "com.ads.logproc.launcher.Main1".into(),
            pipeline_name: "org.ads.logproc.pipeline1.prod".into(),
            step_name: "GroupByKey-open-shuffle3".into(),
            user_name: "ads-logproc-user0".into(),
            ..Default::default()
        }
    }

    #[test]
    fn encoded_length_matches_declared_width() {
        let enc = FeatureEncoder::default();
        let v = enc.encode(&features());
        assert_eq!(v.len(), enc.num_features());
        assert_eq!(enc.feature_names().len(), enc.num_features());
        assert_eq!(enc.feature_groups().len(), enc.num_features());
    }

    #[test]
    fn all_encoded_values_are_finite() {
        let enc = FeatureEncoder::default();
        assert!(enc.encode(&features()).iter().all(|v| v.is_finite()));
        assert!(enc
            .encode(&JobFeatures::default())
            .iter()
            .all(|v| v.is_finite()));
    }

    #[test]
    fn log_transform_compresses_large_values() {
        let enc = FeatureEncoder::default();
        let v = enc.encode(&features());
        // average_size = 1e9 should encode near ln(1e9) ≈ 20.7.
        assert!(v[1] > 20.0 && v[1] < 22.0, "got {}", v[1]);
        // Hour of day passes through untouched.
        assert_eq!(v[12], 13.0);
    }

    #[test]
    fn metadata_tokens_populate_hash_buckets() {
        let enc = FeatureEncoder::default();
        let v = enc.encode(&features());
        let bucket_sum: f64 = v[NUMERIC_FEATURE_COUNT..].iter().sum();
        assert!(
            bucket_sum > 5.0,
            "expected several tokens hashed, got {bucket_sum}"
        );
    }

    #[test]
    fn different_pipelines_encode_differently() {
        let enc = FeatureEncoder::default();
        let a = enc.encode(&features());
        let mut other = features();
        other.pipeline_name = "org.search.queryjoin.pipeline7.prod".into();
        other.user_name = "search-queryjoin-user3".into();
        let b = enc.encode(&other);
        assert_ne!(a, b);
    }

    #[test]
    fn encoding_is_deterministic() {
        let enc = FeatureEncoder::default();
        assert_eq!(enc.encode(&features()), enc.encode(&features()));
    }

    #[test]
    fn hash_group_assignment() {
        let enc = FeatureEncoder::new(4);
        let groups = enc.feature_groups();
        assert!(groups[NUMERIC_FEATURE_COUNT..]
            .iter()
            .all(|g| *g == FeatureGroup::ExecutionMetadata));
    }

    #[test]
    #[should_panic(expected = "at least one hash bucket")]
    fn zero_buckets_rejected() {
        let _ = FeatureEncoder::new(0);
    }
}
