//! Application-level job features (Table 2 of the paper).
//!
//! Features fall into four groups, mirroring Figure 9c of the paper:
//!
//! * **A — Historical system metrics**: averages over the job's (pipeline's)
//!   previous executions: TCIO, peak size, lifetime, I/O density.
//! * **B — Execution metadata**: string identifiers (build target, execution
//!   name, pipeline name, step name, user name) that are tokenized into key
//!   elements separated by non-alphanumeric characters.
//! * **C — Allocated resources**: bucket/shard/worker counts assigned by the
//!   cluster scheduler before execution.
//! * **T — Job timestamp**: hour of day, second of day, weekday.

use serde::{Deserialize, Serialize};

/// The feature groups used for importance analysis (Figure 9c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureGroup {
    /// Group A: historical system metrics from previous executions.
    HistoricalSystemMetrics,
    /// Group B: execution metadata strings.
    ExecutionMetadata,
    /// Group C: resources allocated by the scheduler before execution.
    AllocatedResources,
    /// Group T: job start timestamp features.
    JobTimestamp,
}

impl FeatureGroup {
    /// Short label used in figures ("A", "B", "C", "T").
    pub fn label(&self) -> &'static str {
        match self {
            FeatureGroup::HistoricalSystemMetrics => "A",
            FeatureGroup::ExecutionMetadata => "B",
            FeatureGroup::AllocatedResources => "C",
            FeatureGroup::JobTimestamp => "T",
        }
    }

    /// All groups, in the order used by the paper's Figure 9c.
    pub fn all() -> [FeatureGroup; 4] {
        [
            FeatureGroup::HistoricalSystemMetrics,
            FeatureGroup::ExecutionMetadata,
            FeatureGroup::AllocatedResources,
            FeatureGroup::JobTimestamp,
        ]
    }
}

/// Number of numeric features produced by [`JobFeatures::to_numeric`].
pub const NUMERIC_FEATURE_COUNT: usize = 15;

/// Names of the numeric features, aligned with [`JobFeatures::to_numeric`].
pub const FEATURE_NAMES: [&str; NUMERIC_FEATURE_COUNT] = [
    "average_tcio",
    "average_size",
    "average_lifetime",
    "average_io_density",
    "bucket_sizing_initial_num_stripes",
    "bucket_sizing_num_shards",
    "bucket_sizing_num_worker_threads",
    "bucket_sizing_num_workers",
    "initial_num_buckets",
    "num_buckets",
    "records_written",
    "requested_num_shards",
    "open_time_day_hour",
    "open_time_seconds",
    "open_time_weekday",
];

/// The feature group each entry of [`FEATURE_NAMES`] belongs to.
pub const FEATURE_GROUPS: [FeatureGroup; NUMERIC_FEATURE_COUNT] = [
    FeatureGroup::HistoricalSystemMetrics,
    FeatureGroup::HistoricalSystemMetrics,
    FeatureGroup::HistoricalSystemMetrics,
    FeatureGroup::HistoricalSystemMetrics,
    FeatureGroup::AllocatedResources,
    FeatureGroup::AllocatedResources,
    FeatureGroup::AllocatedResources,
    FeatureGroup::AllocatedResources,
    FeatureGroup::AllocatedResources,
    FeatureGroup::AllocatedResources,
    FeatureGroup::AllocatedResources,
    FeatureGroup::AllocatedResources,
    FeatureGroup::JobTimestamp,
    FeatureGroup::JobTimestamp,
    FeatureGroup::JobTimestamp,
];

/// Application-level features known *before* a job executes (Table 2).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct JobFeatures {
    // -- Group A: historical system metrics (from previous executions of the
    //    same pipeline step). Zero when no history exists.
    /// Average TCIO of the job's historical executions.
    pub average_tcio: f64,
    /// Average peak intermediate-file size (bytes) of historical executions.
    pub average_size: f64,
    /// Average historical lifetime in seconds.
    pub average_lifetime: f64,
    /// Average I/O density of historical executions.
    pub average_io_density: f64,

    // -- Group C: allocated resources.
    /// Initial number of stripes a shard is expected to be divided into.
    pub bucket_sizing_initial_num_stripes: u32,
    /// Number of shards the working set is expected to be sharded into.
    pub bucket_sizing_num_shards: u32,
    /// Number of worker threads.
    pub bucket_sizing_num_worker_threads: u32,
    /// Number of workers in this job.
    pub bucket_sizing_num_workers: u32,
    /// Initial number of buckets the job used when it started.
    pub initial_num_buckets: u32,
    /// Number of buckets the job actually uses.
    pub num_buckets: u32,
    /// Number of records to be shuffled.
    pub records_written: u64,
    /// Number of shards the working set is requested to be sharded into.
    pub requested_num_shards: u32,

    // -- Group T: job timestamp.
    /// Hour of the job start time (0-23).
    pub open_time_day_hour: u8,
    /// Second of the day of the job start time (0-86399).
    pub open_time_seconds: u32,
    /// Weekday of the job start date (0 = Monday .. 6 = Sunday).
    pub open_time_weekday: u8,

    // -- Group B: execution metadata strings.
    /// Build-file target used to build the executable binary.
    pub build_target_name: String,
    /// User-assigned identifier for the job (usually the binary file name).
    pub execution_name: String,
    /// Name of the pipeline the job belongs to.
    pub pipeline_name: String,
    /// Computer-generated step identifier from the execution graph.
    pub step_name: String,
    /// Name of the workflow step starting the shuffle job.
    pub user_name: String,
}

impl JobFeatures {
    /// Dense numeric view of the non-string features, in [`FEATURE_NAMES`]
    /// order. String (execution-metadata) features are encoded separately by
    /// the model layer via token hashing; see `byom_core::encode`.
    pub fn to_numeric(&self) -> [f64; NUMERIC_FEATURE_COUNT] {
        [
            self.average_tcio,
            self.average_size,
            self.average_lifetime,
            self.average_io_density,
            f64::from(self.bucket_sizing_initial_num_stripes),
            f64::from(self.bucket_sizing_num_shards),
            f64::from(self.bucket_sizing_num_worker_threads),
            f64::from(self.bucket_sizing_num_workers),
            f64::from(self.initial_num_buckets),
            f64::from(self.num_buckets),
            self.records_written as f64,
            f64::from(self.requested_num_shards),
            f64::from(self.open_time_day_hour),
            f64::from(self.open_time_seconds),
            f64::from(self.open_time_weekday),
        ]
    }

    /// Blank every feature column belonging to `group`, as when an upstream
    /// metadata pipeline fails to deliver that group: numeric columns go to
    /// zero and string columns to the empty string. Fault-injection layers
    /// use this to model missing feature columns.
    pub fn clear_group(&mut self, group: FeatureGroup) {
        match group {
            FeatureGroup::HistoricalSystemMetrics => {
                self.average_tcio = 0.0;
                self.average_size = 0.0;
                self.average_lifetime = 0.0;
                self.average_io_density = 0.0;
            }
            FeatureGroup::AllocatedResources => {
                self.bucket_sizing_initial_num_stripes = 0;
                self.bucket_sizing_num_shards = 0;
                self.bucket_sizing_num_worker_threads = 0;
                self.bucket_sizing_num_workers = 0;
                self.initial_num_buckets = 0;
                self.num_buckets = 0;
                self.records_written = 0;
                self.requested_num_shards = 0;
            }
            FeatureGroup::JobTimestamp => {
                self.open_time_day_hour = 0;
                self.open_time_seconds = 0;
                self.open_time_weekday = 0;
            }
            FeatureGroup::ExecutionMetadata => {
                self.build_target_name.clear();
                self.execution_name.clear();
                self.pipeline_name.clear();
                self.step_name.clear();
                self.user_name.clear();
            }
        }
    }

    /// The execution-metadata strings in a stable order:
    /// `[build_target_name, execution_name, pipeline_name, step_name, user_name]`.
    pub fn metadata_strings(&self) -> [&str; 5] {
        [
            &self.build_target_name,
            &self.execution_name,
            &self.pipeline_name,
            &self.step_name,
            &self.user_name,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_view_matches_names_length() {
        let f = JobFeatures::default();
        assert_eq!(f.to_numeric().len(), FEATURE_NAMES.len());
        assert_eq!(FEATURE_GROUPS.len(), FEATURE_NAMES.len());
    }

    #[test]
    fn numeric_view_roundtrips_values() {
        let f = JobFeatures {
            average_tcio: 1.5,
            num_buckets: 64,
            open_time_day_hour: 23,
            records_written: 1_000_000,
            ..Default::default()
        };
        let v = f.to_numeric();
        assert_eq!(v[0], 1.5);
        assert_eq!(v[9], 64.0);
        assert_eq!(v[10], 1_000_000.0);
        assert_eq!(v[12], 23.0);
    }

    #[test]
    fn metadata_strings_order_is_stable() {
        let f = JobFeatures {
            build_target_name: "//a:b".into(),
            execution_name: "exec".into(),
            pipeline_name: "pipe".into(),
            step_name: "step".into(),
            user_name: "user".into(),
            ..Default::default()
        };
        assert_eq!(
            f.metadata_strings(),
            ["//a:b", "exec", "pipe", "step", "user"]
        );
    }

    #[test]
    fn feature_group_labels() {
        assert_eq!(FeatureGroup::HistoricalSystemMetrics.label(), "A");
        assert_eq!(FeatureGroup::ExecutionMetadata.label(), "B");
        assert_eq!(FeatureGroup::AllocatedResources.label(), "C");
        assert_eq!(FeatureGroup::JobTimestamp.label(), "T");
        assert_eq!(FeatureGroup::all().len(), 4);
    }

    #[test]
    fn clear_group_blanks_exactly_that_group() {
        let full = JobFeatures {
            average_tcio: 1.0,
            average_size: 2.0,
            average_lifetime: 3.0,
            average_io_density: 4.0,
            bucket_sizing_num_workers: 5,
            num_buckets: 6,
            records_written: 7,
            open_time_day_hour: 8,
            open_time_weekday: 2,
            pipeline_name: "pipe".into(),
            user_name: "user".into(),
            ..Default::default()
        };
        for group in FeatureGroup::all() {
            let mut f = full.clone();
            f.clear_group(group);
            assert_ne!(f, full, "clearing {group:?} should change something");
        }
        let mut f = full.clone();
        f.clear_group(FeatureGroup::HistoricalSystemMetrics);
        assert_eq!(f.average_tcio, 0.0);
        assert_eq!(f.num_buckets, 6, "other groups untouched");
        f.clear_group(FeatureGroup::ExecutionMetadata);
        assert!(f.pipeline_name.is_empty());
        f.clear_group(FeatureGroup::AllocatedResources);
        f.clear_group(FeatureGroup::JobTimestamp);
        assert!(f.to_numeric().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn default_features_are_all_zero() {
        let f = JobFeatures::default();
        assert!(f.to_numeric().iter().all(|&x| x == 0.0));
    }
}
