//! The synthetic trace generator.
//!
//! Turns a [`ClusterSpec`] into a concrete sequence of [`ShuffleJob`]s. Jobs
//! arrive according to a non-homogeneous Poisson process (modulated by the
//! cluster's diurnal pattern), or periodically for archetypes with a
//! `periodicity_secs` (modelling cron-like production pipelines). Each job is
//! attributed to a synthetic pipeline; pipelines have persistent identity, so
//! repeated runs of the same pipeline produce correlated job characteristics
//! and populate the "historical system metrics" feature group.

use crate::archetype::{Archetype, ArchetypeParams};
use crate::cluster::{ClusterSpec, PipelineSpec};
use crate::distributions::{exponential_gap, LogNormal};
use crate::features::JobFeatures;
use crate::job::{IoProfile, JobId, ShuffleJob};
use crate::metadata::PipelineMetadata;
use crate::trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Assumed sustainable operations per second of one standard HDD, used only
/// to scale the *historical TCIO feature*; the authoritative TCIO computation
/// lives in `byom-cost`.
const FEATURE_HDD_OPS_PER_SEC: f64 = 150.0;

/// Deterministic, seedable generator of synthetic cluster traces.
#[derive(Debug)]
pub struct TraceGenerator {
    seed: u64,
}

/// Persistent identity of one synthetic pipeline.
#[derive(Debug, Clone)]
struct Pipeline {
    archetype: Archetype,
    metadata: PipelineMetadata,
    /// Per-pipeline multiplicative scale on job size, so that different
    /// pipelines of the same archetype occupy different size regimes.
    size_scale: f64,
    /// Per-pipeline multiplicative scale on read amplification.
    read_scale: f64,
    /// Allocated-resource features are sticky per pipeline (the scheduler
    /// allocates similar resources to repeated runs).
    num_workers: u32,
    num_worker_threads: u32,
    requested_num_shards: u32,
    initial_num_stripes: u32,
}

/// Running history of a pipeline's previous executions, used to fill the
/// historical-system-metrics feature group.
#[derive(Debug, Clone, Copy, Default)]
struct PipelineHistory {
    runs: u32,
    sum_tcio: f64,
    sum_size: f64,
    sum_lifetime: f64,
    sum_io_density: f64,
}

impl PipelineHistory {
    fn features(&self) -> (f64, f64, f64, f64) {
        if self.runs == 0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let n = f64::from(self.runs);
        (
            self.sum_tcio / n,
            self.sum_size / n,
            self.sum_lifetime / n,
            self.sum_io_density / n,
        )
    }

    fn record(&mut self, tcio: f64, size: f64, lifetime: f64, density: f64) {
        self.runs += 1;
        self.sum_tcio += tcio;
        self.sum_size += size;
        self.sum_lifetime += lifetime;
        self.sum_io_density += density;
    }
}

impl TraceGenerator {
    /// Create a generator with the given seed. The same seed and spec always
    /// produce the same trace.
    pub fn new(seed: u64) -> Self {
        TraceGenerator { seed }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generate a trace for one cluster covering `duration_secs` of simulated
    /// time starting at t = 0 (midnight, Monday).
    ///
    /// # Panics
    /// Panics if `duration_secs` is not positive or the spec has no pipelines
    /// with positive weight.
    pub fn generate(&self, spec: &ClusterSpec, duration_secs: f64) -> Trace {
        assert!(duration_secs > 0.0, "duration must be positive");
        let total_weight = spec.total_weight();
        let mut rng = StdRng::seed_from_u64(self.seed ^ (u64::from(spec.id) << 32));

        // Materialize pipeline populations.
        let mut pipelines: Vec<(usize, Pipeline)> = Vec::new();
        for (spec_idx, pspec) in spec.pipelines.iter().enumerate() {
            for user in 0..pspec.num_users {
                for p in 0..pspec.pipelines_per_user {
                    pipelines.push((spec_idx, Self::make_pipeline(&mut rng, pspec, user, p)));
                }
            }
        }
        assert!(!pipelines.is_empty(), "cluster spec produced no pipelines");

        let mut history: BTreeMap<usize, PipelineHistory> = BTreeMap::new();
        let mut jobs: Vec<ShuffleJob> = Vec::new();
        let mut next_id: u64 = 0;

        // Poisson arrivals for each pipeline spec (aperiodic archetypes), with
        // diurnal thinning; periodic archetypes run on their schedule.
        for (spec_idx, pspec) in spec.pipelines.iter().enumerate() {
            let params = pspec.archetype.params();
            let members: Vec<usize> = pipelines
                .iter()
                .enumerate()
                .filter(|(_, (s, _))| *s == spec_idx)
                .map(|(i, _)| i)
                .collect();
            if members.is_empty() {
                continue;
            }
            let rate =
                spec.base_arrival_rate * pspec.weight / total_weight * params.relative_arrival_rate;

            match params.periodicity_secs {
                Some(period) => {
                    // Each member pipeline runs periodically with phase jitter.
                    for &pidx in &members {
                        let mut t = rng.gen_range(0.0..period);
                        while t < duration_secs {
                            let runs = pspec.shuffles_per_run.max(1);
                            for shuffle_idx in 0..runs {
                                let arrival = t + rng.gen_range(0.0..60.0);
                                if arrival >= duration_secs {
                                    break;
                                }
                                let job = Self::make_job(
                                    &mut rng,
                                    spec,
                                    &pipelines[pidx].1,
                                    &params,
                                    &mut history,
                                    pidx,
                                    shuffle_idx,
                                    arrival,
                                    &mut next_id,
                                );
                                jobs.push(job);
                            }
                            t += period * rng.gen_range(0.9..1.1);
                        }
                    }
                }
                None => {
                    // Non-homogeneous Poisson via thinning against the peak
                    // diurnal factor.
                    if rate <= 0.0 {
                        continue;
                    }
                    let peak = 1.0 + spec.diurnal.daily_amplitude;
                    let mut t = 0.0;
                    while t < duration_secs {
                        t += exponential_gap(&mut rng, rate * peak);
                        if t >= duration_secs {
                            break;
                        }
                        let accept = spec.diurnal.load_factor(t) / peak;
                        if rng.gen::<f64>() > accept {
                            continue;
                        }
                        let pidx = members[rng.gen_range(0..members.len())];
                        let shuffle_idx = rng.gen_range(0..pspec.shuffles_per_run.max(1));
                        let job = Self::make_job(
                            &mut rng,
                            spec,
                            &pipelines[pidx].1,
                            &params,
                            &mut history,
                            pidx,
                            shuffle_idx,
                            t,
                            &mut next_id,
                        );
                        jobs.push(job);
                    }
                }
            }
        }

        jobs.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
        // Re-assign IDs in arrival order so IDs are monotone in time.
        for (i, j) in jobs.iter_mut().enumerate() {
            j.id = JobId(i as u64);
        }
        Trace::new(jobs)
    }

    /// Generate traces for a whole fleet of clusters (convenience wrapper).
    pub fn generate_fleet(&self, specs: &[ClusterSpec], duration_secs: f64) -> Vec<Trace> {
        specs
            .iter()
            .map(|s| self.generate(s, duration_secs))
            .collect()
    }

    fn make_pipeline<R: Rng + ?Sized>(
        rng: &mut R,
        pspec: &PipelineSpec,
        user_idx: u32,
        pipeline_idx: u32,
    ) -> Pipeline {
        let metadata = PipelineMetadata::synthesize(rng, pspec.archetype, user_idx, pipeline_idx);
        let size_scale = LogNormal::from_median_spread(1.0, 2.5).sample(rng);
        let read_scale = LogNormal::from_median_spread(1.0, 1.5).sample(rng);
        let num_workers = rng.gen_range(4..512);
        Pipeline {
            archetype: pspec.archetype,
            metadata,
            size_scale,
            read_scale,
            num_workers,
            num_worker_threads: rng.gen_range(1..16),
            requested_num_shards: num_workers * rng.gen_range(1..8),
            initial_num_stripes: rng.gen_range(1..64),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn make_job<R: Rng + ?Sized>(
        rng: &mut R,
        spec: &ClusterSpec,
        pipeline: &Pipeline,
        params: &ArchetypeParams,
        history: &mut BTreeMap<usize, PipelineHistory>,
        pipeline_idx: usize,
        shuffle_idx: u32,
        arrival: f64,
        next_id: &mut u64,
    ) -> ShuffleJob {
        let size = (params.size_bytes.sample(rng) * pipeline.size_scale).max(4096.0);
        let lifetime = params.lifetime_secs.sample(rng).max(1.0);
        let read_amp = (params.read_amplification.sample(rng) * pipeline.read_scale).max(0.01);
        let written = size * params.write_amplification;
        let read = size * read_amp;
        let mean_read_size = params.mean_read_size.max(512.0);
        let read_ops = (read / mean_read_size).ceil().max(1.0);
        // Writes are issued in stripes roughly sized by records; model an
        // average raw write op of 128 KiB before coalescing.
        let write_ops = (written / (128.0 * 1024.0)).ceil().max(1.0);
        let dram_hit = (params.dram_hit_fraction + rng.gen_range(-0.05..0.05)).clamp(0.0, 0.95);

        let io = IoProfile {
            written_bytes: written as u64,
            read_bytes: read as u64,
            write_ops: write_ops as u64,
            read_ops: read_ops as u64,
            dram_hit_fraction: dram_hit,
            mean_read_size: mean_read_size as u64,
        };

        let hist = history.entry(pipeline_idx).or_default();
        let (avg_tcio, avg_size, avg_lifetime, avg_density) = hist.features();

        let day_secs = arrival.rem_euclid(86_400.0);
        let weekday = ((arrival / 86_400.0).floor() as i64).rem_euclid(7) as u8;
        let num_buckets = (pipeline.requested_num_shards as f64 * rng.gen_range(0.5..1.5)) as u32;

        let features = JobFeatures {
            average_tcio: avg_tcio,
            average_size: avg_size,
            average_lifetime: avg_lifetime,
            average_io_density: avg_density,
            bucket_sizing_initial_num_stripes: pipeline.initial_num_stripes,
            bucket_sizing_num_shards: pipeline.requested_num_shards,
            bucket_sizing_num_worker_threads: pipeline.num_worker_threads,
            bucket_sizing_num_workers: pipeline.num_workers,
            initial_num_buckets: pipeline.requested_num_shards,
            num_buckets: num_buckets.max(1),
            records_written: (written / 256.0) as u64,
            requested_num_shards: pipeline.requested_num_shards,
            open_time_day_hour: (day_secs / 3600.0) as u8,
            open_time_seconds: day_secs as u32,
            open_time_weekday: weekday,
            build_target_name: pipeline.metadata.build_target_name.clone(),
            execution_name: pipeline.metadata.execution_name.clone(),
            pipeline_name: pipeline.metadata.pipeline_name.clone(),
            step_name: pipeline.metadata.step_name(rng, shuffle_idx),
            user_name: pipeline.metadata.user_name.clone(),
        };

        // Update the pipeline history with a simple TCIO estimate so that the
        // *next* run of this pipeline sees correlated historical features.
        let effective_ops = read_ops * (1.0 - dram_hit) + written / (1024.0 * 1024.0);
        let tcio_estimate = effective_ops / lifetime / FEATURE_HDD_OPS_PER_SEC;
        let density = (written + read) / size;
        hist.record(tcio_estimate, size, lifetime, density);

        let id = JobId(*next_id);
        *next_id += 1;
        ShuffleJob {
            id,
            cluster: spec.id,
            arrival,
            lifetime,
            size_bytes: size as u64,
            io,
            features,
            archetype: pipeline.archetype.index(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;

    #[test]
    fn generation_is_deterministic() {
        let spec = ClusterSpec::balanced(0);
        let a = TraceGenerator::new(7).generate(&spec, 6_000.0);
        let b = TraceGenerator::new(7).generate(&spec, 6_000.0);
        assert_eq!(a.jobs(), b.jobs());
    }

    #[test]
    fn different_seeds_differ() {
        let spec = ClusterSpec::balanced(0);
        let a = TraceGenerator::new(1).generate(&spec, 6_000.0);
        let b = TraceGenerator::new(2).generate(&spec, 6_000.0);
        assert_ne!(a.jobs(), b.jobs());
    }

    #[test]
    fn jobs_are_sorted_and_within_duration() {
        let spec = ClusterSpec::balanced(0);
        let trace = TraceGenerator::new(3).generate(&spec, 12_000.0);
        assert!(!trace.jobs().is_empty());
        assert!(trace
            .jobs()
            .windows(2)
            .all(|w| w[0].arrival <= w[1].arrival));
        assert!(trace
            .jobs()
            .iter()
            .all(|j| j.arrival >= 0.0 && j.arrival < 12_000.0));
        assert!(trace
            .jobs()
            .iter()
            .all(|j| j.lifetime > 0.0 && j.size_bytes > 0));
    }

    #[test]
    fn ids_are_monotone_and_unique() {
        let spec = ClusterSpec::balanced(1);
        let trace = TraceGenerator::new(4).generate(&spec, 8_000.0);
        for (i, j) in trace.jobs().iter().enumerate() {
            assert_eq!(j.id.0, i as u64);
        }
    }

    #[test]
    fn historical_features_appear_for_repeated_pipelines() {
        // Over a long enough window, periodic pipelines re-run and later jobs
        // should carry non-zero historical averages.
        let spec = ClusterSpec::balanced(0);
        let trace = TraceGenerator::new(5).generate(&spec, 86_400.0);
        let with_history = trace
            .jobs()
            .iter()
            .filter(|j| j.features.average_size > 0.0)
            .count();
        assert!(
            with_history > 0,
            "expected some jobs with populated historical features"
        );
    }

    #[test]
    fn workload_diversity_across_archetypes() {
        // Figure 1 of the paper: workloads differ by orders of magnitude.
        let spec = ClusterSpec::balanced(0);
        let trace = TraceGenerator::new(6).generate(&spec, 43_200.0);
        let mut by_archetype: BTreeMap<u8, Vec<f64>> = BTreeMap::new();
        for j in trace.jobs() {
            by_archetype
                .entry(j.archetype)
                .or_default()
                .push(j.io_density());
        }
        assert!(
            by_archetype.len() >= 4,
            "expected several archetypes present"
        );
        let means: Vec<f64> = by_archetype
            .values()
            .map(|v| v.iter().sum::<f64>() / v.len() as f64)
            .collect();
        let max = means.iter().cloned().fold(f64::MIN, f64::max);
        let min = means.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 1.5, "archetypes should differ in I/O density");
    }

    #[test]
    fn fleet_generation_covers_all_clusters() {
        let specs = ClusterSpec::evaluation_fleet();
        let traces = TraceGenerator::new(1).generate_fleet(&specs[..3], 3_600.0);
        assert_eq!(traces.len(), 3);
        for (t, s) in traces.iter().zip(&specs[..3]) {
            assert!(t.jobs().iter().all(|j| j.cluster == s.id));
        }
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_panics() {
        let spec = ClusterSpec::balanced(0);
        let _ = TraceGenerator::new(1).generate(&spec, 0.0);
    }
}
