//! The shuffle-job data model.
//!
//! The basic data placement unit in the paper is a *shuffle job*: a set of
//! intermediate files written by workers of a data-processing framework,
//! sorted, and later read back. The placement algorithm sees four primary
//! attributes — start time, lifetime, size, and cost — plus the
//! application-level features of [`crate::features::JobFeatures`].

use crate::features::JobFeatures;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A unique identifier for a shuffle job within a trace.
///
/// Identifiers are assigned sequentially by the trace generator and are
/// stable across runs with the same seed.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

impl From<u64> for JobId {
    fn from(v: u64) -> Self {
        JobId(v)
    }
}

/// Raw I/O behaviour of a job over its lifetime, before any cost-model
/// adjustments (DRAM caching, write coalescing) are applied.
///
/// The cost model in `byom-cost` converts an [`IoProfile`] into the paper's
/// `TCIO` metric, which expresses disk pressure in units of "one standard
/// HDD's sustainable I/O per second".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct IoProfile {
    /// Total bytes written to intermediate files (raw + sorted copies).
    pub written_bytes: u64,
    /// Total bytes read back from intermediate files.
    pub read_bytes: u64,
    /// Number of write operations issued before coalescing.
    pub write_ops: u64,
    /// Number of read operations issued.
    pub read_ops: u64,
    /// Fraction of read operations served from the server-side DRAM cache
    /// (those never reach the disks). In `[0, 1]`.
    pub dram_hit_fraction: f64,
    /// Mean size of a single read operation in bytes (used to model whether
    /// accesses are small/random — SSD-friendly — or large/sequential).
    pub mean_read_size: u64,
}

impl IoProfile {
    /// Total bytes moved (reads + writes).
    pub fn total_bytes(&self) -> u64 {
        self.written_bytes.saturating_add(self.read_bytes)
    }

    /// Total raw operations (reads + writes), before cache/coalescing effects.
    pub fn total_ops(&self) -> u64 {
        self.write_ops.saturating_add(self.read_ops)
    }
}

/// A single shuffle job: the unit of data placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShuffleJob {
    /// Unique identifier within the trace.
    pub id: JobId,
    /// Cluster the job ran in.
    pub cluster: u16,
    /// Arrival (start) time in seconds from the trace origin.
    pub arrival: f64,
    /// Lifetime in seconds: intermediate files exist from `arrival` to
    /// `arrival + lifetime`.
    pub lifetime: f64,
    /// Peak intermediate-file footprint in bytes.
    pub size_bytes: u64,
    /// Raw I/O profile of the job.
    pub io: IoProfile,
    /// Application-level features available *before* the job executes
    /// (Table 2 of the paper). These are what the category model consumes.
    pub features: JobFeatures,
    /// Index of the workload archetype that generated this job. Retained so
    /// experiments can slice results by workload type; not visible to models.
    pub archetype: u8,
}

impl ShuffleJob {
    /// End time of the job (arrival + lifetime) in seconds.
    pub fn end(&self) -> f64 {
        self.arrival + self.lifetime
    }

    /// I/O density: total I/O bytes across the lifetime divided by the peak
    /// storage footprint. Jobs with high I/O density benefit most from SSD.
    ///
    /// Returns 0.0 for degenerate jobs with zero footprint.
    pub fn io_density(&self) -> f64 {
        if self.size_bytes == 0 {
            return 0.0;
        }
        self.io.total_bytes() as f64 / self.size_bytes as f64
    }

    /// Whether the job's files are live at time `t`.
    pub fn is_live_at(&self, t: f64) -> bool {
        t >= self.arrival && t <= self.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::JobFeatures;

    fn job(size: u64, written: u64, read: u64) -> ShuffleJob {
        ShuffleJob {
            id: JobId(1),
            cluster: 0,
            arrival: 10.0,
            lifetime: 100.0,
            size_bytes: size,
            io: IoProfile {
                written_bytes: written,
                read_bytes: read,
                write_ops: 10,
                read_ops: 20,
                dram_hit_fraction: 0.1,
                mean_read_size: 4096,
            },
            features: JobFeatures::default(),
            archetype: 0,
        }
    }

    #[test]
    fn io_density_is_total_bytes_over_footprint() {
        let j = job(1000, 2000, 3000);
        assert!((j.io_density() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn io_density_zero_footprint_is_zero() {
        let j = job(0, 2000, 3000);
        assert_eq!(j.io_density(), 0.0);
    }

    #[test]
    fn end_and_liveness() {
        let j = job(1, 1, 1);
        assert_eq!(j.end(), 110.0);
        assert!(j.is_live_at(10.0));
        assert!(j.is_live_at(110.0));
        assert!(!j.is_live_at(9.99));
        assert!(!j.is_live_at(110.01));
    }

    #[test]
    fn job_id_display_and_conversion() {
        let id: JobId = 7u64.into();
        assert_eq!(id.to_string(), "job-7");
        assert_eq!(id, JobId(7));
    }

    #[test]
    fn io_profile_totals_saturate() {
        let p = IoProfile {
            written_bytes: u64::MAX,
            read_bytes: 10,
            write_ops: u64::MAX,
            read_ops: 10,
            dram_hit_fraction: 0.0,
            mean_read_size: 1,
        };
        assert_eq!(p.total_bytes(), u64::MAX);
        assert_eq!(p.total_ops(), u64::MAX);
    }

    #[test]
    fn serde_round_trip() {
        let j = job(42, 1, 2);
        let s = serde_json::to_string(&j).unwrap();
        let back: ShuffleJob = serde_json::from_str(&s).unwrap();
        assert_eq!(j, back);
    }
}
