//! Synthetic production traces for warehouse-scale storage placement studies.
//!
//! This crate reproduces the *input side* of the BYOM storage-placement paper:
//! shuffle jobs produced by a distributed data-processing framework, together
//! with the application-level features their models are trained on (Table 2 of
//! the paper). Since the original Google production traces are proprietary,
//! the crate provides a statistical trace generator that models clusters as
//! mixtures of workload *archetypes* (log processing, query/join pipelines,
//! ML training with checkpoints, streaming, video processing, compress-and-
//! upload jobs). The generated traces exhibit the properties the paper's
//! algorithms depend on: heavy-tailed job sizes and lifetimes, diurnal and
//! weekly periodicity, per-pipeline self-similarity, and wide variation in
//! I/O density across workloads (Figure 1 of the paper).
//!
//! # Quick example
//!
//! ```
//! use byom_trace::{ClusterSpec, TraceGenerator};
//!
//! let spec = ClusterSpec::balanced(0);
//! let trace = TraceGenerator::new(42).generate(&spec, 3_600.0);
//! assert!(!trace.jobs().is_empty());
//! // Jobs are sorted by arrival time.
//! assert!(trace.jobs().windows(2).all(|w| w[0].arrival <= w[1].arrival));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod archetype;
pub mod cache;
pub mod cluster;
pub mod distributions;
pub mod encoding;
pub mod features;
pub mod generator;
pub mod job;
pub mod metadata;
pub mod trace;

pub use archetype::{Archetype, ArchetypeParams};
pub use cache::{cached_trace_count, clear_trace_cache};
pub use cluster::{ClusterId, ClusterSpec, PipelineSpec};
pub use encoding::FeatureEncoder;
pub use features::{FeatureGroup, JobFeatures, FEATURE_NAMES, NUMERIC_FEATURE_COUNT};
pub use generator::TraceGenerator;
pub use job::{IoProfile, JobId, ShuffleJob};
pub use trace::Trace;
