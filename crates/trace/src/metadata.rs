//! Execution-metadata string synthesis and tokenization.
//!
//! The paper's feature group B consists of strings — build target, execution
//! name, pipeline name, step name, user name — whose key elements are
//! separated by non-alphanumeric characters (Table 3). This module generates
//! realistic-looking metadata strings for synthetic pipelines and provides the
//! tokenizer used by the model layer to split them into key elements.

use crate::archetype::Archetype;
use rand::Rng;

/// Tokenize an execution-metadata string into its key elements.
///
/// Key elements are maximal runs of alphanumeric characters; everything else
/// (slashes, dots, dashes, colons, underscores...) is treated as a separator,
/// following the paper's description of how metadata strings are decomposed.
///
/// ```
/// use byom_trace::metadata::tokenize;
/// assert_eq!(
///     tokenize("//storage/buildmanager:shuffle-main.v2"),
///     vec!["storage", "buildmanager", "shuffle", "main", "v2"]
/// );
/// ```
pub fn tokenize(s: &str) -> Vec<&str> {
    s.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .collect()
}

/// Names of synthetic teams used to build user/pipeline identifiers.
const TEAMS: [&str; 12] = [
    "ads", "search", "maps", "photos", "mail", "cloud", "video", "metrics", "logs", "billing",
    "security", "research",
];

/// Names of synthetic step operations in the data-flow graph.
const STEP_OPS: [&str; 8] = [
    "GroupByKey",
    "CoGroupByKey",
    "Combine",
    "Partition",
    "Flatten",
    "Join",
    "Reshuffle",
    "Window",
];

/// Generated execution-metadata strings for one pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineMetadata {
    /// The build target, e.g. `//ads/logproc/buildmanager:pipeline3`.
    pub build_target_name: String,
    /// The execution (binary) name.
    pub execution_name: String,
    /// The pipeline name.
    pub pipeline_name: String,
    /// The user name that owns the pipeline.
    pub user_name: String,
}

impl PipelineMetadata {
    /// Synthesize metadata for pipeline number `pipeline_idx` owned by user
    /// number `user_idx` of the given archetype.
    pub fn synthesize<R: Rng + ?Sized>(
        rng: &mut R,
        archetype: Archetype,
        user_idx: u32,
        pipeline_idx: u32,
    ) -> Self {
        let team = TEAMS[rng.gen_range(0..TEAMS.len())];
        let kind = archetype.name();
        let user_name = format!("{team}-{kind}-user{user_idx}");
        let pipeline_name = format!("org.{team}.{kind}.pipeline{pipeline_idx}.prod");
        let build_target_name = format!("//{team}/{kind}/buildmanager:pipeline{pipeline_idx}");
        let execution_name = format!("com.{team}.{kind}.launcher.Main{pipeline_idx}");
        PipelineMetadata {
            build_target_name,
            execution_name,
            pipeline_name,
            user_name,
        }
    }

    /// Generate a step name for shuffle `shuffle_idx` within a run of this
    /// pipeline, e.g. `GroupByKey-open-shuffle4`.
    pub fn step_name<R: Rng + ?Sized>(&self, rng: &mut R, shuffle_idx: u32) -> String {
        let op = STEP_OPS[rng.gen_range(0..STEP_OPS.len())];
        format!("{op}-open-shuffle{shuffle_idx}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tokenize_splits_on_non_alphanumeric() {
        assert_eq!(
            tokenize("com.ads.logproc.launcher.Main3"),
            vec!["com", "ads", "logproc", "launcher", "Main3"]
        );
        assert_eq!(tokenize("GroupByKey-22"), vec!["GroupByKey", "22"]);
    }

    #[test]
    fn tokenize_handles_empty_and_separator_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("///---...").is_empty());
    }

    #[test]
    fn tokenize_single_token() {
        assert_eq!(tokenize("abc123"), vec!["abc123"]);
    }

    #[test]
    fn synthesized_metadata_embeds_archetype_and_indices() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = PipelineMetadata::synthesize(&mut rng, Archetype::QueryJoin, 7, 42);
        assert!(m.user_name.contains("queryjoin"));
        assert!(m.user_name.contains("user7"));
        assert!(m.pipeline_name.contains("pipeline42"));
        assert!(m.build_target_name.starts_with("//"));
        assert!(m.build_target_name.contains(':'));
        assert!(m.execution_name.contains("launcher"));
    }

    #[test]
    fn step_name_contains_shuffle_index() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = PipelineMetadata::synthesize(&mut rng, Archetype::Streaming, 0, 0);
        let s = m.step_name(&mut rng, 9);
        assert!(s.contains("shuffle9"));
        assert!(!tokenize(&s).is_empty());
    }

    #[test]
    fn metadata_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        let ma = PipelineMetadata::synthesize(&mut a, Archetype::LogProcessing, 1, 2);
        let mb = PipelineMetadata::synthesize(&mut b, Archetype::LogProcessing, 1, 2);
        assert_eq!(ma, mb);
    }
}
