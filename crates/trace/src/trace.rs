//! The [`Trace`] container: an arrival-ordered sequence of shuffle jobs plus
//! the aggregate queries that experiments need (peak space usage, time
//! splits, per-cluster filtering, serialization).

use crate::job::ShuffleJob;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

/// An arrival-time-ordered sequence of shuffle jobs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    jobs: Vec<ShuffleJob>,
}

impl Trace {
    /// Build a trace from a list of jobs. Jobs are sorted by arrival time.
    pub fn new(mut jobs: Vec<ShuffleJob>) -> Self {
        jobs.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
        Trace { jobs }
    }

    /// The jobs, in arrival order.
    pub fn jobs(&self) -> &[ShuffleJob] {
        &self.jobs
    }

    /// Number of jobs in the trace.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the trace contains no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Iterate over the jobs in arrival order.
    pub fn iter(&self) -> std::slice::Iter<'_, ShuffleJob> {
        self.jobs.iter()
    }

    /// Consume the trace, returning the job vector.
    pub fn into_jobs(self) -> Vec<ShuffleJob> {
        self.jobs
    }

    /// Time span covered by the trace: from the first arrival to the latest
    /// job end. Returns `(0.0, 0.0)` for an empty trace.
    pub fn time_span(&self) -> (f64, f64) {
        if self.jobs.is_empty() {
            return (0.0, 0.0);
        }
        let start = self.jobs.first().map(|j| j.arrival).unwrap_or(0.0);
        let end = self.jobs.iter().map(|j| j.end()).fold(f64::MIN, f64::max);
        (start, end)
    }

    /// Peak simultaneous storage footprint (bytes) if every job's files were
    /// retained for its full lifetime. This is the "peak theoretical SSD
    /// usage limit" against which the paper expresses SSD quotas.
    pub fn peak_space_usage(&self) -> u64 {
        // Sweep over arrival/end events.
        let mut events: Vec<(f64, i64)> = Vec::with_capacity(self.jobs.len() * 2);
        for j in &self.jobs {
            events.push((j.arrival, j.size_bytes as i64));
            events.push((j.end(), -(j.size_bytes as i64)));
        }
        events.sort_by(|a, b| {
            a.0.total_cmp(&b.0)
                // Process departures before arrivals at identical timestamps so
                // instantaneous swaps do not double count.
                .then(a.1.cmp(&b.1))
        });
        let mut current: i64 = 0;
        let mut peak: i64 = 0;
        for (_, delta) in events {
            current += delta;
            peak = peak.max(current);
        }
        peak.max(0) as u64
    }

    /// Total bytes across all jobs' peak footprints (not deduplicated in time).
    pub fn total_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.size_bytes).sum()
    }

    /// Return sub-traces `(before, after)` split at time `t`: jobs arriving
    /// strictly before `t` and jobs arriving at or after `t`. Used for the
    /// paper's one-week-train / one-week-test protocol.
    pub fn split_at(&self, t: f64) -> (Trace, Trace) {
        let (before, after): (Vec<_>, Vec<_>) =
            self.jobs.iter().cloned().partition(|j| j.arrival < t);
        (Trace { jobs: before }, Trace { jobs: after })
    }

    /// Keep only jobs satisfying the predicate.
    pub fn filter<F: Fn(&ShuffleJob) -> bool>(&self, pred: F) -> Trace {
        Trace {
            jobs: self.jobs.iter().filter(|j| pred(j)).cloned().collect(),
        }
    }

    /// Largest job id in the trace (0 for an empty trace). Perturbation
    /// layers use this to mint fresh ids for duplicated jobs.
    pub fn max_job_id(&self) -> u64 {
        self.jobs.iter().map(|j| j.id.0).max().unwrap_or(0)
    }

    /// Rewrite the trace job-by-job: the callback receives each job in
    /// arrival order and pushes zero or more replacement jobs into `out`
    /// (push nothing to drop the job, push it twice to duplicate it, or push
    /// an edited copy to corrupt its metadata). The result is re-sorted by
    /// arrival, so replacements may move in time.
    ///
    /// This is the hook fault-injection layers (`byom_chaos`) use to perturb
    /// traces without reaching into the container's internals.
    pub fn perturb<F: FnMut(ShuffleJob, &mut Vec<ShuffleJob>)>(self, mut f: F) -> Trace {
        let mut out = Vec::with_capacity(self.jobs.len());
        for job in self.jobs {
            f(job, &mut out);
        }
        Trace::new(out)
    }

    /// Merge several traces into one, re-sorting by arrival.
    pub fn merge<I: IntoIterator<Item = Trace>>(traces: I) -> Trace {
        let jobs: Vec<ShuffleJob> = traces.into_iter().flat_map(|t| t.jobs).collect();
        Trace::new(jobs)
    }

    /// Serialize the trace as JSON lines (one job per line) to a writer.
    ///
    /// # Errors
    /// Returns any I/O or serialization error from the underlying writer.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        for job in &self.jobs {
            let line = serde_json::to_string(job)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            writeln!(w, "{line}")?;
        }
        Ok(())
    }

    /// Read a trace from JSON lines produced by [`Trace::write_jsonl`].
    ///
    /// # Errors
    /// Returns any I/O or deserialization error.
    pub fn read_jsonl<R: BufRead>(r: R) -> std::io::Result<Trace> {
        let mut jobs = Vec::new();
        for line in r.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let job: ShuffleJob = serde_json::from_str(&line)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            jobs.push(job);
        }
        Ok(Trace::new(jobs))
    }
}

impl FromIterator<ShuffleJob> for Trace {
    fn from_iter<T: IntoIterator<Item = ShuffleJob>>(iter: T) -> Self {
        Trace::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a ShuffleJob;
    type IntoIter = std::slice::Iter<'a, ShuffleJob>;
    fn into_iter(self) -> Self::IntoIter {
        self.jobs.iter()
    }
}

impl IntoIterator for Trace {
    type Item = ShuffleJob;
    type IntoIter = std::vec::IntoIter<ShuffleJob>;
    fn into_iter(self) -> Self::IntoIter {
        self.jobs.into_iter()
    }
}

impl Extend<ShuffleJob> for Trace {
    fn extend<T: IntoIterator<Item = ShuffleJob>>(&mut self, iter: T) {
        self.jobs.extend(iter);
        self.jobs.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::JobFeatures;
    use crate::job::{IoProfile, JobId};

    fn job(id: u64, arrival: f64, lifetime: f64, size: u64) -> ShuffleJob {
        ShuffleJob {
            id: JobId(id),
            cluster: 0,
            arrival,
            lifetime,
            size_bytes: size,
            io: IoProfile::default(),
            features: JobFeatures::default(),
            archetype: 0,
        }
    }

    #[test]
    fn new_sorts_by_arrival() {
        let t = Trace::new(vec![job(0, 5.0, 1.0, 1), job(1, 1.0, 1.0, 1)]);
        assert_eq!(t.jobs()[0].arrival, 1.0);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_trace_properties() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.time_span(), (0.0, 0.0));
        assert_eq!(t.peak_space_usage(), 0);
        assert_eq!(t.total_bytes(), 0);
    }

    #[test]
    fn peak_space_usage_overlapping_jobs() {
        // Jobs: [0,10] size 100, [5,15] size 200, [20,30] size 50.
        let t = Trace::new(vec![
            job(0, 0.0, 10.0, 100),
            job(1, 5.0, 10.0, 200),
            job(2, 20.0, 10.0, 50),
        ]);
        assert_eq!(t.peak_space_usage(), 300);
        assert_eq!(t.total_bytes(), 350);
    }

    #[test]
    fn peak_space_usage_back_to_back_does_not_double_count() {
        // Second job starts exactly when the first ends.
        let t = Trace::new(vec![job(0, 0.0, 10.0, 100), job(1, 10.0, 10.0, 100)]);
        assert_eq!(t.peak_space_usage(), 100);
    }

    #[test]
    fn split_at_partitions_by_arrival() {
        let t = Trace::new(vec![
            job(0, 1.0, 1.0, 1),
            job(1, 5.0, 1.0, 1),
            job(2, 9.0, 1.0, 1),
        ]);
        let (a, b) = t.split_at(5.0);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn filter_and_merge() {
        let t = Trace::new(vec![job(0, 1.0, 1.0, 10), job(1, 2.0, 1.0, 20)]);
        let big = t.filter(|j| j.size_bytes >= 20);
        assert_eq!(big.len(), 1);
        let merged = Trace::merge([t.clone(), big]);
        assert_eq!(merged.len(), 3);
        assert!(merged
            .jobs()
            .windows(2)
            .all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn perturb_can_drop_duplicate_and_edit() {
        let t = Trace::new(vec![
            job(0, 1.0, 1.0, 10),
            job(1, 2.0, 1.0, 20),
            job(2, 3.0, 1.0, 30),
        ]);
        assert_eq!(t.max_job_id(), 2);
        let next_id = t.max_job_id() + 1;
        let p = t.perturb(|j, out| match j.id.0 {
            0 => {} // drop
            1 => {
                let mut twin = j.clone();
                twin.id = JobId(next_id);
                out.push(j);
                out.push(twin);
            }
            _ => {
                let mut edited = j;
                edited.size_bytes *= 2;
                out.push(edited);
            }
        });
        assert_eq!(p.len(), 3);
        assert_eq!(p.jobs()[0].id, JobId(1));
        assert_eq!(p.jobs()[2].size_bytes, 60);
        assert!(p.jobs().windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert_eq!(Trace::default().max_job_id(), 0);
    }

    #[test]
    fn time_span_covers_latest_end() {
        let t = Trace::new(vec![job(0, 1.0, 100.0, 1), job(1, 50.0, 10.0, 1)]);
        assert_eq!(t.time_span(), (1.0, 101.0));
    }

    #[test]
    fn jsonl_round_trip() {
        let t = Trace::new(vec![job(0, 1.0, 2.0, 3), job(1, 4.0, 5.0, 6)]);
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let back = Trace::read_jsonl(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn read_jsonl_skips_blank_lines_and_rejects_garbage() {
        let ok = "\n\n";
        assert!(Trace::read_jsonl(std::io::Cursor::new(ok))
            .unwrap()
            .is_empty());
        let bad = "not json\n";
        assert!(Trace::read_jsonl(std::io::Cursor::new(bad)).is_err());
    }

    #[test]
    fn iterator_impls() {
        let t: Trace = vec![job(0, 2.0, 1.0, 1), job(1, 1.0, 1.0, 1)]
            .into_iter()
            .collect();
        assert_eq!(t.iter().count(), 2);
        assert_eq!((&t).into_iter().count(), 2);
        let mut t2 = t.clone();
        t2.extend(vec![job(2, 0.5, 1.0, 1)]);
        assert_eq!(t2.len(), 3);
        assert_eq!(t2.jobs()[0].arrival, 0.5);
        assert_eq!(t.into_iter().count(), 2);
    }
}
