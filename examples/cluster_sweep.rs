//! Cluster sweep: run all compared methods across several clusters of the
//! evaluation fleet at a fixed SSD quota, the scenario behind the paper's
//! Figure 6.
//!
//! Run with: `cargo run --release --example cluster_sweep`

use byom::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quota = 0.01;
    println!("method comparison at a {:.0}% SSD quota\n", quota * 100.0);
    println!(
        "{:<8} {:<18} {:>14} {:>15}",
        "cluster", "method", "TCO savings %", "TCIO savings %"
    );

    for spec in ClusterSpec::evaluation_fleet().into_iter().take(4) {
        let id = spec.id;
        let train = TraceGenerator::new(100 + u64::from(id)).generate(&spec, 8.0 * 3600.0);
        let test = TraceGenerator::new(200 + u64::from(id)).generate(&spec, 4.0 * 3600.0);
        let cost_model = CostModel::new(CostRates::default());
        let trained = ByomPipeline::builder()
            .num_categories(15)
            .gbdt_trees(40)
            .build()
            .train(&train, &cost_model)?;

        let sim = Simulator::new(
            SimConfig::try_from_quota_fraction(&test, quota).expect("valid quota fraction"),
            cost_model,
        );

        // The three baselines plus the two BYOM variants.
        let mut results = Vec::new();
        results.push(sim.run(&test, &mut FirstFit::new()));
        results.push(sim.run(&test, &mut CategoryHeuristic::default()));
        let mut ml = LifetimeMlBaseline::train(Default::default(), &train)?;
        results.push(sim.run(&test, &mut ml));
        results.push(sim.run(&test, &mut trained.adaptive_hash_policy()));
        results.push(sim.run(&test, &mut trained.adaptive_ranking_policy()));

        for r in &results {
            println!(
                "C{:<7} {:<18} {:>14.2} {:>15.2}",
                id,
                r.policy_name,
                r.tco_savings_percent(),
                r.tcio_savings_percent()
            );
        }
        println!();
    }
    Ok(())
}
