//! Mixed framework / non-framework workloads (Appendix C.1): ML-training
//! checkpoint writers and compress-and-upload pipelines sharing the SSD cache
//! with data-processing shuffles.
//!
//! Run with: `cargo run --release --example mixed_workloads`

use byom::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = ClusterSpec::mixed_workloads(9);
    let train = TraceGenerator::new(11).generate(&spec, 12.0 * 3600.0);
    let test = TraceGenerator::new(12).generate(&spec, 6.0 * 3600.0);
    let cost_model = CostModel::new(CostRates::default());

    let framework_jobs = test
        .iter()
        .filter(|j| Archetype::from_index(j.archetype).is_some_and(|a| a.is_framework()))
        .count();
    println!(
        "test trace: {} jobs ({} framework, {} non-framework)\n",
        test.len(),
        framework_jobs,
        test.len() - framework_jobs
    );

    let trained = ByomPipeline::builder()
        .num_categories(15)
        .gbdt_trees(40)
        .build()
        .train(&train, &cost_model)?;

    for quota in [0.01, 0.20] {
        let sim = Simulator::new(
            SimConfig::try_from_quota_fraction(&test, quota).expect("valid quota fraction"),
            cost_model,
        );
        let ff = sim.run(&test, &mut FirstFit::new());
        let ar = sim.run(&test, &mut trained.adaptive_ranking_policy());
        println!("SSD quota {:.0}% of peak usage:", quota * 100.0);
        for r in [&ff, &ar] {
            println!(
                "  {:<18} TCO {:>6.2}%   TCIO {:>6.2}%   app run-time {:>5.2}%",
                r.policy_name,
                r.tco_savings_percent(),
                r.tcio_savings_percent(),
                application_runtime_savings_percent(r)
            );
        }
        println!();
    }
    println!("No workload class regresses: savings are opportunistic on top of HDD-baseline");
    println!("performance, as required by the paper's production constraints.");
    Ok(())
}
