//! Oracle headroom analysis: how much better could placement be with
//! clairvoyant knowledge? Reproduces the Section 3.1 headroom study at the
//! example scale and shows how oracle selections shift with SSD capacity
//! (the scenario behind Figure 4).
//!
//! Run with: `cargo run --release --example oracle_headroom`

use byom::prelude::*;

fn main() {
    let spec = ClusterSpec::balanced(0);
    let trace = TraceGenerator::new(9).generate(&spec, 8.0 * 3600.0);
    let cost_model = CostModel::new(CostRates::default());
    let costs = cost_model.cost_trace(&trace);
    let peak = trace.peak_space_usage();

    println!(
        "{} jobs, peak space usage {:.1} GiB\n",
        trace.len(),
        peak as f64 / (1u64 << 30) as f64
    );
    println!(
        "{:>7} {:>12} {:>18} {:>22}",
        "quota", "jobs on SSD", "total TCO saved", "mean I/O density (SSD)"
    );

    for quota in [0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0] {
        let capacity = (peak as f64 * quota) as u64;
        let solution = Oracle::new(OracleObjective::Tco, capacity).solve(&costs);
        let selected: Vec<&JobCost> = costs
            .iter()
            .zip(&solution.on_ssd)
            .filter(|(_, &s)| s)
            .map(|(c, _)| c)
            .collect();
        let mean_density = if selected.is_empty() {
            0.0
        } else {
            selected.iter().map(|c| c.io_density).sum::<f64>() / selected.len() as f64
        };
        println!(
            "{:>6.1}% {:>12} {:>18.6} {:>22.2}",
            quota * 100.0,
            solution.num_on_ssd(),
            solution.total_value,
            mean_density
        );
    }

    println!("\nAs SSD capacity grows, the oracle admits progressively less I/O-dense jobs —");
    println!("the observation behind the paper's importance-ranking category design.");
}
