//! Quickstart: train a BYOM deployment on a synthetic cluster and compare it
//! against FirstFit at a tight SSD quota.
//!
//! Run with: `cargo run --release --example quickstart`

use byom::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic "historical week" (scaled down to 12 hours) and an "online
    // week" (6 hours) of one cluster's shuffle jobs.
    let spec = ClusterSpec::balanced(0);
    let train = TraceGenerator::new(1).generate(&spec, 12.0 * 3600.0);
    let test = TraceGenerator::new(2).generate(&spec, 6.0 * 3600.0);
    let cost_model = CostModel::new(CostRates::default());

    println!(
        "training trace: {} jobs, test trace: {} jobs, test peak space {:.1} GiB",
        train.len(),
        test.len(),
        test.peak_space_usage() as f64 / (1u64 << 30) as f64
    );

    // Offline: fit the category labeler and the per-cluster category model.
    let trained = ByomPipeline::builder()
        .num_categories(15)
        .gbdt_trees(50)
        .build()
        .train(&train, &cost_model)?;

    // Online: replay the test week at a 1% SSD quota.
    let quota = 0.01;
    let sim = Simulator::new(
        SimConfig::try_from_quota_fraction(&test, quota).expect("valid quota fraction"),
        cost_model,
    );

    let first_fit = sim.run(&test, &mut FirstFit::new());
    let ranking = sim.run(&test, &mut trained.adaptive_ranking_policy());

    println!("\nat a {:.0}% SSD quota:", quota * 100.0);
    for result in [&first_fit, &ranking] {
        println!(
            "  {:<18} TCO savings {:>6.2}%   TCIO savings {:>6.2}%   jobs on SSD {:>5}",
            result.policy_name,
            result.tco_savings_percent(),
            result.tcio_savings_percent(),
            result.savings.jobs_on_ssd,
        );
    }
    if first_fit.tco_savings_percent() > 0.0 {
        println!(
            "\nAdaptive Ranking saves {:.2}x the TCO of FirstFit",
            ranking.tco_savings_percent() / first_fit.tco_savings_percent()
        );
    }
    Ok(())
}
