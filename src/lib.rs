//! # BYOM storage placement — reproduction facade
//!
//! This crate re-exports the full reproduction of *"A Bring-Your-Own-Model
//! Approach for ML-Driven Storage Placement in Warehouse-Scale Computers"*
//! (MLSys 2025) under a single dependency, so downstream users can write
//! `use byom::prelude::*;` and get the trace generator, cost model,
//! GBDT library, oracle solver, simulator, baseline policies, and the BYOM
//! pipeline itself.
//!
//! The individual crates remain usable on their own:
//!
//! | crate | contents |
//! |---|---|
//! | [`trace`] | synthetic production traces, job model, features, encoder |
//! | [`cost`] | TCIO / TCO cost model and savings accounting |
//! | [`gbdt`] | gradient boosted decision trees (training, inference, importance) |
//! | [`solver`] | clairvoyant temporal-knapsack oracle |
//! | [`sim`] | SSD/HDD tiering simulator with spillover |
//! | [`policies`] | FirstFit, CacheSack-style heuristic, ML lifetime baseline |
//! | [`core`] | category labels, category models, Algorithm 1, BYOM pipeline |
//! | [`chaos`] | seeded fault injection and the graceful-degradation harness |
//! | [`exec`] | persistent work-stealing pool and deterministic parallel executor |
//!
//! ## Quickstart
//!
//! ```
//! use byom::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. A synthetic "historical week" of one cluster's shuffle jobs.
//! let train = TraceGenerator::new(1).generate(&ClusterSpec::balanced(0), 4.0 * 3600.0);
//! let test = TraceGenerator::new(2).generate(&ClusterSpec::balanced(0), 2.0 * 3600.0);
//! let cost_model = CostModel::new(CostRates::default());
//!
//! // 2. Train the BYOM deployment (labeler + per-cluster category model).
//! let trained = ByomPipeline::builder()
//!     .num_categories(5)
//!     .gbdt_trees(10)
//!     .build()
//!     .train(&train, &cost_model)?;
//!
//! // 3. Replay the online week against the adaptive ranking policy.
//! let sim = Simulator::new(SimConfig::try_from_quota_fraction(&test, 0.05).expect("valid quota fraction"), cost_model);
//! let result = sim.run(&test, &mut trained.adaptive_ranking_policy());
//! println!("TCO savings: {:.2}%", result.tco_savings_percent());
//! # Ok(())
//! # }
//! ```
//!
//! ## Running experiments in parallel
//!
//! All parallelism runs on **one persistent work-stealing pool**
//! ([`exec`]): the first parallel call spawns it, and every layer —
//! per-class tree fitting, feature-parallel split search, cluster/quota
//! sweeps, the resilience sweep — schedules onto the same workers instead
//! of spawning scoped threads per call. Nested fan-outs therefore share a
//! **single thread budget** rather than multiplying:
//!
//! * `0` = inherit the ambient budget (`BYOM_THREADS` if set, otherwise all
//!   available cores),
//! * `n` = cap the subtree at `n` threads (budgets only shrink with
//!   nesting),
//! * `1` = strictly sequential at every nesting level.
//!
//! Every parallel entry point is **deterministic**: work is split into
//! fixed index ranges and results are slotted by index, so any budget,
//! worker count, or steal schedule produces bit-identical models and
//! results.
//!
//! * [`ByomPipeline`](byom_core::ByomPipeline) takes a
//!   `.parallelism(n)` builder knob; the per-class trees of each boosting
//!   round are fitted concurrently and large tree nodes fill their
//!   per-feature histograms column-parallel
//!   ([`GbdtParams::parallelism`](byom_gbdt::GbdtParams)).
//! * `byom_bench::run_clusters_parallel` fans a per-cluster experiment out
//!   across the pool, `byom_bench::run_quotas_parallel` sweeps the quota
//!   operating points of one prepared context, and
//!   `byom_bench::run_resilience_sweep` fans out its fault intensities —
//!   each returns exactly what the sequential loop it replaces would.
//! * [`exec::install`](byom_exec::install)`(n, f)` pins the budget for
//!   everything `f` does; [`exec::join`](byom_exec::join) and the
//!   `par_iter()` surface compose freely beneath it.
//! * Repeated trace generations with the same `(seed, spec, duration)` are
//!   deduplicated process-wide by
//!   [`TraceGenerator::generate_cached`](byom_trace::TraceGenerator::generate_cached),
//!   so parallel workers share one generation.
//!
//! ```
//! use byom::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = ClusterSpec::balanced(0);
//! // Shared, memoized trace generation (cheap clones of one Arc'd trace).
//! let train = TraceGenerator::new(1).generate_cached(&spec, 4.0 * 3600.0);
//! let cost_model = CostModel::new(CostRates::default());
//! // Train across all cores; the model is identical to a sequential run.
//! let trained = ByomPipeline::builder()
//!     .num_categories(5)
//!     .gbdt_trees(10)
//!     .parallelism(0)
//!     .build()
//!     .train(&train, &cost_model)?;
//! # let _ = trained;
//! # Ok(())
//! # }
//! ```
//!
//! `cargo bench -p byom_bench --bench parallel` reports the wall-clock
//! speedup of both levels on the current machine, and `cargo bench -p
//! byom_bench --bench pool` compares the persistent pool's per-call
//! overhead against spawning scoped threads per call.
//!
//! ## The histogram engine
//!
//! GBDT training runs on a histogram engine
//! ([`gbdt::histogram`](byom_gbdt::histogram)): features are pre-binned
//! into a column-major [`BinnedMatrix`](byom_gbdt::BinnedMatrix) so
//! per-node fills stream contiguous columns, per-node buffers are pooled,
//! and by default each split builds only the smaller child's histogram and
//! derives the sibling as `parent − child`
//! ([`HistogramMode::Subtraction`](byom_gbdt::HistogramMode)). Both modes
//! are bit-identical across thread counts and repeated runs;
//! `HistogramMode::Rebuild` additionally reproduces the pre-engine trees
//! bit-for-bit. Pick the mode per pipeline with
//! `ByomPipeline::builder().histogram_mode(..)` or per tree via
//! [`TreeParams`](byom_gbdt::TreeParams). `cargo bench -p byom_bench
//! --bench train` pins the engine's speedup over the frozen pre-engine
//! reference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use byom_chaos as chaos;
pub use byom_core as core;
pub use byom_cost as cost;
pub use byom_exec as exec;
pub use byom_gbdt as gbdt;
pub use byom_policies as policies;
pub use byom_sim as sim;
pub use byom_solver as solver;
pub use byom_trace as trace;

/// Commonly used types from across the workspace.
pub mod prelude {
    pub use byom_chaos::{FaultPlan, FaultyCategorizer, FaultyDevice};
    pub use byom_core::{
        AdaptiveConfig, AdaptivePolicy, ByomPipeline, CategoryLabeler, CategoryModel,
        CategoryModelConfig, HashCategorizer, LadderConfig, LadderPolicy, TrainedByom,
    };
    pub use byom_cost::{CostModel, CostRates, JobCost, Placement, SavingsSummary};
    pub use byom_gbdt::{
        BinnedMatrix, Dataset, GbdtParams, GradientBoostedTrees, HistogramMode, TreeParams,
    };
    pub use byom_policies::{CategoryHeuristic, FirstFit, LifetimeMlBaseline, OraclePolicy};
    pub use byom_sim::{
        application_runtime_savings_percent, Device, JobOutcome, PlacementPolicy, SimConfig,
        SimulationResult, Simulator, SystemState,
    };
    pub use byom_solver::{Oracle, OracleObjective, OracleSolution};
    pub use byom_trace::{
        Archetype, ClusterSpec, FeatureEncoder, JobFeatures, JobId, ShuffleJob, Trace,
        TraceGenerator,
    };
}
