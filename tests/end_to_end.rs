//! Cross-crate integration tests: the full BYOM pipeline (generate → cost →
//! label → train → simulate) and the qualitative orderings the paper's
//! evaluation rests on.

use byom::prelude::*;

/// Shared fixture: one balanced cluster, a trained deployment, and a test trace.
struct Fixture {
    train: Trace,
    test: Trace,
    cost_model: CostModel,
    trained: TrainedByom,
}

fn fixture(seed: u64) -> Fixture {
    let spec = ClusterSpec::balanced(0);
    let train = TraceGenerator::new(seed).generate(&spec, 10.0 * 3600.0);
    let test = TraceGenerator::new(seed + 1).generate(&spec, 5.0 * 3600.0);
    let cost_model = CostModel::new(CostRates::default());
    let trained = ByomPipeline::builder()
        .num_categories(8)
        .gbdt_trees(25)
        .build()
        .train(&train, &cost_model)
        .expect("training succeeds");
    Fixture {
        train,
        test,
        cost_model,
        trained,
    }
}

fn run(f: &Fixture, quota: f64, policy: &mut dyn PlacementPolicy) -> SimulationResult {
    let sim = Simulator::new(
        SimConfig::try_from_quota_fraction(&f.test, quota).expect("valid quota fraction"),
        f.cost_model,
    );
    sim.run(&f.test, policy)
}

#[test]
fn pipeline_trains_on_generated_traces() {
    let f = fixture(1000);
    assert!(f.train.len() > 100, "training trace too small");
    assert!(f.test.len() > 50, "test trace too small");
    assert_eq!(f.trained.model().num_categories(), 8);
    // The model predicts valid categories on unseen jobs.
    for job in f.test.iter().take(50) {
        assert!(f.trained.model().predict_category(&job.features) < 8);
    }
}

#[test]
fn adaptive_ranking_beats_first_fit_at_tight_quota() {
    let f = fixture(1100);
    let quota = 0.01;
    let ff = run(&f, quota, &mut FirstFit::new());
    let ar = run(&f, quota, &mut f.trained.adaptive_ranking_policy());
    assert!(
        ar.tco_savings_percent() > ff.tco_savings_percent(),
        "Adaptive Ranking ({:.3}%) should beat FirstFit ({:.3}%) at a 1% quota",
        ar.tco_savings_percent(),
        ff.tco_savings_percent()
    );
}

#[test]
fn adaptive_ranking_at_least_matches_adaptive_hash() {
    let f = fixture(1200);
    let quota = 0.01;
    let hash = run(&f, quota, &mut f.trained.adaptive_hash_policy());
    let ranking = run(&f, quota, &mut f.trained.adaptive_ranking_policy());
    assert!(
        ranking.tco_savings_percent() >= hash.tco_savings_percent() - 1e-9,
        "ranking {:.3}% vs hash {:.3}%",
        ranking.tco_savings_percent(),
        hash.tco_savings_percent()
    );
}

#[test]
fn oracle_bounds_every_online_policy() {
    let f = fixture(1300);
    let quota = 0.05;
    let costs = f.cost_model.cost_trace(&f.test);
    let capacity = (f.test.peak_space_usage() as f64 * quota) as u64;
    let solution = Oracle::new(OracleObjective::Tco, capacity).solve(&costs);
    let ids: Vec<JobId> = f.test.iter().map(|j| j.id).collect();
    let oracle = run(
        &f,
        quota,
        &mut OraclePolicy::from_selection("Oracle TCO", &ids, &solution.on_ssd),
    );

    let ff = run(&f, quota, &mut FirstFit::new());
    let heuristic = run(&f, quota, &mut CategoryHeuristic::default());
    let ranking = run(&f, quota, &mut f.trained.adaptive_ranking_policy());
    for r in [&ff, &heuristic, &ranking] {
        assert!(
            r.tco_savings_percent() <= oracle.tco_savings_percent() + 1e-6,
            "{} ({:.3}%) exceeded the oracle ({:.3}%)",
            r.policy_name,
            r.tco_savings_percent(),
            oracle.tco_savings_percent()
        );
    }
}

#[test]
fn ssd_occupancy_never_exceeds_quota_for_any_policy() {
    let f = fixture(1400);
    for quota in [0.005, 0.05, 0.5] {
        let capacity = SimConfig::try_from_quota_fraction(&f.test, quota)
            .expect("valid quota fraction")
            .ssd_capacity_bytes;
        for result in [
            run(&f, quota, &mut FirstFit::new()),
            run(&f, quota, &mut f.trained.adaptive_ranking_policy()),
            run(&f, quota, &mut f.trained.adaptive_hash_policy()),
        ] {
            assert!(
                result.peak_ssd_occupancy_bytes <= capacity,
                "{} exceeded the quota at {quota}",
                result.policy_name
            );
        }
    }
}

#[test]
fn larger_quota_never_reduces_adaptive_ranking_tcio_savings() {
    let f = fixture(1500);
    let mut last = -1.0;
    for quota in [0.01, 0.05, 0.2, 0.5, 1.0] {
        let r = run(&f, quota, &mut f.trained.adaptive_ranking_policy());
        let tcio = r.tcio_savings_percent();
        assert!(
            tcio >= last - 2.0,
            "TCIO savings dropped sharply from {last:.2}% to {tcio:.2}% at quota {quota}"
        );
        last = tcio;
    }
}

#[test]
fn trace_serialization_round_trips_through_the_pipeline() {
    let f = fixture(1600);
    let mut buf = Vec::new();
    f.test.write_jsonl(&mut buf).expect("serialize");
    let restored = Trace::read_jsonl(std::io::Cursor::new(buf)).expect("deserialize");
    // serde_json's float parsing may lose the last ULP, so compare structure
    // and values with a tight relative tolerance instead of exact equality.
    assert_eq!(f.test.len(), restored.len());
    for (a, b) in f.test.iter().zip(restored.iter()) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.size_bytes, b.size_bytes);
        assert_eq!(a.features.pipeline_name, b.features.pipeline_name);
        assert!((a.arrival - b.arrival).abs() <= a.arrival.abs() * 1e-12);
        assert!((a.lifetime - b.lifetime).abs() <= a.lifetime.abs() * 1e-12);
    }
    // The restored trace produces equivalent costs.
    let a = f.cost_model.cost_trace(&f.test);
    let b = f.cost_model.cost_trace(&restored);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert!((x.tco_hdd - y.tco_hdd).abs() <= x.tco_hdd.abs() * 1e-9);
    }
}

#[test]
fn model_generalizes_to_a_different_seed_of_the_same_cluster() {
    // Train on one synthetic week, evaluate accuracy on another: the model
    // must do better than chance on unseen data (RQ4, qualitative).
    let f = fixture(1700);
    let costs = f.cost_model.cost_trace(&f.test);
    let eval = f
        .trained
        .model()
        .evaluate(&f.test, &costs, f.trained.labeler());
    assert!(
        eval.top1_accuracy > 1.0 / 8.0,
        "top-1 accuracy {:.3} is no better than random",
        eval.top1_accuracy
    );
    assert!(eval.top3_accuracy >= eval.top1_accuracy);
}
