//! Parallel execution must never change results: training with any
//! `parallelism` setting produces bit-identical models, and the harness
//! fan-out helpers return exactly what the sequential loops they replace
//! would. These tests pin that contract.

use byom::prelude::*;
use byom_bench::{
    legacy_tree, run_clusters_parallel, run_quotas_parallel, ExperimentContext, ExperimentParams,
};
use byom_gbdt::{HistogramMode, Tree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic multi-class dataset large enough to cross the parallel split
/// search's row threshold at the root.
fn synthetic_dataset(n: usize, num_features: usize, k: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f64> = (0..num_features)
            .map(|_| rng.gen_range(-10.0..10.0))
            .collect();
        // Label depends on a couple of features plus noise, so trees have
        // real structure to find.
        let score = row[0] + 0.5 * row[1 % num_features] + rng.gen_range(-2.0..2.0);
        let label = (((score + 12.0) / 24.0 * k as f64) as usize).min(k - 1);
        rows.push(row);
        labels.push(label);
    }
    Dataset::from_rows(rows, labels).unwrap()
}

#[test]
fn gbdt_training_is_identical_for_any_parallelism() {
    let train = synthetic_dataset(1500, 6, 4, 10);
    let valid = synthetic_dataset(300, 6, 4, 11);
    let base = GbdtParams {
        num_classes: 4,
        num_trees: 12,
        parallelism: 1,
        ..Default::default()
    };
    let sequential = GradientBoostedTrees::train(&base, &train, Some(&valid)).unwrap();
    for threads in [2, 4, 0] {
        let params = GbdtParams {
            parallelism: threads,
            ..base
        };
        let parallel = GradientBoostedTrees::train(&params, &train, Some(&valid)).unwrap();
        // Bit-identical trees, reports, and therefore predictions.
        assert_eq!(sequential, parallel, "parallelism={threads} diverged");
        for i in 0..50 {
            assert_eq!(
                sequential.predict_proba(train.row(i)),
                parallel.predict_proba(train.row(i)),
                "prediction {i} diverged at parallelism={threads}"
            );
        }
    }
}

#[test]
fn tree_fit_is_identical_for_any_parallelism() {
    let data = synthetic_dataset(2000, 8, 2, 12);
    let mapper = byom_gbdt::BinMapper::fit(&data, 64);
    let binned = mapper.bin_dataset(&data);
    let mut rng = StdRng::seed_from_u64(13);
    let grad: Vec<f64> = (0..data.len()).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let hess: Vec<f64> = (0..data.len()).map(|_| rng.gen_range(0.1..1.0)).collect();
    let rows: Vec<usize> = (0..data.len()).collect();
    let params = byom_gbdt::TreeParams::default();
    let sequential = Tree::fit(&binned, &mapper, &grad, &hess, &rows, params);
    for threads in [2, 4, 0] {
        let parallel =
            Tree::fit_with_parallelism(&binned, &mapper, &grad, &hess, &rows, params, threads);
        assert_eq!(
            sequential, parallel,
            "tree diverged at parallelism={threads}"
        );
    }
}

/// Gradient/hessian fixtures for the single-tree histogram-engine tests.
fn tree_fixture(
    n: usize,
    num_features: usize,
    seed: u64,
) -> (Dataset, byom_gbdt::BinMapper, Vec<f64>, Vec<f64>) {
    let data = synthetic_dataset(n, num_features, 3, seed);
    let mapper = byom_gbdt::BinMapper::fit(&data, 64);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    let grad: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let hess: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..1.0)).collect();
    (data, mapper, grad, hess)
}

#[test]
fn subtraction_mode_is_bit_identical_across_thread_counts_and_runs() {
    let (data, mapper, grad, hess) = tree_fixture(2500, 8, 20);
    let binned = mapper.bin_dataset(&data);
    let rows: Vec<usize> = (0..data.len()).collect();
    let params = byom_gbdt::TreeParams {
        histogram_mode: HistogramMode::Subtraction,
        ..Default::default()
    };
    let reference = Tree::fit_with_parallelism(&binned, &mapper, &grad, &hess, &rows, params, 1);
    for threads in [1, 2, 8] {
        // Repeated runs at each thread count: the steal schedule varies from
        // run to run, the fitted tree must not.
        for run in 0..3 {
            let tree =
                Tree::fit_with_parallelism(&binned, &mapper, &grad, &hess, &rows, params, threads);
            assert_eq!(
                reference, tree,
                "subtraction fit diverged at parallelism={threads}, run {run}"
            );
        }
    }
}

#[test]
fn rebuild_mode_is_bit_identical_to_the_pre_engine_implementation() {
    let (data, mapper, grad, hess) = tree_fixture(2000, 6, 21);
    let binned = mapper.bin_dataset(&data);
    let binned_row_major = legacy_tree::bin_dataset_row_major(&mapper, &data);
    let rows: Vec<usize> = (0..data.len()).collect();
    let params = byom_gbdt::TreeParams {
        histogram_mode: HistogramMode::Rebuild,
        ..Default::default()
    };
    let legacy = legacy_tree::fit_legacy(
        &binned_row_major,
        data.num_features(),
        &mapper,
        &grad,
        &hess,
        &rows,
        params,
    );
    for threads in [1, 4] {
        let tree =
            Tree::fit_with_parallelism(&binned, &mapper, &grad, &hess, &rows, params, threads);
        assert_eq!(
            tree.nodes(),
            legacy.as_slice(),
            "rebuild mode diverged from the frozen pre-engine fit at parallelism={threads}"
        );
    }
}

#[test]
fn subtraction_and_rebuild_agree_on_structure_with_close_leaf_values() {
    // Seeded three-class dataset: subtraction's float accumulation order
    // legitimately differs from rebuild's, so leaf values may drift by ULPs,
    // but the chosen splits — features, bins, topology — must match.
    let train = synthetic_dataset(1200, 6, 3, 22);
    let mapper = byom_gbdt::BinMapper::fit(&train, 64);
    let binned = mapper.bin_dataset(&train);
    let probs = 1.0 / 3.0f64;
    let grad: Vec<f64> = train
        .labels()
        .iter()
        .map(|&l| probs - if l == 0 { 1.0 } else { 0.0 })
        .collect();
    let hess = vec![probs * (1.0 - probs); train.len()];
    let rows: Vec<usize> = (0..train.len()).collect();
    let fit = |mode: HistogramMode| {
        let params = byom_gbdt::TreeParams {
            histogram_mode: mode,
            ..Default::default()
        };
        Tree::fit(&binned, &mapper, &grad, &hess, &rows, params)
    };
    let sub = fit(HistogramMode::Subtraction);
    let reb = fit(HistogramMode::Rebuild);
    assert_eq!(sub.num_nodes(), reb.num_nodes());
    for (i, (a, b)) in sub.nodes().iter().zip(reb.nodes()).enumerate() {
        assert_eq!(a.feature, b.feature, "node {i} split feature diverged");
        assert_eq!(a.threshold, b.threshold, "node {i} threshold diverged");
        assert_eq!(a.left, b.left, "node {i} topology diverged");
        assert_eq!(a.right, b.right, "node {i} topology diverged");
        assert!(
            (a.value - b.value).abs() < 1e-9,
            "node {i} leaf value drifted: {} vs {}",
            a.value,
            b.value
        );
    }
}

fn quick_params() -> ExperimentParams {
    ExperimentParams {
        train_hours: 3.0,
        test_hours: 1.5,
        num_categories: 4,
        gbdt_trees: 6,
        ..Default::default()
    }
}

#[test]
fn cluster_fanout_matches_sequential_loop() {
    let specs = vec![ClusterSpec::balanced(30), ClusterSpec::balanced(31)];
    let run = |i: usize, spec: &ClusterSpec| {
        let ctx = ExperimentContext::prepare(spec.clone(), quick_params());
        (i, ctx.run_all_methods(0.05, false))
    };
    let sequential: Vec<_> = specs.iter().enumerate().map(|(i, s)| run(i, s)).collect();
    let parallel = run_clusters_parallel(&specs, 2, run);
    assert_eq!(sequential, parallel);
}

#[test]
fn quota_fanout_matches_sequential_loop() {
    let ctx = ExperimentContext::prepare(ClusterSpec::balanced(32), quick_params());
    let quotas = [0.02, 0.1, 0.5];
    let sequential: Vec<_> = quotas
        .iter()
        .map(|&q| ctx.run_all_methods(q, true))
        .collect();
    let parallel = run_quotas_parallel(&ctx, &quotas, true, 3);
    assert_eq!(sequential, parallel);
}

#[test]
fn nested_cluster_quota_fanout_matches_sequential_loops() {
    // Clusters fan out in parallel and each cluster sweeps its quotas in
    // parallel — the exact nesting that used to spawn threads × threads
    // scoped workers. On the shared pool the nested sweep must still be
    // byte-identical to two sequential loops.
    let specs = vec![ClusterSpec::balanced(33), ClusterSpec::balanced(34)];
    let quotas = [0.05, 0.2];
    let sequential: Vec<_> = specs
        .iter()
        .map(|spec| {
            let ctx = ExperimentContext::prepare(spec.clone(), quick_params());
            quotas
                .iter()
                .map(|&q| ctx.run_all_methods(q, false))
                .collect::<Vec<_>>()
        })
        .collect();
    let nested = run_clusters_parallel(&specs, 2, |_, spec| {
        let ctx = ExperimentContext::prepare(spec.clone(), quick_params());
        run_quotas_parallel(&ctx, &quotas, false, 2)
    });
    assert_eq!(sequential, nested);
}

#[test]
fn resilience_sweep_is_identical_for_any_parallelism() {
    let sweep_at = |parallelism: usize| {
        let params = ExperimentParams {
            train_hours: 6.0,
            test_hours: 6.0,
            num_categories: 4,
            gbdt_trees: 6,
            parallelism,
            ..Default::default()
        };
        let ctx = ExperimentContext::prepare(ClusterSpec::balanced(35), params);
        byom_bench::run_resilience_sweep(&ctx, 0.05, 42, &[0.0, 0.5, 1.0])
    };
    let sequential = sweep_at(1);
    let parallel = sweep_at(4);
    assert_eq!(sequential.unfaulted, parallel.unfaulted);
    assert_eq!(sequential.points, parallel.points);
}

#[test]
fn parallelism_one_is_strictly_sequential_at_every_nesting_level() {
    // The old shim resolved `0` to "all cores" inside nested calls even when
    // the experiment asked for 1 thread. With the unified executor, a budget
    // of 1 must hold all the way down: every nested closure runs on the
    // calling thread.
    use byom::exec::prelude::*;
    let caller = std::thread::current().id();
    let ids = byom::exec::install(1, || {
        run_clusters_parallel(&[ClusterSpec::balanced(36)], 0, |_, _| {
            (0..8)
                .into_par_iter()
                .with_max_threads(4)
                .map(|_| {
                    let inner: Vec<std::thread::ThreadId> = (0..4)
                        .into_par_iter()
                        .with_max_threads(4)
                        .map(|_| std::thread::current().id())
                        .collect();
                    (std::thread::current().id(), inner)
                })
                .collect::<Vec<_>>()
        })
    });
    for per_cluster in ids {
        for (outer, inner) in per_cluster {
            assert_eq!(outer, caller);
            for id in inner {
                assert_eq!(id, caller);
            }
        }
    }
}

#[test]
fn join_matches_running_both_closures() {
    let (a, b) = byom::exec::install(4, || {
        byom::exec::join(
            || (0..100).map(|i| i * 3).sum::<usize>(),
            || (0..100).map(|i| i * 7).sum::<usize>(),
        )
    });
    assert_eq!(a, (0..100).map(|i| i * 3).sum::<usize>());
    assert_eq!(b, (0..100).map(|i| i * 7).sum::<usize>());
}
