//! Property-based tests (proptest) over the core invariants listed in
//! DESIGN.md: cost-model sanity, oracle feasibility and monotonicity,
//! simulator capacity conservation, label-partition validity, ACT bounds,
//! and GBDT probability-distribution validity.

use byom::prelude::*;
use byom_core::CategoryLabeler;
use byom_trace::{IoProfile, JobFeatures};
use proptest::prelude::*;

/// Strategy: an arbitrary but well-formed shuffle job.
fn arb_job(id: u64) -> impl Strategy<Value = ShuffleJob> {
    (
        0.0f64..100_000.0,              // arrival
        1.0f64..200_000.0,              // lifetime
        1u64..(1u64 << 40),             // size
        0u64..(1u64 << 41),             // read bytes
        0u64..(1u64 << 41),             // written bytes
        0u64..5_000_000,                // read ops
        0.0f64..0.95,                   // dram hit fraction
    )
        .prop_map(move |(arrival, lifetime, size, read, written, read_ops, hit)| ShuffleJob {
            id: JobId(id),
            cluster: 0,
            arrival,
            lifetime,
            size_bytes: size,
            io: IoProfile {
                read_bytes: read,
                written_bytes: written,
                read_ops,
                write_ops: written / (128 * 1024) + 1,
                dram_hit_fraction: hit,
                mean_read_size: 64 * 1024,
            },
            features: JobFeatures::default(),
            archetype: 0,
        })
}

fn arb_jobs(max: usize) -> impl Strategy<Value = Vec<ShuffleJob>> {
    prop::collection::vec(any::<u64>(), 1..max).prop_flat_map(|seeds| {
        seeds
            .into_iter()
            .enumerate()
            .map(|(i, _)| arb_job(i as u64))
            .collect::<Vec<_>>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cost model: all cost quantities are finite and non-negative, and the
    /// network component is identical across devices.
    #[test]
    fn cost_model_outputs_are_finite_and_nonnegative(job in arb_job(0)) {
        let model = CostModel::new(CostRates::default());
        let cost = model.cost_job(&job);
        prop_assert!(cost.tcio_hdd.is_finite() && cost.tcio_hdd >= 0.0);
        prop_assert!(cost.tco_hdd.is_finite() && cost.tco_hdd >= 0.0);
        prop_assert!(cost.tco_ssd.is_finite() && cost.tco_ssd >= 0.0);
        let hdd = model.tco_hdd_breakdown(&job);
        let ssd = model.tco_ssd_breakdown(&job);
        prop_assert!((hdd.network - ssd.network).abs() < 1e-15);
    }

    /// Cost model: removing DRAM cache hits can only increase TCIO.
    #[test]
    fn dram_cache_never_increases_tcio(job in arb_job(0)) {
        let model = CostModel::new(CostRates::default());
        let mut uncached = job.clone();
        uncached.io.dram_hit_fraction = 0.0;
        prop_assert!(
            model.cost_job(&uncached).tcio_hdd >= model.cost_job(&job).tcio_hdd - 1e-12
        );
    }

    /// Oracle: the chosen placement never exceeds the capacity, never selects
    /// negative-value jobs, and a larger capacity never decreases the value.
    #[test]
    fn oracle_feasibility_and_monotonicity(jobs in arb_jobs(24), cap_a in 0u64..(1u64 << 42), cap_b in 0u64..(1u64 << 42)) {
        let model = CostModel::new(CostRates::default());
        let trace = Trace::new(jobs);
        let costs = model.cost_trace(&trace);
        let (lo, hi) = if cap_a <= cap_b { (cap_a, cap_b) } else { (cap_b, cap_a) };
        let small = Oracle::new(OracleObjective::Tco, lo).solve(&costs);
        let large = Oracle::new(OracleObjective::Tco, hi).solve(&costs);
        prop_assert!(small.peak_occupancy <= lo.max(1));
        prop_assert!(large.peak_occupancy <= hi.max(1));
        for (cost, &on_ssd) in costs.iter().zip(&small.on_ssd) {
            if on_ssd {
                prop_assert!(cost.tco_savings() > 0.0);
            }
        }
        prop_assert!(large.total_value >= small.total_value - 1e-9);
    }

    /// Simulator: SSD occupancy never exceeds the configured capacity and
    /// every realized SSD fraction is within [0, 1].
    #[test]
    fn simulator_respects_capacity(jobs in arb_jobs(40), capacity in 0u64..(1u64 << 41)) {
        let model = CostModel::new(CostRates::default());
        let trace = Trace::new(jobs);
        #[derive(Debug)]
        struct AlwaysSsd;
        impl PlacementPolicy for AlwaysSsd {
            fn name(&self) -> &str { "always-ssd" }
            fn place(&mut self, _: &ShuffleJob, _: &JobCost, _: &SystemState) -> Device {
                Device::Ssd
            }
        }
        let result = Simulator::new(SimConfig { ssd_capacity_bytes: capacity }, model)
            .run(&trace, &mut AlwaysSsd);
        prop_assert!(result.peak_ssd_occupancy_bytes <= capacity);
        for o in &result.outcomes {
            prop_assert!((0.0..=1.0).contains(&o.ssd_fraction));
        }
        // Savings summary is internally consistent.
        prop_assert!(result.savings.achieved_tco <= result.savings.baseline_tco + 1e-9
            || result.savings.achieved_tco.is_finite());
    }

    /// Category labels form a valid partition: every job gets a label below N
    /// and negative-savings jobs always get label 0.
    #[test]
    fn category_labels_are_a_valid_partition(jobs in arb_jobs(60), n in 2usize..20) {
        let model = CostModel::new(CostRates::default());
        let trace = Trace::new(jobs);
        let costs = model.cost_trace(&trace);
        let labeler = CategoryLabeler::fit(&costs, n);
        for cost in &costs {
            let label = labeler.label(cost);
            prop_assert!(label < n);
            if cost.tco_savings() < 0.0 {
                prop_assert_eq!(label, 0);
            } else {
                prop_assert!(label >= 1);
            }
        }
    }

    /// GBDT predictions are valid probability distributions on arbitrary
    /// (finite) feature vectors.
    #[test]
    fn gbdt_probabilities_are_distributions(values in prop::collection::vec(-1e6f64..1e6, 3)) {
        // A tiny fixed model trained once per test case (cheap: 5 rounds).
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64, (i % 5) as f64, 1.0]).collect();
        let labels: Vec<usize> = (0..60).map(|i| usize::from(i >= 30)).collect();
        let data = Dataset::from_rows(rows, labels).unwrap();
        let params = GbdtParams { num_classes: 2, num_trees: 5, ..Default::default() };
        let model = GradientBoostedTrees::train(&params, &data, None).unwrap();
        let p = model.predict_proba(&values);
        prop_assert_eq!(p.len(), 2);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }
}
