//! Property-based tests over the core invariants listed in DESIGN.md:
//! cost-model sanity, oracle feasibility and monotonicity, simulator capacity
//! conservation, label-partition validity, ACT bounds, and GBDT
//! probability-distribution validity.
//!
//! The build environment has no crates.io access, so instead of `proptest`
//! these run each property over a deterministic stream of randomized cases
//! drawn from the workspace's seeded `rand` stand-in. Failures print the case
//! seed so a case can be replayed in isolation.

use byom::prelude::*;
use byom_core::CategoryLabeler;
use byom_trace::{IoProfile, JobFeatures};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

/// An arbitrary but well-formed shuffle job.
fn gen_job<R: Rng>(rng: &mut R, id: u64) -> ShuffleJob {
    let written = rng.gen_range(0..(1u64 << 41));
    ShuffleJob {
        id: JobId(id),
        cluster: 0,
        arrival: rng.gen_range(0.0f64..100_000.0),
        lifetime: rng.gen_range(1.0f64..200_000.0),
        size_bytes: rng.gen_range(1u64..(1u64 << 40)),
        io: IoProfile {
            read_bytes: rng.gen_range(0..(1u64 << 41)),
            written_bytes: written,
            read_ops: rng.gen_range(0..5_000_000),
            write_ops: written / (128 * 1024) + 1,
            dram_hit_fraction: rng.gen_range(0.0f64..0.95),
            mean_read_size: 64 * 1024,
        },
        features: JobFeatures::default(),
        archetype: 0,
    }
}

fn gen_jobs<R: Rng>(rng: &mut R, max: usize) -> Vec<ShuffleJob> {
    let n = rng.gen_range(1..max);
    (0..n).map(|i| gen_job(rng, i as u64)).collect()
}

/// Cost model: all cost quantities are finite and non-negative, and the
/// network component is identical across devices.
#[test]
fn cost_model_outputs_are_finite_and_nonnegative() {
    let model = CostModel::new(CostRates::default());
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x1000 + case);
        let job = gen_job(&mut rng, 0);
        let cost = model.cost_job(&job);
        assert!(
            cost.tcio_hdd.is_finite() && cost.tcio_hdd >= 0.0,
            "case {case}: tcio_hdd {:?}",
            cost.tcio_hdd
        );
        assert!(
            cost.tco_hdd.is_finite() && cost.tco_hdd >= 0.0,
            "case {case}"
        );
        assert!(
            cost.tco_ssd.is_finite() && cost.tco_ssd >= 0.0,
            "case {case}"
        );
        let hdd = model.tco_hdd_breakdown(&job);
        let ssd = model.tco_ssd_breakdown(&job);
        assert!((hdd.network - ssd.network).abs() < 1e-15, "case {case}");
    }
}

/// Cost model: removing DRAM cache hits can only increase TCIO.
#[test]
fn dram_cache_never_increases_tcio() {
    let model = CostModel::new(CostRates::default());
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x2000 + case);
        let job = gen_job(&mut rng, 0);
        let mut uncached = job.clone();
        uncached.io.dram_hit_fraction = 0.0;
        assert!(
            model.cost_job(&uncached).tcio_hdd >= model.cost_job(&job).tcio_hdd - 1e-12,
            "case {case}"
        );
    }
}

/// Oracle: the chosen placement never exceeds the capacity, never selects
/// negative-value jobs, and a larger capacity never decreases the value.
#[test]
fn oracle_feasibility_and_monotonicity() {
    let model = CostModel::new(CostRates::default());
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x3000 + case);
        let jobs = gen_jobs(&mut rng, 24);
        let cap_a = rng.gen_range(0..(1u64 << 42));
        let cap_b = rng.gen_range(0..(1u64 << 42));
        let trace = Trace::new(jobs);
        let costs = model.cost_trace(&trace);
        let (lo, hi) = if cap_a <= cap_b {
            (cap_a, cap_b)
        } else {
            (cap_b, cap_a)
        };
        let small = Oracle::new(OracleObjective::Tco, lo).solve(&costs);
        let large = Oracle::new(OracleObjective::Tco, hi).solve(&costs);
        assert!(small.peak_occupancy <= lo.max(1), "case {case}");
        assert!(large.peak_occupancy <= hi.max(1), "case {case}");
        for (cost, &on_ssd) in costs.iter().zip(&small.on_ssd) {
            if on_ssd {
                assert!(cost.tco_savings() > 0.0, "case {case}");
            }
        }
        assert!(large.total_value >= small.total_value - 1e-9, "case {case}");
    }
}

/// Simulator: SSD occupancy never exceeds the configured capacity and every
/// realized SSD fraction is within [0, 1].
#[test]
fn simulator_respects_capacity() {
    #[derive(Debug)]
    struct AlwaysSsd;
    impl PlacementPolicy for AlwaysSsd {
        fn name(&self) -> &str {
            "always-ssd"
        }
        fn place(&mut self, _: &ShuffleJob, _: &JobCost, _: &SystemState) -> Device {
            Device::Ssd
        }
    }
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x4000 + case);
        let jobs = gen_jobs(&mut rng, 40);
        let capacity = rng.gen_range(0..(1u64 << 41));
        let model = CostModel::new(CostRates::default());
        let trace = Trace::new(jobs);
        let result = Simulator::new(
            SimConfig {
                ssd_capacity_bytes: capacity,
            },
            model,
        )
        .run(&trace, &mut AlwaysSsd);
        assert!(result.peak_ssd_occupancy_bytes <= capacity, "case {case}");
        for o in &result.outcomes {
            assert!((0.0..=1.0).contains(&o.ssd_fraction), "case {case}");
        }
        // Savings summary is internally consistent.
        assert!(
            result.savings.achieved_tco <= result.savings.baseline_tco + 1e-9
                || result.savings.achieved_tco.is_finite(),
            "case {case}"
        );
    }
}

/// Category labels form a valid partition: every job gets a label below N and
/// negative-savings jobs always get label 0.
#[test]
fn category_labels_are_a_valid_partition() {
    let model = CostModel::new(CostRates::default());
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5000 + case);
        let jobs = gen_jobs(&mut rng, 60);
        let n = rng.gen_range(2usize..20);
        let trace = Trace::new(jobs);
        let costs = model.cost_trace(&trace);
        let labeler = CategoryLabeler::fit(&costs, n);
        for cost in &costs {
            let label = labeler.label(cost);
            assert!(label < n, "case {case}");
            if cost.tco_savings() < 0.0 {
                assert_eq!(label, 0, "case {case}");
            } else {
                assert!(label >= 1, "case {case}");
            }
        }
    }
}

/// GBDT predictions are valid probability distributions on arbitrary (finite)
/// feature vectors.
#[test]
fn gbdt_probabilities_are_distributions() {
    // A tiny fixed model trained once (cheap: 5 rounds), probed with many
    // random feature vectors.
    let rows: Vec<Vec<f64>> = (0..60)
        .map(|i| vec![i as f64, (i % 5) as f64, 1.0])
        .collect();
    let labels: Vec<usize> = (0..60).map(|i| usize::from(i >= 30)).collect();
    let data = Dataset::from_rows(rows, labels).unwrap();
    let params = GbdtParams {
        num_classes: 2,
        num_trees: 5,
        ..Default::default()
    };
    let model = GradientBoostedTrees::train(&params, &data, None).unwrap();
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x6000 + case);
        let values: Vec<f64> = (0..3).map(|_| rng.gen_range(-1e6f64..1e6)).collect();
        let p = model.predict_proba(&values);
        assert_eq!(p.len(), 2, "case {case}");
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9, "case {case}");
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)), "case {case}");
    }
}
