//! Facade-level resilience properties: fault-plan determinism, zero-fault
//! equivalence, ladder monotonicity under nested blackouts, and the headline
//! savings-retention claim of the `fig_resilience` experiment.
//!
//! These run the exact sweep code the `fig_resilience` binary uses (in its
//! quick configuration), so CI and the figure can never drift apart.

use std::sync::OnceLock;

use byom::chaos::{run_ladder, run_no_fallback, run_unfaulted};
use byom::prelude::*;
use byom::sim::ResilienceReport;
use byom_bench::resilience::{
    resilience_context, run_resilience_sweep, RESILIENCE_QUOTA, RESILIENCE_SEED,
};
use byom_bench::ExperimentContext;
use byom_chaos::BlackoutWindow;

/// One shared quick-mode experiment context: training the deployment is by
/// far the most expensive step, and every property here reads it immutably.
fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| resilience_context(true))
}

/// A blackout-only plan: the nested-window knob isolated from every other
/// fault surface, which is what makes the monotonicity property exact.
fn blackout_only(seed: u64, intensity: f64) -> FaultPlan {
    let mut plan = FaultPlan::none(seed);
    plan.model.blackout = Some(BlackoutWindow {
        start_secs: 3_600.0,
        duration_secs: 3.0 * 3_600.0 * intensity,
    });
    plan
}

#[test]
fn zero_fault_plan_is_byte_identical_to_plan_free_runs() {
    let ctx = ctx();
    let sim = ctx.simulator(RESILIENCE_QUOTA);
    let plan = FaultPlan::none(RESILIENCE_SEED);
    assert!(plan.is_fault_free());

    let plain = run_unfaulted(&ctx.trained, &sim, &ctx.test);
    let faulted = run_no_fallback(&ctx.trained, &sim, &ctx.test, &plan);
    assert_eq!(
        serde_json::to_string(&plain).expect("serialize"),
        serde_json::to_string(&faulted).expect("serialize"),
        "zero-fault no-fallback run must reproduce the plan-free run byte for byte"
    );

    let mut ladder = ctx.trained.ladder_policy();
    let plain_ladder = sim.run(&ctx.test, &mut ladder);
    let faulted_ladder = run_ladder(&ctx.trained, &sim, &ctx.test, &plan);
    assert_eq!(
        serde_json::to_string(&plain_ladder).expect("serialize"),
        serde_json::to_string(&faulted_ladder).expect("serialize"),
        "zero-fault ladder run must reproduce the plan-free ladder run byte for byte"
    );
}

#[test]
fn same_seed_produces_identical_resilience_reports() {
    let ctx = ctx();
    let sim = ctx.simulator(RESILIENCE_QUOTA);
    for intensity in [0.25, 1.0] {
        let plan = FaultPlan::at_intensity(RESILIENCE_SEED, intensity);
        let a = run_ladder(&ctx.trained, &sim, &ctx.test, &plan);
        let b = run_ladder(&ctx.trained, &sim, &ctx.test, &plan);
        assert_eq!(a.resilience, b.resilience, "intensity {intensity}");
        assert_eq!(a, b, "full results agree, not just the report");
        assert!(
            a.resilience.faults_injected() > 0,
            "the determinism check must exercise real faults"
        );
    }
    // A different seed draws a different fault stream (the reports are free
    // to collide in principle, but not for this plan at this intensity).
    let other = FaultPlan::at_intensity(RESILIENCE_SEED + 1, 1.0);
    let a = run_ladder(
        &ctx.trained,
        &sim,
        &ctx.test,
        &FaultPlan::at_intensity(RESILIENCE_SEED, 1.0),
    );
    let b = run_ladder(&ctx.trained, &sim, &ctx.test, &other);
    assert_ne!(
        a.resilience, b.resilience,
        "seed must steer the fault stream"
    );
}

/// Model-rung occupancy out of a resilience report (decisions made by the
/// learned model, rung 0).
fn model_rung(report: &ResilienceReport) -> u64 {
    report.fallback_occupancy.first().copied().unwrap_or(0)
}

#[test]
fn longer_blackouts_never_increase_model_rung_occupancy() {
    let ctx = ctx();
    let sim = ctx.simulator(RESILIENCE_QUOTA);
    for seed in [RESILIENCE_SEED, 7] {
        let mut previous: Option<u64> = None;
        for intensity in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let plan = blackout_only(seed, intensity);
            let result = run_ladder(&ctx.trained, &sim, &ctx.test, &plan);
            let occupancy = model_rung(&result.resilience);
            if let Some(prev) = previous {
                assert!(
                    occupancy <= prev,
                    "seed {seed}: intensity {intensity} put MORE decisions on the \
                     model rung ({occupancy} > {prev}) despite a strictly wider blackout"
                );
            }
            previous = Some(occupancy);
        }
    }
}

#[test]
fn ladder_retains_savings_where_the_ablation_goes_dark() {
    let ctx = ctx();
    let sweep = run_resilience_sweep(ctx, RESILIENCE_QUOTA, RESILIENCE_SEED, &[0.0, 1.0]);
    let base = sweep.unfaulted.tco_savings_percent();
    assert!(base > 0.0, "the unfaulted deployment must be saving money");

    let zero = sweep.points.first().expect("two points");
    assert!(
        (sweep.retention_percent(&zero.ladder) - 100.0).abs() < 1e-9,
        "zero-fault ladder retains everything"
    );

    let max = sweep.points.last().expect("two points");
    let ladder_retention = sweep.retention_percent(&max.ladder);
    let ablation_retention = sweep.retention_percent(&max.no_fallback);
    assert!(
        ladder_retention >= 50.0,
        "ladder must retain at least half the unfaulted savings at full \
         intensity, got {ladder_retention:.2}%"
    );
    assert!(
        ablation_retention < ladder_retention,
        "the no-fallback ablation must do strictly worse \
         ({ablation_retention:.2}% vs {ladder_retention:.2}%)"
    );
    assert!(
        max.ladder.resilience.model_blackouts > 0,
        "full intensity must actually exercise the blackout path"
    );
    assert!(
        max.ladder.resilience.savings_delta_percent <= 0.0,
        "the twin delta records how much the faults cost"
    );
}
