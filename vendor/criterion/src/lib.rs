//! Offline stand-in for `criterion`.
//!
//! Implements the benchmarking API surface this workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`Throughput`], and the
//! `criterion_group!` / `criterion_main!` macros — over a simple wall-clock
//! harness: a warm-up phase to size the iteration count, then `sample_size`
//! timed samples whose median/mean/min are reported on stdout.
//!
//! It is intentionally much simpler than real criterion (no outlier
//! analysis, no plots, no saved baselines) but reports stable medians good
//! enough for the speedup comparisons in `benches/`.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box`.
pub use std::hint::black_box;

/// How batches are sized in [`Bencher::iter_batched`]. The stand-in runs one
/// batch per sample regardless of the variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Measured throughput basis for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver handed to each registered bench function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Benchmark a closure under `name`.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        report(name.as_ref(), None, &bencher.samples);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing configuration, mirroring
/// `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Set the target measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Record the per-iteration throughput basis.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure under `group/name`.
    pub fn bench_function<N: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let full = format!("{}/{}", self.name, name.as_ref());
        report(&full, self.throughput, &bencher.samples);
        self
    }

    /// Finish the group (formatting separator only in the stand-in).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Runs and times the benchmark body.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, choosing an iteration count so one sample is neither
    /// trivially short nor longer than the measurement budget.
    pub fn iter<U, R: FnMut() -> U>(&mut self, mut routine: R) {
        // Warm-up: find how many iterations fit in ~1/10 of the budget.
        let warmup_budget = self.measurement_time / 10;
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= warmup_budget || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        let per_iter = Duration::from_nanos(1).max(
            // Average the warm-up to size the real samples.
            self.measurement_time / u32::try_from(self.sample_size.max(1)).unwrap_or(u32::MAX),
        );
        let _ = per_iter;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / u32::try_from(iters_per_sample).unwrap_or(u32::MAX));
        }
    }

    /// Time `routine` on fresh inputs built by `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, U, S: FnMut() -> I, R: FnMut(I) -> U>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, throughput: Option<Throughput>, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<56} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let mean = sorted.iter().sum::<Duration>() / u32::try_from(sorted.len()).unwrap_or(1);
    let mut line = format!(
        "{name:<56} median {:>12} | mean {:>12} | min {:>12}",
        fmt_duration(median),
        fmt_duration(mean),
        fmt_duration(min),
    );
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let secs = median.as_secs_f64();
        if secs > 0.0 {
            line.push_str(&format!(" | {:.0} {unit}/s", count as f64 / secs));
        }
    }
    println!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Build a benchmark group runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Build the benchmark `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion {
            sample_size: 3,
            measurement_time: Duration::from_millis(30),
        };
        // Just ensure the harness runs the routine and reports without panic.
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_run_batched_benches() {
        let mut c = Criterion {
            sample_size: 2,
            measurement_time: Duration::from_millis(10),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        group.bench_function("sum", |b| {
            b.iter_batched(
                || (0..10u64).collect::<Vec<_>>(),
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert!(fmt_duration(Duration::from_micros(5)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).contains(" s"));
    }
}
