//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments without access to crates.io, so the
//! small subset of the `rand` 0.8 API the code base uses is implemented here:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64. Streams are deterministic for a given seed but are **not**
//! identical to the real `rand` crate's `StdRng` (which is ChaCha-based);
//! everything in this workspace only relies on determinism, not on a specific
//! stream.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A deterministic random number generator.
///
/// Only the methods this workspace needs are provided. All of them derive
/// from [`Rng::next_u64`].
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of type `T` from its "standard" distribution:
    /// `[0, 1)` for floats, the full range for integers, fair for bools.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a half-open (`a..b`) or inclusive (`a..=b`)
    /// range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        sample_f64(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seed a generator deterministically from a `u64`.
pub trait SeedableRng: Sized {
    /// Construct the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The uniform f64 in `[0, 1)` with 53 random mantissa bits.
fn sample_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be sampled from a standard distribution (see [`Rng::gen`]).
pub trait Standard: Sized {
    /// Draw one standard sample.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        sample_f64(rng)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform sampler over an interval (see [`Rng::gen_range`]).
///
/// Mirrors `rand::distributions::uniform::SampleUniform`; the single blanket
/// [`SampleRange`] impl over this trait is what lets the compiler unify the
/// output type with the range's element type during inference (per-type range
/// impls would defeat that and break callers like `u32_value * rng.gen_range(1..8)`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_half_open<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Draw uniformly from `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty integer range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty inclusive integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty float range");
                lo + (hi - lo) * (sample_f64(rng) as $t)
            }
            fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty inclusive float range");
                lo + (hi - lo) * (sample_f64(rng) as $t)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges a value can be drawn from uniformly (see [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Shuffling and random choice over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn floats_are_in_unit_interval_and_cover_it() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            min = min.min(x);
            max = max.max(x);
        }
        assert!(min < 0.01 && max > 0.99);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let a = rng.gen_range(3..10);
            assert!((3..10).contains(&a));
            let b = rng.gen_range(0..=5);
            assert!((0..=5).contains(&b));
            let c = rng.gen_range(-2.0..10.0);
            assert!((-2.0..10.0).contains(&c));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = StdRng::seed_from_u64(8);
        let v = [10, 20, 30];
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
