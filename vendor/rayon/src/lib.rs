//! Offline stand-in for `rayon`.
//!
//! This workspace builds without network access, so the parallel-iterator
//! subset it needs is implemented here on top of `std::thread::scope`:
//!
//! * `slice.par_iter().map(f).collect::<Vec<_>>()`
//! * `(a..b).into_par_iter().map(f).collect::<Vec<_>>()`
//! * `.for_each(f)`
//! * `.with_max_threads(n)` — a stand-in extension that bounds the worker
//!   count (`1` forces fully sequential execution on the calling thread).
//!
//! Work is distributed dynamically (an atomic index counter, so uneven item
//! costs balance across workers) and results are always returned in input
//! order, regardless of which worker computed them. With `n` workers the
//! output is **identical** to sequential execution for any pure `f`.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The traits to import to get `par_iter` / `into_par_iter`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice};
}

/// Number of worker threads used by default: all available cores.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Resolve a user-supplied parallelism knob: `0` means "all cores".
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        current_num_threads()
    } else {
        requested
    }
}

/// Run `f(0..len)` across up to `threads` workers, returning results in
/// index order. `threads <= 1` (or a single item) runs inline on the caller.
fn run_indexed<U: Send, F: Fn(usize) -> U + Sync>(threads: usize, len: usize, f: F) -> Vec<U> {
    let workers = threads.min(len);
    if workers <= 1 {
        return (0..len).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(len));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    local.push((i, f(i)));
                }
                collected
                    .lock()
                    .expect("result mutex never poisoned: workers do not panic while holding it")
                    .append(&mut local);
            });
        }
    });
    let mut pairs = collected.into_inner().expect("scope joined all workers");
    pairs.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(pairs.len(), len);
    pairs.into_iter().map(|(_, v)| v).collect()
}

/// Borrowing parallel iterator over a slice (`par_iter`).
#[derive(Debug)]
pub struct ParIter<'a, T> {
    items: &'a [T],
    threads: usize,
}

/// Extension trait providing [`ParallelSlice::par_iter`] on slices and `Vec`s.
pub trait ParallelSlice<T: Sync> {
    /// A parallel iterator borrowing the elements.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter {
            items: self,
            threads: current_num_threads(),
        }
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> ParIter<'_, T> {
        self.as_slice().par_iter()
    }
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Bound the number of worker threads (`1` = sequential, `0` = all cores).
    pub fn with_max_threads(mut self, n: usize) -> Self {
        self.threads = resolve_threads(n);
        self
    }

    /// Map each element through `f` in parallel, preserving order.
    pub fn map<U: Send, F: Fn(&'a T) -> U + Sync>(self, f: F) -> ParMap<'a, T, F> {
        ParMap {
            items: self.items,
            threads: self.threads,
            f,
        }
    }

    /// Apply `f` to every element in parallel.
    pub fn for_each<F: Fn(&'a T) + Sync>(self, f: F) {
        run_indexed(self.threads, self.items.len(), |i| f(&self.items[i]));
    }
}

/// The result of [`ParIter::map`], ready to collect.
#[derive(Debug)]
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    threads: usize,
    f: F,
}

impl<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync> ParMap<'a, T, F> {
    /// Execute the parallel map and collect results in input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        run_indexed(self.threads, self.items.len(), |i| (self.f)(&self.items[i]))
            .into_iter()
            .collect()
    }
}

/// Types convertible into an owning parallel iterator (`into_par_iter`).
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The concrete parallel iterator.
    type Iter;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange {
            start: self.start,
            end: self.end.max(self.start),
            threads: current_num_threads(),
        }
    }
}

/// Owning parallel iterator over a `usize` range.
#[derive(Debug)]
pub struct ParRange {
    start: usize,
    end: usize,
    threads: usize,
}

impl ParRange {
    /// Bound the number of worker threads (`1` = sequential, `0` = all cores).
    pub fn with_max_threads(mut self, n: usize) -> Self {
        self.threads = resolve_threads(n);
        self
    }

    /// Map each index through `f` in parallel, preserving order.
    pub fn map<U: Send, F: Fn(usize) -> U + Sync>(self, f: F) -> ParRangeMap<F> {
        ParRangeMap {
            start: self.start,
            end: self.end,
            threads: self.threads,
            f,
        }
    }

    /// Apply `f` to every index in parallel.
    pub fn for_each<F: Fn(usize) + Sync>(self, f: F) {
        run_indexed(self.threads, self.end - self.start, |i| f(self.start + i));
    }
}

/// The result of [`ParRange::map`], ready to collect.
#[derive(Debug)]
pub struct ParRangeMap<F> {
    start: usize,
    end: usize,
    threads: usize,
    f: F,
}

impl<U: Send, F: Fn(usize) -> U + Sync> ParRangeMap<F> {
    /// Execute the parallel map and collect results in index order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        run_indexed(self.threads, self.end - self.start, |i| {
            (self.f)(self.start + i)
        })
        .into_iter()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_map_matches_sequential() {
        let par: Vec<usize> = (3..97).into_par_iter().map(|i| i * i).collect();
        let seq: Vec<usize> = (3..97).map(|i| i * i).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn one_thread_runs_inline() {
        let out: Vec<usize> = (0..10)
            .into_par_iter()
            .with_max_threads(1)
            .map(|i| i)
            .collect();
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_visits_every_element_once() {
        let count = AtomicUsize::new(0);
        let items: Vec<u8> = vec![1; 500];
        items.par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let out: Vec<usize> = (5..5).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn zero_means_all_cores() {
        let out: Vec<usize> = (0..64)
            .into_par_iter()
            .with_max_threads(0)
            .map(|i| i)
            .collect();
        assert_eq!(out.len(), 64);
    }
}
