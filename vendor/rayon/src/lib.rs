//! Offline stand-in for `rayon`, now a thin forwarder onto [`byom_exec`].
//!
//! The original shim spawned fresh `std::thread::scope` workers on every
//! `collect()`. The executor layer replaces that with one persistent
//! work-stealing pool shared by the whole process; this crate only keeps
//! the `rayon`-shaped import path (`rayon::prelude::*`) alive so existing
//! call sites and any future crates written against rayon's API keep
//! compiling unchanged. See `byom_exec` for the threading model, the
//! budget semantics, and the determinism guarantees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use byom_exec::{
    current_num_threads, install, join, resolve_threads, IntoParallelIterator, ParIter, ParMap,
    ParRange, ParRangeMap, ParallelSlice,
};

/// The traits to import to get `par_iter` / `into_par_iter`.
pub mod prelude {
    pub use byom_exec::prelude::*;
}

// Black-box tests of the forwarded surface: the guarantees the original
// scoped-thread shim made must keep holding through the executor layer.
#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_map_matches_sequential() {
        let par: Vec<usize> = (3..97).into_par_iter().map(|i| i * i).collect();
        let seq: Vec<usize> = (3..97).map(|i| i * i).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn one_thread_runs_inline() {
        let out: Vec<usize> = (0..10)
            .into_par_iter()
            .with_max_threads(1)
            .map(|i| i)
            .collect();
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_visits_every_element_once() {
        let count = AtomicUsize::new(0);
        let items: Vec<u8> = vec![1; 500];
        items.par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let out: Vec<usize> = (5..5).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn zero_means_inherited_budget() {
        let out: Vec<usize> = (0..64)
            .into_par_iter()
            .with_max_threads(0)
            .map(|i| i)
            .collect();
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }
}
