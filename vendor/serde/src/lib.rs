//! Offline stand-in for `serde`.
//!
//! The real `serde` is unavailable because this workspace builds without
//! network access, so this crate provides the subset the code base relies on:
//! [`Serialize`]/[`Deserialize`] traits (value-tree based rather than
//! visitor based), derive macros for plain structs, newtype structs, and
//! unit-variant enums, and the [`Value`] document model that
//! `serde_json` (the sibling stand-in) renders to and from JSON text.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A parsed or buildable JSON-like document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A non-negative integer (JSON number without sign, fraction, exponent).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// Any other JSON number.
    Float(f64),
    /// A JSON string.
    Str(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Look up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Look up a required object field, with a descriptive error.
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        self.get(key)
            .ok_or_else(|| Error(format!("missing field `{key}`")))
    }

    /// The value as an `f64`, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(u) => Some(u as f64),
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an exact integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::Int(i) => Some(i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// Convert a Rust value into a [`Value`] tree.
pub trait Serialize {
    /// Build the value tree.
    fn to_value(&self) -> Value;
}

/// Rebuild a Rust value from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse the value tree.
    ///
    /// # Errors
    /// Returns an error when the tree's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v
                    .as_u64()
                    .ok_or_else(|| Error(format!("expected unsigned integer, got {v:?}")))?;
                <$t>::try_from(u).map_err(|_| Error(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| Error(format!("expected integer, got {v:?}")))?;
                <$t>::try_from(i).map_err(|_| Error(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_array()
                    .ok_or_else(|| Error(format!("expected tuple array, got {v:?}")))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error(format!(
                        "expected tuple of {expected}, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn exact_u64_is_preserved() {
        let big = (1u64 << 63) + 12345;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn shape_mismatch_errors() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::UInt(1)).is_err());
        assert!(Vec::<u32>::from_value(&Value::Bool(false)).is_err());
        assert!(Value::Null.field("k").is_err());
    }

    #[test]
    fn object_field_lookup() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(v.field("a").unwrap(), &Value::UInt(1));
        assert!(v.field("b").is_err());
    }
}
