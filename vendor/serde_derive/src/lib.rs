//! Derive macros for the offline `serde` stand-in.
//!
//! Supports exactly the type shapes this workspace serializes: structs with
//! named fields, tuple structs, and enums whose variants are all unit
//! variants. Generics and `#[serde(...)]` attributes are intentionally not
//! supported — deriving on such a type is a compile-time panic with a clear
//! message, so unsupported shapes fail loudly rather than misbehave.
//!
//! The macros parse the item's token stream directly (no `syn`/`quote`,
//! which are unavailable offline) and emit impls of `serde::Serialize` /
//! `serde::Deserialize` over the `serde::Value` document model.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of a type we can derive for.
enum Shape {
    /// `struct Name { field: T, ... }`
    Named(String, Vec<String>),
    /// `struct Name(T, ...);`
    Tuple(String, usize),
    /// `enum Name { A, B, ... }` (unit variants only)
    UnitEnum(String, Vec<String>),
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    let code = match &shape {
        Shape::Named(name, fields) => {
            let entries: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Tuple(name, 1) => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::Tuple(name, arity) => {
            let entries: String = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitEnum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    let code = match &shape {
        Shape::Named(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value)\n\
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Tuple(name, 1) => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value)\n\
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::Tuple(name, arity) => {
            let inits: String = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value)\n\
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let a = v.as_array().ok_or_else(|| ::serde::Error(\n\
                             format!(\"expected array for {name}, got {{v:?}}\")))?;\n\
                         if a.len() != {arity} {{\n\
                             return ::std::result::Result::Err(::serde::Error(\n\
                                 format!(\"expected {arity} elements for {name}, got {{}}\", a.len())));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}({inits}))\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitEnum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!("::std::option::Option::Some(\"{v}\") => ::std::result::Result::Ok({name}::{v}),")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value)\n\
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v.as_str() {{\n\
                             {arms}\n\
                             ::std::option::Option::Some(other) => ::std::result::Result::Err(\n\
                                 ::serde::Error(format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                             ::std::option::Option::None => ::std::result::Result::Err(\n\
                                 ::serde::Error(format!(\"expected string variant for {name}, got {{v:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}

/// Parse the derived item into one of the supported [`Shape`]s.
fn parse_item(input: TokenStream) -> Shape {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            // Outer attribute: `#` followed by a bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                // Skip a possible visibility argument like `pub(crate)`.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                let name = expect_ident(iter.next(), "struct name");
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        return Shape::Named(name, parse_named_fields(g.stream()));
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        return Shape::Tuple(name, count_top_level_fields(g.stream()));
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        panic!("serde stand-in derive does not support generic type `{name}`");
                    }
                    other => panic!("unsupported struct body for `{name}`: {other:?}"),
                }
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                let name = expect_ident(iter.next(), "enum name");
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        return Shape::UnitEnum(
                            name.clone(),
                            parse_unit_variants(&name, g.stream()),
                        );
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        panic!("serde stand-in derive does not support generic enum `{name}`");
                    }
                    other => panic!("unsupported enum body for `{name}`: {other:?}"),
                }
            }
            // `union`, or anything else in item position, is unsupported.
            TokenTree::Ident(id) if id.to_string() == "union" => {
                panic!("serde stand-in derive does not support unions");
            }
            _ => {}
        }
    }
    panic!("serde stand-in derive: no struct or enum found in input");
}

fn expect_ident(tt: Option<TokenTree>, what: &str) -> String {
    match tt {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected {what}, found {other:?}"),
    }
}

/// Extract field names from the body of a named-field struct.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Strip attributes and visibility before the field name.
        let name = loop {
            match iter.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("unexpected token in struct body: {other:?}"),
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        fields.push(name);
        // Consume the type, up to a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
}

/// Count the fields of a tuple struct (top-level comma-separated segments).
fn count_top_level_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    for tt in body {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if saw_token {
                        count += 1;
                    }
                    saw_token = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    assert!(count > 0, "tuple struct with no fields is unsupported");
    count
}

/// Extract variant names from an enum body, insisting on unit variants.
fn parse_unit_variants(enum_name: &str, body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) => {
                let variant = id.to_string();
                match iter.peek() {
                    None => variants.push(variant),
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                        variants.push(variant);
                        iter.next();
                    }
                    Some(other) => panic!(
                        "enum `{enum_name}` variant `{variant}` is not a unit variant \
                         (unsupported by the serde stand-in derive): {other:?}"
                    ),
                }
            }
            other => panic!("unexpected token in enum `{enum_name}` body: {other:?}"),
        }
    }
    assert!(
        !variants.is_empty(),
        "enum `{enum_name}` has no variants to derive for"
    );
    variants
}
