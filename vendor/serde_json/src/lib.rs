//! Offline stand-in for `serde_json`.
//!
//! Renders the sibling `serde` stand-in's [`Value`] tree to JSON text and
//! parses JSON text back. Covers the JSON grammar (objects, arrays, strings
//! with escapes, numbers, booleans, null); numbers that are non-negative
//! integers round-trip exactly through `u64`, negative integers through
//! `i64`, everything else through `f64` (shortest round-trip formatting).

#![warn(missing_docs)]

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Serialize a value to a JSON string.
///
/// # Errors
/// Infallible for the supported value shapes; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Deserialize a value from a JSON string.
///
/// # Errors
/// Returns an error on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Parse JSON text into a [`Value`] tree.
///
/// # Errors
/// Returns an error on malformed JSON or trailing non-whitespace input.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's float Display is the shortest string that parses
                // back to the same value, and never uses exponent syntax.
                let _ = write!(out, "{f}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    other => return Err(Error(format!("expected `,` or `]`, got {other:?}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error(format!("expected `:` after key `{key}`")));
                }
                *pos += 1;
                entries.push((key, parse(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    other => return Err(Error(format!("expected `,` or `}}`, got {other:?}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(Error(format!("invalid literal at byte {pos}", pos = *pos)))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error(format!("expected string at byte {pos}", pos = *pos)));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low surrogate.
                            if bytes.get(*pos + 1) == Some(&b'\\')
                                && bytes.get(*pos + 2) == Some(&b'u')
                            {
                                let lo = parse_hex4(bytes, *pos + 3)?;
                                *pos += 6;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                return Err(Error("unpaired surrogate".into()));
                            }
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error(format!("invalid codepoint {code:#x}")))?,
                        );
                    }
                    other => return Err(Error(format!("invalid escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a valid &str).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|e| Error(format!("invalid utf-8: {e}")))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, Error> {
    let chunk = bytes
        .get(at..at + 4)
        .ok_or_else(|| Error("truncated \\u escape".into()))?;
    let s = std::str::from_utf8(chunk).map_err(|_| Error("invalid \\u escape".into()))?;
    u32::from_str_radix(s, 16).map_err(|_| Error(format!("invalid \\u escape `{s}`")))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error("invalid number".into()))?;
    if text.is_empty() || text == "-" {
        return Err(Error(format!("invalid number at byte {start}")));
    }
    if !is_float {
        if let Some(stripped) = text.strip_prefix('-') {
            if let Ok(i) = stripped.parse::<u64>() {
                if i <= i64::MAX as u64 {
                    return Ok(Value::Int(-(i as i64)));
                }
            }
        } else if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|e| Error(format!("invalid number `{text}`: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for json in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\""] {
            let v = parse_value(json).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v);
            assert_eq!(out, json);
        }
    }

    #[test]
    fn large_u64_round_trips_exactly() {
        let big = u64::MAX - 3;
        let v = parse_value(&big.to_string()).unwrap();
        assert_eq!(v, Value::UInt(big));
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 1e-12, 123456.789, -2.5e17, f64::MIN_POSITIVE] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, f, "{s}");
        }
    }

    #[test]
    fn nonfinite_serializes_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line1\nline2\t\"quoted\" \\ end\u{1}";
        let json = to_string(s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: String = from_str("\"\\u0041\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, "Aé😀");
    }

    #[test]
    fn nested_structures_round_trip() {
        let json = "{\"a\":[1,2,{\"b\":null}],\"c\":{\"d\":[true,false]}}";
        let v = parse_value(json).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v);
        assert_eq!(out, json);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "12 34", "nul"] {
            assert!(parse_value(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = parse_value(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(
            v,
            Value::Object(vec![(
                "a".into(),
                Value::Array(vec![Value::UInt(1), Value::UInt(2)])
            )])
        );
    }
}
